"""Durability: warm restart vs. cold re-evaluation, and the WAL tax.

Not a paper figure — this benchmarks the repository's durability subsystem
(:mod:`repro.durability`) and enforces its headline guarantee:
``test_warm_restart_speedup_at_10k_edges`` requires that reopening a
cleanly-closed durability directory (checkpoint install, zero replay) on
the 10k-edge transitive closure reaches its first ``path`` query at least
**10× faster** than evaluating the same program cold.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_durability.py
"""

import os

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.bench.durability import run_durability
from repro.durability import DurabilityConfig
from repro.workloads.graphs import random_edges

NODES_10K = 12_000
EDGES_10K = 10_000


def test_wal_append_latency(benchmark, tmp_path):
    """Per-batch durable apply latency under the server's default policy."""
    edges = random_edges(NODES_10K, EDGES_10K, seed=2024)
    database = Database(
        build_transitive_closure_program(edges),
        durability=DurabilityConfig(dir=str(tmp_path / "dur"), fsync="batch"),
    )
    conn = database.connect()
    conn.query("path").count()
    fresh = iter([(50_000_000 + i, 50_000_001 + i) for i in range(10_000)])

    def one_batch():
        conn.apply(inserts={"edge": [next(fresh) for _ in range(10)]})

    benchmark.pedantic(one_batch, rounds=3, iterations=1)
    database.close()


def test_checkpoint_write_latency(benchmark, tmp_path):
    """One explicit full-state checkpoint of the 10k-edge closure."""
    edges = random_edges(NODES_10K, EDGES_10K, seed=2024)
    database = Database(
        build_transitive_closure_program(edges),
        durability=DurabilityConfig(dir=str(tmp_path / "dur"), fsync="batch"),
    )
    conn = database.connect()
    conn.query("path").count()

    benchmark.pedantic(conn.checkpoint, rounds=3, iterations=1)
    database.close()


def test_warm_restart_speedup_at_10k_edges():
    """Acceptance: restart-to-first-query ≥ 10× faster than cold."""
    rows = run_durability(repeat=2, policies=("batch",))
    row = rows[0]
    assert row["workload"] == "tc_10k"
    assert row["restart_speedup"] >= 10.0, (
        f"warm restart only {row['restart_speedup']:.1f}x faster than cold "
        f"({row['warm_seconds']:.4f}s vs {row['cold_seconds']:.4f}s)"
    )


def test_recovery_replays_only_the_wal_tail(tmp_path):
    """A dirty restart (no clean close) replays exactly the un-checkpointed
    records — recovery work is proportional to the tail, not the history."""
    directory = str(tmp_path / "dur")
    edges = random_edges(NODES_10K, EDGES_10K, seed=2024)
    program_edges = list(edges)

    database = Database(
        build_transitive_closure_program(program_edges),
        durability=DurabilityConfig(dir=directory, checkpoint_on_close=False),
    )
    conn = database.connect()
    conn.query("path").count()
    conn.checkpoint()  # cover the initial fixpoint
    for index in range(5):
        conn.apply(inserts={"edge": [(60_000_000 + index, 60_000_001 + index)]})
    database.close()  # checkpoint_on_close=False: the 5 records stay WAL-only

    database = Database(
        build_transitive_closure_program(program_edges),
        durability=DurabilityConfig(dir=directory),
    )
    conn = database.connect()
    report = conn.durability.last_recovery
    assert report.warm
    assert report.replayed_records == 5
    assert (60_000_004, 60_000_005) in conn.query("edge")
    database.close()

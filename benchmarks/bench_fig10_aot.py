"""Fig. 10: ahead-of-time ("macro") versus online compilation.

Times the five Fig. 10 configurations — JIT-lambda at the lowest granularity,
and the four macro combinations of {facts+rules, rules-only} × {± online
re-sorting} — on the worst-ordered micro programs.  The paper-shaped speedup
chart comes from ``python -m repro.bench --only fig10``.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.bench.configurations import fig10_configurations
from repro.core.config import EngineConfig
from benchmarks.conftest import run_benchmark_once

MICRO = ["ackermann", "fibonacci", "primes"]
CONFIGS = {label: config for label, config in fig10_configurations(use_indexes=True)}


@pytest.mark.parametrize("name", MICRO)
def test_fig10_baseline_unoptimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.WORST),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("label", sorted(CONFIGS), ids=lambda l: l.replace(" ", "_"))
@pytest.mark.parametrize("name", MICRO)
def test_fig10_configuration(benchmark, name, label):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, CONFIGS[label], Ordering.WORST),
        rounds=1, iterations=1,
    )

"""Fig. 5: execution time of code generation per IROp granularity.

Times one backend invocation per (backend, granularity, warmth, mode) cell
over the CSPA program's sub-queries — the quantity Fig. 5 plots for the
quotes target.  The Bytecode backend is included for the full-mode cells to
show the cheaper "skip the front end" path.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.analyses.registry import get_benchmark
from repro.bench.fig5 import _plan_groups
from repro.core.backends import BytecodeBackend, QuotesBackend
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine


@pytest.fixture(scope="module")
def cspa_plans():
    spec = get_benchmark("cspa_tiny")
    engine = ExecutionEngine(spec.build(Ordering.WRITTEN), EngineConfig.interpreted())
    return engine.storage, _plan_groups(engine.tree)


GRANULARITIES = ["JoinProjectOp", "UnionOp", "RelationUnionOp", "ProgramOp"]


@pytest.mark.parametrize("granularity", GRANULARITIES)
@pytest.mark.parametrize("backend_name", ["quotes", "bytecode"])
def test_fig5_codegen_full(benchmark, cspa_plans, granularity, backend_name):
    storage, groups = cspa_plans
    plans = groups[granularity]
    backend = QuotesBackend() if backend_name == "quotes" else BytecodeBackend()

    def compile_once():
        return backend.compile_plans(plans, storage, label=granularity).compile_seconds

    benchmark(compile_once)


@pytest.mark.parametrize("granularity", GRANULARITIES)
def test_fig5_codegen_snippet(benchmark, cspa_plans, granularity):
    storage, groups = cspa_plans
    plans = groups[granularity]
    backend = QuotesBackend()
    continuations = [lambda s: set() for _ in plans]

    def compile_once():
        artifact = backend.compile_plans(
            plans, storage, mode="snippet", continuations=continuations,
            label=granularity,
        )
        return artifact.compile_seconds

    benchmark(compile_once)

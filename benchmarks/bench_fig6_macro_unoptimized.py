"""Fig. 6: macrobenchmark speedup of JIT configurations over "unoptimized".

Times every JIT configuration (plus the two interpreted references) on the
*worst-ordered* macro programs.  Speedups are the ratio of the interpreted
unoptimized time to each configuration's time; pytest-benchmark reports the
raw times, ``python -m repro.bench --only fig6`` prints the ratios.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.bench.configurations import jit_configurations
from repro.core.config import EngineConfig
from benchmarks.conftest import run_benchmark_once

MACRO = ["andersen", "inverse_functions", "cspa_tiny"]
JIT_CONFIGS = {label: config for label, config in jit_configurations(use_indexes=True)}


@pytest.mark.parametrize("name", MACRO)
def test_fig6_baseline_unoptimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.WORST),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("name", MACRO)
def test_fig6_hand_optimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.OPTIMIZED),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("label", sorted(JIT_CONFIGS), ids=lambda l: l.replace(" ", "_"))
@pytest.mark.parametrize("name", MACRO)
def test_fig6_jit_on_unoptimized(benchmark, name, label):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, JIT_CONFIGS[label], Ordering.WORST),
        rounds=1, iterations=1,
    )

"""Fig. 7: microbenchmark speedup of JIT configurations over "unoptimized".

Same structure as Fig. 6 but over the short-running micro programs, which is
where compilation overhead stops paying for itself (the paper's point).
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.bench.configurations import jit_configurations
from repro.core.config import EngineConfig
from benchmarks.conftest import run_benchmark_once

MICRO = ["ackermann", "fibonacci", "primes"]
JIT_CONFIGS = {label: config for label, config in jit_configurations(use_indexes=True)}


@pytest.mark.parametrize("name", MICRO)
def test_fig7_baseline_unoptimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.WORST),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("name", MICRO)
def test_fig7_hand_optimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.OPTIMIZED),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("label", sorted(JIT_CONFIGS), ids=lambda l: l.replace(" ", "_"))
@pytest.mark.parametrize("name", MICRO)
def test_fig7_jit_on_unoptimized(benchmark, name, label):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, JIT_CONFIGS[label], Ordering.WORST),
        rounds=1, iterations=1,
    )

"""Fig. 8: macrobenchmark speedup (or slowdown) over "hand-optimized".

Every configuration runs on the hand-optimized program formulation; the
question is how much the JIT's overhead costs (or how much it still gains by
re-optimizing per iteration) relative to the interpreted hand-optimized
baseline.  CSDA is included here, as in the paper.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.bench.configurations import jit_configurations
from repro.core.config import EngineConfig
from benchmarks.conftest import run_benchmark_once

MACRO = ["andersen", "inverse_functions", "cspa_tiny", "csda"]
JIT_CONFIGS = {label: config for label, config in jit_configurations(use_indexes=True)}


@pytest.mark.parametrize("name", MACRO)
def test_fig8_baseline_hand_optimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.OPTIMIZED),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("label", sorted(JIT_CONFIGS), ids=lambda l: l.replace(" ", "_"))
@pytest.mark.parametrize("name", MACRO)
def test_fig8_jit_on_hand_optimized(benchmark, name, label):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, JIT_CONFIGS[label], Ordering.OPTIMIZED),
        rounds=1, iterations=1,
    )

"""Fig. 9: microbenchmark speedup (or slowdown) over "hand-optimized".

The worst case for adaptive optimization: already-good plans on programs too
short to amortise any overhead.  Values below 1x (slowdowns) are expected for
the heavier backends, mirroring the paper's ~0.1x Ackermann result.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.bench.configurations import jit_configurations
from repro.core.config import EngineConfig
from benchmarks.conftest import run_benchmark_once

MICRO = ["ackermann", "fibonacci", "primes"]
JIT_CONFIGS = {label: config for label, config in jit_configurations(use_indexes=True)}


@pytest.mark.parametrize("name", MICRO)
def test_fig9_baseline_hand_optimized_interpreted(benchmark, name):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, EngineConfig.interpreted(), Ordering.OPTIMIZED),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("label", sorted(JIT_CONFIGS), ids=lambda l: l.replace(" ", "_"))
@pytest.mark.parametrize("name", MICRO)
def test_fig9_jit_on_hand_optimized(benchmark, name, label):
    benchmark.pedantic(
        run_benchmark_once,
        args=(name, JIT_CONFIGS[label], Ordering.OPTIMIZED),
        rounds=1, iterations=1,
    )

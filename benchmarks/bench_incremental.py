"""Incremental sessions: update latency vs. full recompute.

Not a paper figure — this benchmarks the service-shaped evaluation layer:
an :class:`~repro.incremental.IncrementalSession` absorbing mutation batches
against rebuilding an :class:`~repro.engine.engine.ExecutionEngine` per
change.  ``test_single_batch_speedup_at_10k_edges`` also enforces the
subsystem's headline guarantee: on a reachability workload of ≥ 10k edges a
single incremental batch must beat a full recompute by at least 5×.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py
"""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.bench.incremental import run_incremental
from repro.core.config import EngineConfig
from repro.incremental import IncrementalSession
from repro.workloads.graphs import random_edges

NODES_10K = 12_000
EDGES_10K = 10_000


@pytest.fixture(scope="module")
def tc_10k_session():
    edges = random_edges(NODES_10K, EDGES_10K, seed=2024)
    session = IncrementalSession(build_transitive_closure_program(edges), EngineConfig.interpreted())
    session.refresh()
    return session, edges


def test_insert_batch_latency(benchmark, tc_10k_session):
    session, _ = tc_10k_session
    fresh = iter([(NODES_10K + i, i % NODES_10K) for i in range(10_000)])

    def one_batch():
        session.insert_facts("edge", [next(fresh) for _ in range(10)])

    benchmark.pedantic(one_batch, rounds=3, iterations=1)


def test_retract_batch_latency(benchmark, tc_10k_session):
    session, edges = tc_10k_session
    victims = iter(edges)

    def one_batch():
        session.retract_facts("edge", [next(victims) for _ in range(10)])

    benchmark.pedantic(one_batch, rounds=3, iterations=1)


def test_full_recompute_baseline(benchmark):
    edges = random_edges(NODES_10K, EDGES_10K, seed=2024)

    def recompute():
        from repro.engine.engine import ExecutionEngine
        return ExecutionEngine(
            build_transitive_closure_program(edges), EngineConfig.interpreted()
        ).evaluate()

    benchmark.pedantic(recompute, rounds=1, iterations=1)


def test_single_batch_speedup_at_10k_edges():
    """Acceptance: ≥ 5× faster than full recompute on ≥ 10k edges."""
    rows = run_incremental(
        scales=[("tc_10k", NODES_10K, EDGES_10K)], batches=3, batch_size=10
    )
    row = rows[0]
    assert row["edges"] >= 10_000
    assert row["speedup"] >= 5.0, (
        f"incremental mixed batch only {row['speedup']:.1f}x faster than "
        f"recompute ({row['mixed_batch_s']:.4f}s vs {row['full_recompute_s']:.4f}s)"
    )

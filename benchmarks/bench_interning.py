"""Dictionary-encoded storage: speedup, memory and exactness acceptance.

Not a paper figure — this benchmarks the global symbol-interning layer
(:mod:`repro.relational.symbols`) and enforces its headline guarantees
against the raw-object engine (``EngineConfig(interning=False)`` — exactly
the PR-4 vectorized baseline, kept alive as the differential oracle):

* ``test_interning_speedup_on_tc`` — the dictionary-encoded engine must
  beat the raw-object engine by at least 1.5x on the 10k-edge symbolic
  transitive closure (composite context-sensitive entity keys, ~7M-row
  fixpoint — the memory-bound regime interning exists for), with decoded
  results bit-for-bit equal.  Measured ~1.7-2.0x on a single-core CI box.
* ``test_interning_speedup_on_cspa`` — the same gate on the symbolic CSPA
  pointer analysis (the paper's Fig. 1 program over context-sensitive
  variable keys).
* ``test_interning_memory_on_load`` — loading the streamed 10k-edge
  symbolic fact set must retain (and peak) at least 2x less memory under
  dictionary encoding than with raw objects: every distinct key is stored
  once, in the symbol table, instead of once per occurrence.  Measured
  ~3.5x retained.
* ``test_interned_results_bitwise_equal_across_modes`` — decoded results
  equal the raw oracle across execution modes and shard counts (the
  property suite covers randomized programs; this pins a full workload).

These are deliberately long-running acceptance gates (tens of seconds per
measurement): run them via ``scripts/smoke.sh --full`` or directly with
``PYTHONPATH=src python -m pytest benchmarks/bench_interning.py``.
"""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.bench.interning import (
    cspa_workload,
    interned_config,
    measure_load_memory,
    raw_config,
    run_interning,
    symbolic_edges,
    tc_workload,
)
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.workloads.graphs import random_edges


def _speedup_gate(workload, floor: float) -> None:
    # One interleaved raw-then-interned round: the raw baseline runs on the
    # cooler machine, which can only understate the measured speedup.
    rows = run_interning(workloads=[workload], repeat=1)
    by_codec = {row["codec"]: row for row in rows if row["workload"] == workload[0]}
    interned = by_codec["interned"]
    assert interned["equal"], "decoded result diverged from the raw oracle"
    assert interned["speedup"] >= floor, (
        f"interned only {interned['speedup']:.2f}x faster than raw "
        f"({interned['seconds']:.3f}s vs {by_codec['raw']['seconds']:.3f}s)"
    )


def test_interning_speedup_on_tc():
    """Acceptance: >= 1.5x over the raw-object baseline on the 10k-edge TC."""
    _speedup_gate(tc_workload(), 1.5)


def test_interning_speedup_on_cspa():
    """Acceptance: >= 1.5x over the raw-object baseline on symbolic CSPA."""
    _speedup_gate(cspa_workload(), 1.5)


def test_interning_memory_on_load():
    """Acceptance: >= 2x lower retained and peak memory on the 10k-edge load."""
    raw_storage, raw_memory = measure_load_memory(False)
    raw_rows = raw_storage.cardinality("edge")
    del raw_storage
    interned_storage, interned_memory = measure_load_memory(True)
    assert interned_storage.cardinality("edge") == raw_rows
    del interned_storage
    retained_ratio = raw_memory.retained_bytes / interned_memory.retained_bytes
    peak_ratio = raw_memory.peak_bytes / interned_memory.peak_bytes
    assert retained_ratio >= 2.0, (
        f"retained only {retained_ratio:.2f}x lower "
        f"({raw_memory.retained_mb():.2f}MB vs {interned_memory.retained_mb():.2f}MB)"
    )
    assert peak_ratio >= 2.0, (
        f"peak only {peak_ratio:.2f}x lower "
        f"({raw_memory.peak_mb():.2f}MB vs {interned_memory.peak_mb():.2f}MB)"
    )


def test_interned_results_bitwise_equal_across_modes():
    """Every mode x shard count decodes to the raw oracle's exact fixpoint."""
    edges = symbolic_edges(random_edges(2_000, 1_500, seed=11))
    reference = ExecutionEngine(
        build_transitive_closure_program(edges),
        raw_config(),
    ).evaluate()["path"]
    bases = [
        EngineConfig.interpreted(),
        EngineConfig.jit("bytecode"),
        EngineConfig.jit("lambda"),
        EngineConfig.aot(),
    ]
    for base in bases:
        for shards in (1, 2, 4):
            config = EngineConfig.parallel(shards=shards, base=base).with_(
                executor="vectorized"
            )
            engine = ExecutionEngine(build_transitive_closure_program(edges), config)
            assert engine.evaluate()["path"] == reference, (
                f"{config.describe()} diverged"
            )


@pytest.mark.parametrize("codec", ["raw", "interned"])
def test_fixpoint_latency(benchmark, codec):
    edges = symbolic_edges(random_edges(3_000, 2_000, seed=2024))
    config = raw_config() if codec == "raw" else interned_config()

    def evaluate():
        return ExecutionEngine(
            build_transitive_closure_program(edges), config
        ).evaluate()

    benchmark.pedantic(evaluate, rounds=1, iterations=1)

"""Shard-parallel evaluation: scaling and exact-equivalence acceptance.

Not a paper figure — this benchmarks the shard-parallel subsystem on the
10k-edge transitive-closure workload and enforces its headline guarantees:

* ``test_four_shard_speedup_at_10k_edges`` — ``EngineConfig.parallel(shards=4)``
  must beat ``shards=1`` (the standard engine; sharding disabled by
  definition) by at least 1.5x in at least one execution mode.  On
  multi-core machines the worker pool contributes real parallelism; on
  single-core machines (where the pool degrades to serial round-robin) the
  margin comes from the shard workers' one-shot plan compilation — see
  ``ShardingConfig.shard_backend``.
* ``test_sharded_results_bitwise_equal_across_modes`` — sharded results are
  bit-for-bit equal to single-shard results across execution modes and
  shard counts.
* ``test_sharding_overhead_without_compilation`` — with the compilation
  effect removed (``shard_backend="none"``), the partition/exchange/merge
  machinery itself must stay cheap.  The headline gate above can be passed
  by plan compilation alone on a single-core box, so this is the tripwire
  that catches a regression in the actual sharding path (e.g. the exchange
  step starting to serialise everything).

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py
"""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.bench.parallel import run_parallel
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.workloads.graphs import random_edges

NODES_10K = 12_000
EDGES_10K = 10_000


def test_four_shard_speedup_at_10k_edges():
    """Acceptance: >= 1.5x at 4 shards vs 1 shard, bit-for-bit equal."""
    rows = run_parallel(
        nodes=NODES_10K,
        edge_count=EDGES_10K,
        shard_counts=(1, 4),
        modes=[("interpreted", EngineConfig.interpreted)],
        repeat=3,
    )
    by_shards = {row["shards"]: row for row in rows}
    assert by_shards[4]["equal"], "4-shard result diverged from single-shard"
    speedup = by_shards[4]["speedup"]
    assert speedup >= 1.5, (
        f"4 shards only {speedup:.2f}x faster than 1 shard "
        f"({by_shards[4]['seconds']:.3f}s vs {by_shards[1]['seconds']:.3f}s)"
    )


def test_sharded_results_bitwise_equal_across_modes():
    """Every mode x shard-count combination computes the identical fixpoint."""
    edges = random_edges(2_000, 1_500, seed=11)
    reference = ExecutionEngine(
        build_transitive_closure_program(edges), EngineConfig.interpreted()
    ).evaluate()["path"]
    configs = [
        EngineConfig.interpreted(),
        EngineConfig.jit("bytecode"),
        EngineConfig.jit("lambda"),
        EngineConfig.aot(),
    ]
    for base in configs:
        for shards in (1, 2, 4):
            engine = ExecutionEngine(
                build_transitive_closure_program(edges),
                EngineConfig.parallel(shards=shards, base=base),
            )
            assert engine.evaluate()["path"] == reference, (
                f"{base.describe()} at {shards} shards diverged"
            )


def test_sharding_overhead_without_compilation():
    """4 interpreting shards must stay within 2x of the plain engine.

    Measured ~1.06x on a single-core box; 2x leaves headroom for machine
    noise while still catching an exchange/merge blow-up.
    """
    from repro.bench.parallel import _measure

    edges = random_edges(NODES_10K, EDGES_10K, seed=2024)
    serial_seconds, serial_rows, _ = _measure(
        edges, EngineConfig.parallel(shards=1), repeat=3
    )
    sharded_seconds, sharded_rows, _ = _measure(
        edges, EngineConfig.parallel(shards=4, shard_backend="none"), repeat=3
    )
    assert sharded_rows == serial_rows
    assert sharded_seconds <= serial_seconds * 2.0, (
        f"compilation-free 4-shard run {sharded_seconds:.3f}s vs "
        f"{serial_seconds:.3f}s single-shard — sharding overhead regressed"
    )


@pytest.fixture(scope="module")
def tc_10k_edges():
    return random_edges(NODES_10K, EDGES_10K, seed=2024)


@pytest.mark.parametrize("shards", [1, 4])
def test_fixpoint_latency(benchmark, tc_10k_edges, shards):
    def evaluate():
        return ExecutionEngine(
            build_transitive_closure_program(tc_10k_edges),
            EngineConfig.parallel(shards=shards),
        ).evaluate()

    benchmark.pedantic(evaluate, rounds=1, iterations=1)

"""Governance overhead: the resilience layer's acceptance gate.

Not a paper figure — this benchmarks the resilience layer
(:mod:`repro.resilience`) and enforces its headline guarantee: lifecycle
governance is pay-for-what-you-use.

* ``test_governed_overhead_at_10k_edges`` — with a :class:`QueryLimits`
  whose every bound is set (but generous enough never to trip), the
  10k-edge transitive closure must run within 2% of the bare
  (``limits=None``) engine.  A real :class:`QueryGovernor` runs its
  deadline/row/round checks at every stratum and iteration boundary; this
  gate pins that enforcing limits is effectively free — so governance can
  default-on in a server without a performance conversation.

The gate compares the *median of per-round ratios*: each round times the
two variants back-to-back (GC disabled), so slow machine drift cancels
inside each ratio instead of biasing whichever variant ran later.  Run via
``scripts/smoke.sh --full`` or directly with
``PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py``.
"""

import statistics

from repro.bench.resilience import overhead_samples, tc_workload

#: Paired rounds; the gate takes the median ratio to suppress CI jitter.
ROUNDS = 7

GOVERNED_CEILING = 1.02


def test_governed_overhead_at_10k_edges():
    """Acceptance: an armed-but-untripped governor costs <= 2% on 10k-edge TC."""
    name, build_program, relation = tc_workload()
    ratios, equal = overhead_samples(build_program, relation, rounds=ROUNDS)
    assert equal, "governance changed the result set"
    overhead = statistics.median(ratios)
    assert overhead <= GOVERNED_CEILING, (
        f"governance overhead {overhead:.3f}x (median of "
        f"{[f'{r:.3f}' for r in ratios]}) on {name}"
    )

"""Serving acceptance gate: snapshot reads stay fast under a mutation batch.

Not a paper figure — this gates the concurrent query server
(:mod:`repro.server`) on its headline guarantee: MVCC snapshot reads never
block behind the single writer's incremental fixpoint.

``test_snapshot_reads_under_mutation_batch`` boots a server over the
10k-edge transitive closure, measures an idle read-latency profile, then
submits a **10,000-edge** ``apply`` batch (fresh-node chains, ~1.5-3s of
incremental fixpoint on the writer thread) and re-measures the same read
load while that mutation is running.  It asserts

* loaded p99 <= max(2 x idle p99, idle p99 + 10ms) — the 2x-of-idle
  acceptance bound, with a small absolute floor because idle p99 on the
  quick read path is single-digit milliseconds where scheduler noise
  alone can exceed 2x;
* every read observed a committed snapshot version (the pre-mutation
  version or the post-commit one, never a torn in-between state);
* at least one read completed against the *prior* snapshot after the
  batch was submitted — i.e. readers genuinely overlapped the writer;
* the final snapshot advanced by exactly one version and grew the result.

The reader clock runs with a shortened GIL switch interval: server and
clients share one process here, and the writer's fixpoint is a CPython
compute loop that would otherwise starve the asyncio loop in 5ms slices,
measuring the GIL rather than the server.  Run via ``scripts/smoke.sh
--full`` or directly with ``PYTHONPATH=src python -m pytest
benchmarks/bench_serving.py``.
"""

import asyncio
import sys
import threading
import time

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.bench.serving import percentile
from repro.server.client import AsyncClient, BlockingClient
from repro.server.runtime import ServerThread
from repro.workloads.graphs import random_edges

NODES, EDGES = 12_000, 10_000

#: The mutation batch: 250 fresh-node chains of 40 edges = 10,000 edges.
#: Fresh nodes bound the cascade (each chain only closes over itself);
#: chains this long still cost the writer a seconds-scale fixpoint, a
#: wide window for readers to overlap.
CHAINS, CHAIN_LENGTH = 250, 40
CHAIN_BASE = 20_000_000

READ_CLIENTS = 4
READS_PER_CLIENT = 30
READ_LIMIT = 16

#: p99 noise floor: below ~10ms, a single scheduler preemption can exceed
#: the 2x relative bound on its own.
ABSOLUTE_FLOOR_S = 0.010


def mutation_batch():
    edges = []
    for chain in range(CHAINS):
        start = CHAIN_BASE + chain * (CHAIN_LENGTH + 1)
        for step in range(CHAIN_LENGTH):
            edges.append((start + step, start + step + 1))
    return edges


async def _read_round(host, port, clients, per_client):
    """(latency_seconds, snapshot_version) per request, across clients."""
    samples = []

    async def one_client():
        client = await AsyncClient.connect(host, port)
        try:
            for _ in range(per_client):
                started = time.perf_counter()
                response = await client.request({
                    "op": "query", "relation": "path", "limit": READ_LIMIT,
                })
                samples.append((
                    time.perf_counter() - started,
                    response.get("snapshot_version"),
                ))
        finally:
            await client.close()

    await asyncio.gather(*(one_client() for _ in range(clients)))
    return samples


def timed_reads(host, port):
    return asyncio.run(
        _read_round(host, port, READ_CLIENTS, READS_PER_CLIENT)
    )


def test_snapshot_reads_under_mutation_batch():
    """Acceptance: p99 under a 10k-edge mutation <= 2x idle (10ms floor)."""
    program = build_transitive_closure_program(
        random_edges(NODES, EDGES, seed=2024)
    )
    database = Database(program)
    switch_interval = sys.getswitchinterval()
    try:
        with ServerThread(database) as server:
            with BlockingClient(server.host, server.port) as control:
                before = control.query_response("path")
            version_before = before["snapshot_version"]
            count_before = before["count"]

            timed_reads(server.host, server.port)  # warm-up
            idle = timed_reads(server.host, server.port)
            idle_p99 = percentile([s[0] for s in idle], 0.99)

            sys.setswitchinterval(0.0005)
            batch = mutation_batch()
            submitted = threading.Event()
            outcome = {}

            def run_mutation():
                with BlockingClient(server.host, server.port,
                                    timeout=300.0) as writer:
                    submitted.set()
                    outcome["report"] = writer.apply(
                        inserts={"edge": batch}
                    )

            mutator = threading.Thread(target=run_mutation, daemon=True)
            mutator.start()
            assert submitted.wait(timeout=30.0)
            time.sleep(0.05)  # let the apply reach the writer thread
            loaded = timed_reads(server.host, server.port)
            mutator.join(timeout=300.0)
            assert not mutator.is_alive(), "mutation batch never finished"
            assert "report" in outcome, "mutation batch failed"

            with BlockingClient(server.host, server.port) as control:
                after = control.query_response("path")
    finally:
        sys.setswitchinterval(switch_interval)
        database.close()

    loaded_p99 = percentile([s[0] for s in loaded], 0.99)
    versions = {version for _, version in loaded}
    version_after = after["snapshot_version"]

    assert version_after == version_before + 1
    assert after["count"] == count_before + CHAINS * (
        CHAIN_LENGTH * (CHAIN_LENGTH + 1) // 2
    )
    assert versions <= {version_before, version_after}, (
        f"reads observed uncommitted versions: {sorted(versions)}"
    )
    assert version_before in versions, (
        "no read completed against the prior snapshot while the "
        "mutation batch was running (the load did not overlap)"
    )
    ceiling = max(2 * idle_p99, idle_p99 + ABSOLUTE_FLOOR_S)
    assert loaded_p99 <= ceiling, (
        f"loaded p99 {loaded_p99 * 1000:.1f}ms exceeds "
        f"{ceiling * 1000:.1f}ms (idle p99 {idle_p99 * 1000:.1f}ms)"
    )

"""Table I: average execution time of interpreted Carac queries.

Each benchmark function times one cell of Table I — one workload under the
pure interpreter, unindexed/indexed × unoptimized ("worst") / hand-optimized
atom order.  The CSDA and CSPA workloads follow the paper's convention of
running only with indexes; the heaviest cells run a single round so the whole
module stays quick.  ``python -m repro.bench --only table1`` prints the
paper-shaped table from the same measurements.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.core.config import EngineConfig
from benchmarks.conftest import run_benchmark_once

MICRO = ["ackermann", "fibonacci", "primes"]
MACRO_BOTH_INDEX_MODES = ["andersen", "inverse_functions"]
MACRO_INDEX_ONLY = ["csda", "cspa_tiny"]


def _cell(benchmark, name, use_indexes, ordering, rounds=1):
    config = EngineConfig.interpreted(use_indexes=use_indexes)
    result = benchmark.pedantic(
        run_benchmark_once, args=(name, config, ordering), rounds=rounds, iterations=1,
    )
    assert result > 0


@pytest.mark.parametrize("name", MICRO + MACRO_BOTH_INDEX_MODES)
@pytest.mark.parametrize("use_indexes", [False, True], ids=["unindexed", "indexed"])
def test_table1_unoptimized(benchmark, name, use_indexes):
    _cell(benchmark, name, use_indexes, Ordering.WORST)


@pytest.mark.parametrize("name", MICRO + MACRO_BOTH_INDEX_MODES)
@pytest.mark.parametrize("use_indexes", [False, True], ids=["unindexed", "indexed"])
def test_table1_hand_optimized(benchmark, name, use_indexes):
    _cell(benchmark, name, use_indexes, Ordering.OPTIMIZED)


@pytest.mark.parametrize("name", MACRO_INDEX_ONLY)
def test_table1_index_only_unoptimized(benchmark, name):
    _cell(benchmark, name, True, Ordering.WORST)


@pytest.mark.parametrize("name", MACRO_INDEX_ONLY)
def test_table1_index_only_hand_optimized(benchmark, name):
    _cell(benchmark, name, True, Ordering.OPTIMIZED)

"""Table II: comparison with the state of the art.

Times each engine column — the DLX-like baseline, the Soufflé-like engine in
its three modes, and Carac's JIT — on the Table II workloads (Inverse
Functions, CSDA, CSPA at the reduced default scale).  The simulated C++
toolchain latency of the Soufflé-like compiler modes is set to a small value
here so the module stays fast; ``python -m repro.bench --only table2`` uses
the default latency and prints the full table.
"""

import pytest

from repro.analyses.ordering import Ordering
from repro.analyses.registry import get_benchmark
from repro.baselines import DLXLikeEngine, SouffleLikeEngine
from repro.core.config import CompilationGranularity, EngineConfig
from repro.engine.engine import ExecutionEngine

WORKLOADS = ["inverse_functions", "csda", "cspa_tiny"]
TOOLCHAIN_SECONDS = 0.05


def _program(name):
    return get_benchmark(name).build(Ordering.WRITTEN)


@pytest.mark.parametrize("name", WORKLOADS)
def test_table2_dlx_like(benchmark, name):
    def run():
        return DLXLikeEngine().run(_program(name)).evaluation_seconds

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("mode", ["interpreter", "compiler", "auto-tuned"])
def test_table2_souffle_like(benchmark, name, mode):
    def run():
        engine = SouffleLikeEngine(mode=mode, toolchain_seconds=TOOLCHAIN_SECONDS)
        return engine.run(_program(name)).reported_seconds

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("name", WORKLOADS)
def test_table2_carac_jit(benchmark, name):
    config = EngineConfig.jit(
        "quotes", granularity=CompilationGranularity.JOIN, use_indexes=True
    )

    def run():
        spec = get_benchmark(name)
        engine = ExecutionEngine(spec.build(Ordering.WRITTEN), config)
        engine.evaluate()
        return engine.profile.wall_seconds

    benchmark.pedantic(run, rounds=1, iterations=1)

"""Telemetry overhead: the no-op and traced acceptance gates.

Not a paper figure — this benchmarks the observability layer
(:mod:`repro.telemetry`) and enforces its headline guarantee: telemetry is
pay-for-what-you-use.

* ``test_noop_overhead_at_10k_edges`` — with a :class:`TelemetryConfig`
  present but disabled, the 10k-edge transitive closure must run within
  2% of the bare (``telemetry=None``) engine.  Every instrumentation site
  resolves to the shared no-op tracer; this gate pins that the hooks
  themselves are free.
* ``test_traced_overhead_at_10k_edges`` — with full tracing into a ring
  buffer (a span per stratum, iteration and vectorized operator), the same
  workload must stay within 10% of bare, with bit-for-bit equal results
  and a non-empty captured trace.

Overheads are measured best-of-5 with interleaved rounds (machine drift
hits every variant alike), GC disabled during the timed region.  Run via
``scripts/smoke.sh --full`` or directly with
``PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py``.
"""

from repro.bench.telemetry import measure_variants, tc_workload

#: Rounds per variant; the gates compare best-of to suppress CI jitter.
REPEAT = 5

NOOP_CEILING = 1.02
TRACED_CEILING = 1.10


def _measured(workload=None):
    workload = workload or tc_workload()
    name, build_program, relation = workload
    best = measure_variants(build_program, relation, repeat=REPEAT)
    return name, best


def test_noop_overhead_at_10k_edges():
    """Acceptance: a disabled TelemetryConfig costs <= 2% on the 10k-edge TC."""
    name, best = _measured()
    base_seconds, base_rows, _ = best["off"]
    seconds, rows, spans = best["noop"]
    assert rows == base_rows, "no-op telemetry changed the result set"
    assert spans == 0, "no-op telemetry captured spans"
    overhead = seconds / base_seconds
    assert overhead <= NOOP_CEILING, (
        f"no-op telemetry overhead {overhead:.3f}x on {name} "
        f"({seconds:.3f}s vs {base_seconds:.3f}s bare)"
    )


def test_traced_overhead_at_10k_edges():
    """Acceptance: full tracing costs <= 10% on the 10k-edge TC."""
    name, best = _measured()
    base_seconds, base_rows, _ = best["off"]
    seconds, rows, spans = best["traced"]
    assert rows == base_rows, "tracing changed the result set"
    assert spans > 0, "tracing captured no spans"
    overhead = seconds / base_seconds
    assert overhead <= TRACED_CEILING, (
        f"traced overhead {overhead:.3f}x on {name} "
        f"({seconds:.3f}s vs {base_seconds:.3f}s bare; {spans} spans)"
    )

"""Vectorized execution: speedup and exact-equivalence acceptance.

Not a paper figure — this benchmarks the vectorized batch execution layer
and enforces its headline guarantees:

* ``test_vectorized_speedup_at_10k_edges`` —
  ``EngineConfig.with_(executor="vectorized")`` must beat the pushdown
  (tuple-at-a-time) executor by at least 3x on the 10k-edge
  transitive-closure workload in interpreted mode, with bit-for-bit equal
  results.  Measured ~6x on a single-core CI box.
* ``test_vectorized_speedup_on_cspa`` — the same gate on the CSPA pointer
  analysis (the paper's Fig. 1 program; three mutually recursive
  relations).  Measured ~10x: CSPA's self-joins are exactly the shape the
  batch hash-join was built for.
* ``test_vectorized_bitwise_equal_across_modes`` — vectorized results are
  bit-for-bit equal to pushdown results across execution modes and shard
  counts (the differential property suite covers randomized programs;
  this pins the full-size workload).

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_vectorized.py
"""

import pytest

from repro.analyses.micro import build_transitive_closure_program
from repro.bench.vectorized import cspa_workload, run_vectorized, tc_workload
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.workloads.graphs import random_edges

NODES_10K = 12_000
EDGES_10K = 10_000


def _speedup_gate(workload, floor: float) -> None:
    rows = run_vectorized(
        workloads=[workload],
        modes=[("interpreted", EngineConfig.interpreted)],
        repeat=3,
    )
    by_executor = {row["executor"]: row for row in rows}
    vectorized = by_executor["vectorized"]
    assert vectorized["equal"], "vectorized result diverged from pushdown"
    assert vectorized["speedup"] >= floor, (
        f"vectorized only {vectorized['speedup']:.2f}x faster than pushdown "
        f"({vectorized['seconds']:.3f}s vs "
        f"{by_executor['pushdown']['seconds']:.3f}s)"
    )


def test_vectorized_speedup_at_10k_edges():
    """Acceptance: >= 3x over pushdown on the 10k-edge closure, bit-for-bit."""
    _speedup_gate(tc_workload(edge_count=EDGES_10K, nodes=NODES_10K), 3.0)


def test_vectorized_speedup_on_cspa():
    """Acceptance: >= 3x over pushdown on CSPA (measured ~10x)."""
    _speedup_gate(cspa_workload("cspa_small"), 3.0)


def test_vectorized_bitwise_equal_across_modes():
    """Every mode x shard-count combination computes the identical fixpoint."""
    edges = random_edges(2_000, 1_500, seed=11)
    reference = ExecutionEngine(
        build_transitive_closure_program(edges), EngineConfig.interpreted()
    ).evaluate()["path"]
    bases = [
        EngineConfig.interpreted(),
        EngineConfig.jit("bytecode"),
        EngineConfig.jit("lambda"),
        EngineConfig.aot(),
    ]
    for base in bases:
        for shards in (1, 2, 4):
            config = EngineConfig.parallel(shards=shards, base=base).with_(
                executor="vectorized"
            )
            engine = ExecutionEngine(build_transitive_closure_program(edges), config)
            assert engine.evaluate()["path"] == reference, (
                f"{config.describe()} diverged"
            )


@pytest.fixture(scope="module")
def tc_10k_edges():
    return random_edges(NODES_10K, EDGES_10K, seed=2024)


@pytest.mark.parametrize("executor", ["pushdown", "vectorized"])
def test_fixpoint_latency(benchmark, tc_10k_edges, executor):
    def evaluate():
        return ExecutionEngine(
            build_transitive_closure_program(tc_10k_edges),
            EngineConfig.interpreted().with_(executor=executor),
        ).evaluate()

    benchmark.pedantic(evaluate, rounds=1, iterations=1)

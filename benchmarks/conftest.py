"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper at a
reduced, laptop-friendly scale.  The pytest-benchmark timings give the raw
per-configuration numbers; the printable, paper-shaped tables come from
``python -m repro.bench``.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.analyses.ordering import Ordering
from repro.analyses.registry import get_benchmark
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine


def run_benchmark_once(name: str, config: EngineConfig, ordering: Ordering) -> int:
    """Build and evaluate one workload; returns the query-relation size."""
    spec = get_benchmark(name)
    engine = ExecutionEngine(spec.build(ordering), config)
    results = engine.evaluate()
    return len(results[spec.query_relation])


@pytest.fixture
def evaluate():
    return run_benchmark_once

"""Pytest bootstrap: make ``src/`` importable without installation.

The repository uses a src-layout; when the package has not been installed
(e.g. on a fresh offline checkout) this keeps ``pytest`` working.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

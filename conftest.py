"""Pytest bootstrap: make ``src/`` importable without installation.

The repository uses a src-layout; when the package has not been installed
(e.g. on a fresh offline checkout) this keeps ``pytest`` working.

Also registers the ``slow`` marker: heavyweight tests (paper-scale
benchmarks, pathological configurations) are skipped by default so the
tier-1 suite stays fast; run them with ``pytest --runslow``.
"""

import pathlib
import sys

import pytest

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked slow (paper-scale workloads)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: heavyweight test, skipped unless --runslow is given"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

"""Adaptive versus static optimization: why runtime information matters.

The paper's §IV example: the best join order for a CSPA sub-query changes
between iteration 1 (the delta relation is huge) and iteration 7 (the delta
relation is empty), so any single static order is wrong part of the time.
This example makes that concrete on the inverse-function analysis:

* static "hand-optimized" order, interpreted,
* ahead-of-time optimization only (facts + rules, no online adaptation),
* the full adaptive JIT re-optimizing at every rule, every iteration.

It prints the join orders the optimizer actually chose over time for the
analysis' long 9-atom rule, showing that they change as the value-flow
relation grows.

Run with:  python examples/adaptive_vs_static.py
"""

from __future__ import annotations

from repro.analyses import Ordering, build_inverse_functions_program
from repro.core.config import AOTSortMode, EngineConfig
from repro.engine import ExecutionEngine
from repro.workloads import SListLibGenerator


def evaluate(label: str, config: EngineConfig, ordering: Ordering) -> None:
    dataset = SListLibGenerator(seed=7).generate(list_length=14, extra_pipelines=3)
    program = build_inverse_functions_program(dataset, ordering=ordering)
    engine = ExecutionEngine(program, config)
    results = engine.evaluate()
    profile = engine.profile
    print(f"{label:48s} wasted-work sites: {len(results['wastedWork']):3d}   "
          f"time: {profile.wall_seconds * 1000:8.1f} ms   "
          f"reorders: {profile.reorder_count(changed_only=True):3d}")
    return profile


def main() -> None:
    print("Inverse-function analysis on SListLib-style facts")
    print("-" * 72)
    evaluate("interpreted, hand-optimized order",
             EngineConfig.interpreted(), Ordering.OPTIMIZED)
    evaluate("interpreted, unoptimized order",
             EngineConfig.interpreted(), Ordering.WORST)
    evaluate("ahead-of-time only (facts + rules)",
             EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES), Ordering.WORST)
    profile = evaluate("adaptive JIT (irgen backend)",
                       EngineConfig.jit("irgen"), Ordering.WORST)

    print()
    print("Join orders chosen for the 9-atom `wasted_work` rule over time:")
    seen = []
    for record in profile.reorders:
        if record.rule_name.startswith("wasted_work") and record.decision.changed:
            order = " -> ".join(record.decision.chosen_order)
            if not seen or seen[-1] != order:
                seen.append(order)
    if not seen:
        print("  (the greedy order never needed to change for this dataset)")
    for i, order in enumerate(seen[:6], start=1):
        print(f"  choice {i}: {order}")


if __name__ == "__main__":
    main()

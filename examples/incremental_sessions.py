"""Incremental sessions: serve queries while the fact base changes.

Builds a reachability program over a random graph, opens a long-lived
:class:`~repro.incremental.IncrementalSession`, and streams mutation batches
through it — comparing the per-batch repair latency against rebuilding the
engine and recomputing the fixpoint from scratch, and showing the result
cache absorbing repeated queries between updates.

Run with:  python examples/incremental_sessions.py
"""

from __future__ import annotations

import time

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.engine import ExecutionEngine
from repro.incremental import IncrementalSession
from repro.workloads import edge_update_stream


def main() -> None:
    stream = edge_update_stream(
        nodes=1_500, initial_edges=1_200, batches=6, batch_size=8,
        retract_fraction=0.4, seed=2024,
    )
    session = IncrementalSession(
        build_transitive_closure_program(stream.initial["edge"]),
        EngineConfig.interpreted(),
    )
    session.refresh()
    print(f"initial fixpoint: {len(session.query('path'))} path tuples "
          f"from {len(stream.initial['edge'])} edges\n")

    for i, batch in enumerate(stream, start=1):
        report = session.apply(inserts=batch.inserts, retracts=batch.retracts)

        started = time.perf_counter()
        engine = ExecutionEngine(session.snapshot_program(), EngineConfig.interpreted())
        scratch = engine.run()["path"]
        scratch_seconds = time.perf_counter() - started

        assert set(session.query("path")) == scratch
        print(f"batch {i}: +{batch.insert_count()} / -{batch.retract_count()} facts   "
              f"incremental {report.seconds * 1000:7.2f} ms   "
              f"recompute {scratch_seconds * 1000:7.2f} ms   "
              f"(cone {report.over_deleted}, rederived {report.rederived})")

    session.query("path")
    session.query("path")
    stats = session.cache.stats
    print(f"\nresult cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.invalidations} invalidations) across {session.updates_applied} updates")


if __name__ == "__main__":
    main()

"""Connections: serve queries while the fact base changes.

Builds a reachability program over a random graph, opens a long-lived
:class:`repro.Connection` (which wraps an incremental evaluation session),
and streams mutation batches through it — comparing the per-batch repair
latency against a one-shot ``Database.query`` recompute from scratch, and
showing the database-wide result cache absorbing repeated queries between
updates.

Run with:  python examples/incremental_sessions.py
"""

from __future__ import annotations

import time

from repro import Database, EngineConfig
from repro.analyses.micro import build_transitive_closure_program
from repro.workloads import edge_update_stream


def main() -> None:
    stream = edge_update_stream(
        nodes=1_500, initial_edges=1_200, batches=6, batch_size=8,
        retract_fraction=0.4, seed=2024,
    )
    db = Database(
        build_transitive_closure_program(stream.initial["edge"]),
        EngineConfig.interpreted(),
    )
    conn = db.connect()
    conn.refresh()
    print(f"initial fixpoint: {conn.query('path').count()} path tuples "
          f"from {len(stream.initial['edge'])} edges\n")

    for i, batch in enumerate(stream, start=1):
        report = conn.apply(inserts=batch.inserts, retracts=batch.retracts)

        started = time.perf_counter()
        scratch_db = Database(conn.session.snapshot_program(), db.config)
        scratch = scratch_db.query("path")
        scratch_seconds = time.perf_counter() - started

        assert conn.query("path") == scratch, "incremental state diverged"
        print(f"batch {i}: +{batch.insert_count()} / -{batch.retract_count()} facts   "
              f"incremental {report.seconds * 1000:7.2f} ms   "
              f"recompute {scratch_seconds * 1000:7.2f} ms   "
              f"(cone {report.over_deleted}, rederived {report.rederived})")

    conn.query("path")
    conn.query("path")
    stats = db.cache.stats
    print(f"\nresult cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.invalidations} invalidations) across "
          f"{conn.session.updates_applied} updates")
    conn.close()


if __name__ == "__main__":
    main()

"""Shard-parallel evaluation: a 1/2/4-shard scaling curve on reachability.

Builds the transitive-closure program over a random 10k-edge graph and
evaluates it through ``EngineConfig.parallel(shards=N)`` for N in {1, 2, 4},
printing per-run wall time, the chosen strategy/pool and the speedup over
one shard (``shards=1`` is the ordinary single-shard engine).  The result
sets are asserted bit-for-bit equal across shard counts.

Two effects drive the curve: the worker pool (real parallelism when the
machine has a core per shard — on smaller machines it degrades to serial
round-robin, which this script points out) and the shard workers' one-shot
plan compilation, which amortises across all rounds because shard plans are
frozen at setup.

Run with:  python examples/parallel_speedup.py [--edges N]
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.engine import ExecutionEngine
from repro.workloads import random_edges


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=10_000,
                        help="number of random edges (default 10000)")
    parser.add_argument("--repeat", type=int, default=2,
                        help="runs per shard count, best-of (default 2)")
    args = parser.parse_args()

    nodes = max(args.edges + 2_000, args.edges * 6 // 5)
    edges = random_edges(nodes, args.edges, seed=2024)
    cpus = os.cpu_count() or 1
    print(f"reachability over {len(edges)} random edges ({nodes} nodes), "
          f"{cpus} CPU core(s)\n")

    baseline = None
    reference = None
    for shards in (1, 2, 4):
        best_seconds = float("inf")
        result = None
        report = None
        for _ in range(args.repeat):
            engine = ExecutionEngine(
                build_transitive_closure_program(edges),
                EngineConfig.parallel(shards=shards),
            )
            started = time.perf_counter()
            rows = engine.evaluate()["path"]
            seconds = time.perf_counter() - started
            if seconds < best_seconds:
                best_seconds, result, report = seconds, rows, engine.parallel_report

        if baseline is None:
            baseline, reference = best_seconds, result
        assert result == reference, "sharded result diverged from single-shard"
        if report is None:
            detail = "standard engine (sharding disabled)"
        else:
            stratum = report.strata[-1]
            detail = f"strategy={stratum.strategy} pool={stratum.pool}"
        print(f"shards={shards}:  {best_seconds * 1000:8.1f} ms   "
              f"speedup {baseline / best_seconds:4.2f}x   {detail}   "
              f"({len(result)} path tuples)")

    if cpus < 4:
        print(f"\nnote: with {cpus} core(s) the pool degrades to serial "
              "round-robin; the remaining speedup comes from the shard "
              "workers' one-shot plan compilation. Expect a steeper curve "
              "on a multi-core machine.")


if __name__ == "__main__":
    main()

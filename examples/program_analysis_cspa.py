"""Program analysis: Graspan's context-sensitive pointer analysis (CSPA).

This is the paper's running example (Fig. 1): the VaFlow / VAlias / MAlias
rules over Assign and Dereference facts.  The example builds a synthetic
httpd-like fact graph, runs the analysis in the deliberately bad
("unoptimized") atom order with and without the adaptive JIT, and prints the
per-iteration delta cardinalities that make static join ordering so hard —
the reason the paper moves the optimization to runtime.

Run with:  python examples/program_analysis_cspa.py [--tuples N]

The default scale is small enough that even the deliberately bad interpreted
run finishes in a couple of seconds; pass ``--tuples 600`` to see the
pathological blow-up the paper opens with (minutes, not seconds).
"""

from __future__ import annotations

import argparse

from repro.analyses import Ordering, build_cspa_program
from repro.core.config import EngineConfig
from repro.engine import ExecutionEngine
from repro.workloads import HttpdLikeGenerator


def run(config: EngineConfig, label: str, tuples: int) -> None:
    dataset = HttpdLikeGenerator(seed=2024).cspa(tuples=tuples)
    program = build_cspa_program(dataset, ordering=Ordering.WORST)
    engine = ExecutionEngine(program, config)
    results = engine.evaluate()
    profile = engine.profile

    print(f"=== {label} ===")
    print(f"input facts: {dataset.fact_count()}   "
          f"VAlias: {len(results['VAlias'])}   VaFlow: {len(results['VaFlow'])}   "
          f"MAlias: {len(results['MAlias'])}")
    print(f"time: {profile.wall_seconds * 1000:.1f} ms   "
          f"iterations: {profile.iteration_count()}   "
          f"join reorders applied: {profile.reorder_count(changed_only=True)}")
    print("delta cardinalities per iteration (VaFlow):")
    series = [record.delta_cardinalities.get("VaFlow", 0) for record in profile.iterations]
    print("  " + " -> ".join(str(v) for v in series[:12]) + (" ..." if len(series) > 12 else ""))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=120,
                        help="size of the synthetic CSPA fact graph (default 120)")
    args = parser.parse_args()
    run(EngineConfig.interpreted(), "interpreted, as-written (bad) join order", args.tuples)
    run(EngineConfig.jit("lambda"), "adaptive JIT, lambda backend", args.tuples)
    run(EngineConfig.jit("quotes", asynchronous=True),
        "adaptive JIT, quotes backend, asynchronous compilation", args.tuples)


if __name__ == "__main__":
    main()

"""Quickstart: declare a recursive Datalog program and run it four ways.

Builds the classic graph-reachability query with the embedded DSL, evaluates
it with the plain interpreter, the adaptive JIT (two backends) and the
ahead-of-time optimizer, and shows that the results agree while the engine
reports what each strategy did (iterations, reorders, compilations).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EngineConfig, Program
from repro.workloads import random_edges


def build_reachability() -> Program:
    """path(x, y) := edge+(x, y) over a small random graph."""
    program = Program("reachability")
    edge = program.relation("edge", 2)
    path = program.relation("path", 2)
    x, y, z = program.variables("x", "y", "z")

    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)

    edge.add_facts(random_edges(nodes=60, edges=180, seed=11))
    return program


def main() -> None:
    configurations = [
        ("interpreted", EngineConfig.interpreted()),
        ("JIT / lambda backend", EngineConfig.jit("lambda")),
        ("JIT / quotes backend (runtime codegen)", EngineConfig.jit("quotes")),
        ("ahead-of-time + online reordering", EngineConfig.aot(online=True)),
    ]

    reference = None
    for label, config in configurations:
        program = build_reachability()
        engine = program.engine(config)
        results = engine.run()
        paths = results["path"]
        summary = engine.profile.summary()
        if reference is None:
            reference = paths
        agreement = "matches interpreter" if paths == reference else "MISMATCH"
        print(f"{label:40s} |path| = {len(paths):5d}  "
              f"time = {summary['wall_seconds'] * 1000:7.1f} ms  "
              f"iterations = {summary['iterations']:2d}  "
              f"reorders = {summary['reorders']:3d}  "
              f"compilations = {summary['compilations']:2d}  [{agreement}]")

    print()
    print("Every strategy computes the same fixpoint; they differ only in how")
    print("join orders are chosen and whether sub-queries are compiled at runtime.")


if __name__ == "__main__":
    main()

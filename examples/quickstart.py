"""Quickstart: the embedded-database API over a recursive Datalog program.

Builds the classic graph-reachability query with the embedded DSL, opens a
:class:`repro.Database` over it, and shows the whole public surface in one
sitting: one-shot queries, stateful connections with incremental updates,
``QueryResult`` pagination/exports, ``.explain()``, and the fact that every
execution strategy (interpreted, JIT, AOT, shard-parallel) returns
bit-for-bit identical rows through the same API.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, EngineConfig, Program
from repro.workloads import random_edges


def build_reachability() -> Program:
    """path(x, y) := edge+(x, y) over a small random graph."""
    program = Program("reachability")
    edge = program.relation("edge", columns=("src", "dst"))
    path = program.relation("path", columns=("src", "dst"))
    x, y, z = program.variables("x", "y", "z")

    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)

    edge.add_facts(random_edges(nodes=60, edges=180, seed=11))
    return program


def main() -> None:
    configurations = [
        ("interpreted", EngineConfig.interpreted()),
        ("JIT / lambda backend", EngineConfig.jit("lambda")),
        ("JIT / quotes backend (runtime codegen)", EngineConfig.jit("quotes")),
        ("ahead-of-time + online reordering", EngineConfig.aot(online=True)),
        ("shard-parallel (2 shards over JIT)",
         EngineConfig.parallel(shards=2, base=EngineConfig.jit("lambda"))),
    ]

    # -- one-shot queries: same rows through every execution subsystem --------
    reference = None
    for label, config in configurations:
        db = Database(build_reachability(), config)
        result = db.query("path")
        if reference is None:
            reference = result.to_frozenset()
        agreement = "matches interpreter" if result == reference else "MISMATCH"
        print(f"{label:42s} |path| = {result.count():5d}  [{agreement}]")

    # -- a stateful connection: mutate facts, read QueryResult snapshots ------
    db = Database(build_reachability(), EngineConfig.jit("lambda"))
    with db.connect() as conn:
        before = conn.query("path")
        report = conn.insert_facts("edge", [(1000, 1001), (1001, 1002)])
        after = conn.query("path")
        print(f"\nincremental insert: +{report.inserted} facts propagated "
              f"{report.propagated} derived rows in {report.seconds * 1000:.2f} ms "
              f"({before.count()} -> {after.count()} path tuples)")

        # QueryResult: deterministic order, pagination, columnar export.
        print(f"first rows: {after.take(3)}")
        print(f"page 2 (offset=3, limit=3): {list(after.rows(offset=3, limit=3))}")
        print(f"columns {after.columns}: "
              f"{ {k: v[:3] for k, v in after.to_columns().items()} }")
        print(f"as dicts: {after.to_dicts()[:2]}")

        print("\nexplain:")
        print(after.explain())

    print()
    print("Every strategy computes the same fixpoint; they differ only in how")
    print("join orders are chosen and whether sub-queries are compiled at runtime.")


if __name__ == "__main__":
    main()

"""The concurrent query server: snapshot reads racing a live writer.

Boots the asyncio query server (:mod:`repro.server`) over a transitive-
closure database on a background thread, then drives it with two wire
clients at once: one streams mutation batches through the single-writer
queue while the other keeps reading — and every read is answered from an
immutable MVCC snapshot, so the reader observes only committed versions,
never a half-applied fixpoint.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import threading
import time

from repro import Database
from repro.analyses.micro import build_transitive_closure_program
from repro.server import BlockingClient, ServerThread


def writer_loop(host: str, port: int, batches: int) -> None:
    with BlockingClient(host, port) as client:
        for i in range(batches):
            base = 1_000 * (i + 1)
            client.insert("edge", [(base + j, base + j + 1) for j in range(20)])
            time.sleep(0.01)


def main() -> None:
    edges = [(i, i + 1) for i in range(200)]
    database = Database(build_transitive_closure_program(edges))

    with ServerThread(database) as server:
        print(f"serving on {server.host}:{server.port}\n")

        writer = threading.Thread(
            target=writer_loop, args=(server.host, server.port, 5)
        )
        writer.start()

        with BlockingClient(server.host, server.port) as reader:
            seen = []
            while writer.is_alive() or not seen or seen[-1][0] < 5:
                response = reader.query_response("path")
                version = response["snapshot_version"]
                if not seen or version != seen[-1][0]:
                    seen.append((version, response["count"]))
                if version >= 5:
                    break
            writer.join()

            for version, count in seen:
                print(f"snapshot v{version}: {count:6d} path tuples")
            counts = [count for _, count in seen]
            assert counts == sorted(counts), "a read saw a torn state"

            stats = reader.server_stats()
            print(f"\nsys_server: {stats['mutations_applied']} mutation "
                  f"batches committed, snapshot v{stats['snapshot_version']} "
                  f"latest, {stats['snapshots']['live']} version(s) live")
            for row in reader.query("sys_connections"):
                conn_id, peer, state, mode, queries, mutations, bi, bo = row
                print(f"sys_connections: conn {conn_id} ({mode}) "
                      f"{queries} queries, {mutations} mutations, "
                      f"{bi}B in / {bo}B out")

    database.close()
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()

"""Textual Datalog: open a Database over source text and query it.

Shows the parser front end (Soufflé-style surface syntax with negation,
arithmetic and aggregation) behind :meth:`repro.Database.from_source`, the
``QueryResult`` exports, and the plan explainer — a small "who can reach the
database through which services" analysis over a microservice call graph.

Run with:  python examples/textual_datalog.py
"""

from __future__ import annotations

from repro import Database, EngineConfig

SOURCE = """
% service call graph: calls(caller, callee)
calls(frontend, auth).       calls(frontend, catalog).
calls(catalog, search).      calls(catalog, inventory).
calls(auth, userdb).         calls(inventory, warehousedb).
calls(search, indexdb).      calls(reporting, warehousedb).
calls(admin, reporting).     calls(admin, userdb).

% which services hold sensitive data
sensitive(userdb). sensitive(warehousedb).

% transitive reachability
reaches(X, Y) :- calls(X, Y).
reaches(X, Z) :- reaches(X, Y), calls(Y, Z).

% a service is exposed when it can reach sensitive data
exposed(X, D) :- reaches(X, D), sensitive(D).

% services that touch no sensitive data at all
isolated(X) :- calls(X, Y), !exposedAny(X).
exposedAny(X) :- exposed(X, D).

% how many sensitive stores each service can reach
exposure(X, count(D)) :- exposed(X, D).
"""


def main() -> None:
    db = Database.from_source(SOURCE, EngineConfig.jit("lambda"),
                              name="service-graph")
    results = db.query()  # one ResultSet covering every derived relation

    print("exposed service -> sensitive store:")
    for service, store in results["exposed"]:
        print(f"  {service:10s} -> {store}")
    print()
    print("exposure counts:", results["exposure"].to_list())
    print("isolated services:", [v for (v,) in results["isolated"]])
    print()
    print("logical plan (after any JIT rewrites):")
    print(results.explain())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh ``repro.bench`` JSON dump against a
committed baseline.

Usage::

    python scripts/bench_compare.py benchmarks/baseline.json BENCH_7.json
    python scripts/bench_compare.py --self-test benchmarks/baseline.json

Both files are the ``--json`` output of ``python -m repro.bench`` (shape:
``{harness, argv, total_seconds, sections: {name: [row dicts]}}``).  Rows
are matched across files by their *identity columns* — every column whose
name does not look like a measurement — and compared on their summed
timing columns (``seconds`` and ``*_seconds``).

Exit codes: 0 ok, 1 regression over threshold, 2 structural mismatch
(section or row present in the baseline but missing from the fresh run).

A fresh row must exceed the baseline by *both* the relative threshold
(default 25%) and a small absolute floor before it counts as a regression:
--quick rows run a few milliseconds, where scheduler noise alone can be a
large multiple.

``--self-test`` checks the gate itself: the baseline compared against
itself must pass, and compared against a doctored copy (every timing
doubled) must fail.  ``scripts/smoke.sh`` runs this so CI notices if the
comparison ever goes soft.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from typing import Dict, List, Tuple

#: Column-name fragments marking a value as a measurement, not an identity.
MEASUREMENT_HINTS = (
    "seconds", "speedup", "overhead", "span", "rows", "mb", "ratio",
    "p50", "p99", "per_sec", "requests", "errors",
)

#: Ignore regressions smaller than this many seconds outright.
DEFAULT_ABSOLUTE_FLOOR = 0.01


def is_measurement(column: str) -> bool:
    lowered = column.lower()
    return any(hint in lowered for hint in MEASUREMENT_HINTS)


def row_identity(row: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """The stable identity of one bench row: its non-measurement columns."""
    return tuple(sorted(
        (key, str(value))
        for key, value in row.items()
        if not is_measurement(key)
    ))


def row_seconds(row: Dict[str, object]) -> float:
    """The summed wall-time of one row's timing columns."""
    total = 0.0
    for key, value in row.items():
        if key == "seconds" or key.endswith("_seconds"):
            try:
                total += float(value)
            except (TypeError, ValueError):
                pass
    return total


def identity_label(identity: Tuple[Tuple[str, str], ...]) -> str:
    return " ".join(f"{key}={value}" for key, value in identity)


def compare(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    threshold: float = 0.25,
    absolute_floor: float = DEFAULT_ABSOLUTE_FLOOR,
    out=sys.stdout,
) -> int:
    """Print the per-row delta table; return the exit code."""
    base_sections = baseline.get("sections", {})
    fresh_sections = fresh.get("sections", {})
    missing_sections = sorted(set(base_sections) - set(fresh_sections))
    if missing_sections:
        print(
            f"MISMATCH: sections missing from fresh run: {missing_sections}",
            file=out,
        )
        return 2

    exit_code = 0
    for section in sorted(base_sections):
        base_rows = {
            row_identity(row): row_seconds(row)
            for row in base_sections[section]
        }
        fresh_rows = {
            row_identity(row): row_seconds(row)
            for row in fresh_sections[section]
        }
        missing = sorted(set(base_rows) - set(fresh_rows))
        if missing:
            print(f"MISMATCH [{section}]: rows missing from fresh run:",
                  file=out)
            for identity in missing:
                print(f"  {identity_label(identity)}", file=out)
            return 2

        print(f"section {section} (threshold +{threshold:.0%}, "
              f"floor {absolute_floor}s):", file=out)
        section_base = 0.0
        section_fresh = 0.0
        for identity in sorted(base_rows):
            base_s = base_rows[identity]
            fresh_s = fresh_rows[identity]
            section_base += base_s
            section_fresh += fresh_s
            delta = fresh_s - base_s
            relative = delta / base_s if base_s > 0 else 0.0
            regressed = (
                relative > threshold and delta > absolute_floor
            )
            marker = "  ** REGRESSION **" if regressed else ""
            print(
                f"  {identity_label(identity)}: "
                f"{base_s:.4f}s -> {fresh_s:.4f}s "
                f"({relative:+.1%}){marker}",
                file=out,
            )
            if regressed:
                exit_code = 1
        delta = section_fresh - section_base
        relative = delta / section_base if section_base > 0 else 0.0
        regressed = relative > threshold and delta > absolute_floor
        if regressed:
            exit_code = 1
        print(
            f"  total: {section_base:.4f}s -> {section_fresh:.4f}s "
            f"({relative:+.1%})"
            + ("  ** REGRESSION **" if regressed else ""),
            file=out,
        )
    return exit_code


def doctored(data: Dict[str, object], factor: float = 2.0) -> Dict[str, object]:
    """A deep copy with every timing column scaled by ``factor``."""
    slowed = copy.deepcopy(data)
    for rows in slowed.get("sections", {}).values():
        for row in rows:
            for key, value in list(row.items()):
                if key == "seconds" or key.endswith("_seconds"):
                    try:
                        row[key] = float(value) * factor
                    except (TypeError, ValueError):
                        pass
    return slowed


def self_test(baseline: Dict[str, object], out=sys.stdout) -> int:
    """Baseline-vs-itself must pass; baseline-vs-2x-doctored must fail."""
    clean = compare(baseline, copy.deepcopy(baseline), out=out)
    if clean != 0:
        print("SELF-TEST FAILED: baseline vs itself did not pass", file=out)
        return 1
    slowed = compare(baseline, doctored(baseline), out=out)
    if slowed != 1:
        print(
            "SELF-TEST FAILED: baseline vs 2x-doctored copy did not "
            f"report a regression (exit {slowed})",
            file=out,
        )
        return 1
    print("self-test OK: identical run passes, 2x slowdown fails", file=out)
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", nargs="?", help="fresh bench JSON to gate")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative wall-time regression limit (0.25 = +25%%)")
    parser.add_argument("--absolute-floor", type=float,
                        default=DEFAULT_ABSOLUTE_FLOOR,
                        help="ignore regressions smaller than this (seconds)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches a synthetic 2x slowdown")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if args.self_test:
        return self_test(baseline)
    if args.fresh is None:
        parser.error("fresh JSON required unless --self-test")
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    code = compare(
        baseline, fresh,
        threshold=args.threshold, absolute_floor=args.absolute_floor,
    )
    if code == 0:
        print("bench-compare OK")
    return code


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Fast CI smoke: the quick test subset plus one micro-benchmark sanity run.
#
# Usage: scripts/smoke.sh [--full]
#   default  ~1 minute: unit + integration tests (slow-marked tests skipped)
#            and the incremental-update acceptance benchmark at reduced scale
#   --full   also runs the slow-marked tests and the pytest-benchmark suite
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== incremental acceptance benchmark (10k-edge graph) =="
python -m pytest -x -q benchmarks/bench_incremental.py::test_single_batch_speedup_at_10k_edges

echo
echo "== subsystem smoke benches (perf trajectory -> BENCH_10.json) =="
# One machine-readable dump per CI run: 2-shard parallel, vectorized
# executor, dictionary-encoded storage, telemetry overhead, governance
# overhead, concurrent serving latency and durable warm restart at
# --quick scale.  smoke.yml uploads BENCH_10.json as an artifact, and the
# committed baseline gates it below.
python -m repro.bench --quick --only parallel,vectorized,interning,telemetry,resilience,serving,durability --json BENCH_10.json

echo
echo "== perf-regression gate (BENCH_10.json vs benchmarks/baseline.json) =="
# First prove the gate itself still bites (a doctored 2x slowdown must
# fail), then diff the fresh run against the committed baseline: any
# section or row more than 25% slower (and past the noise floor) fails CI.
python scripts/bench_compare.py --self-test benchmarks/baseline.json > /dev/null
python scripts/bench_compare.py benchmarks/baseline.json BENCH_10.json

echo
echo "== concurrent query server (boot, mixed load, clean shutdown) =="
# Boot the asyncio server on a background thread, drive it with the
# serving load generator (4 clients, 90/10 read/write mix), then check
# the self-reported counters over the wire before shutting down.
python - <<'PY'
from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.bench.serving import run_mixed_load
from repro.server import BlockingClient, ServerThread

database = Database(
    build_transitive_closure_program([(i, i + 1) for i in range(50)])
)
with ServerThread(database) as server:
    outcome = run_mixed_load(server.host, server.port, clients=4,
                             requests_per_client=25, write_ratio=0.1)
    assert outcome["errors"] == 0, outcome
    with BlockingClient(server.host, server.port) as client:
        stats = client.server_stats()
        assert stats["mutations_applied"] > 0
        assert stats["snapshot_version"] == stats["mutations_applied"]
        assert len(client.query("sys_server")) == 1
    print(f"served {len(outcome['latencies'])} requests over 4 connections; "
          f"{stats['mutations_applied']} mutation batches committed")
database.close()
PY

echo
echo "== kill -9 then recover (WAL survives an unclean server death) =="
# Boot the server CLI on a durability directory, commit a mutation over
# the wire, SIGKILL the process (no drain, no checkpoint-on-close), then
# restart from the same directory and verify the committed rows come
# back over the wire.
python - <<'PY'
import os
import signal
import subprocess
import sys
import tempfile

from repro.server import BlockingClient

workdir = tempfile.mkdtemp(prefix="repro-smoke-durability-")
program = os.path.join(workdir, "tc.dl")
durdir = os.path.join(workdir, "dur")
with open(program, "w", encoding="utf-8") as handle:
    handle.write(
        "edge(1, 2).\n"
        "edge(2, 3).\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
    )

def boot():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--program", program,
         "--port", "0", "--durability", durdir],
        stderr=subprocess.PIPE, text=True,
    )
    while True:
        line = proc.stderr.readline()
        assert line, "server exited before listening"
        if "listening on" in line:
            return proc, int(line.rsplit(":", 1)[1])

proc, port = boot()
with BlockingClient("127.0.0.1", port) as client:
    client.insert("edge", [[3, 4]])
    before = len(client.query("path"))
proc.kill()  # SIGKILL: the WAL is all that survives
proc.wait()

proc, port = boot()
try:
    with BlockingClient("127.0.0.1", port) as client:
        paths = client.query("path")
        assert len(paths) == before, (len(paths), before)
        assert (1, 4) in paths, "replayed mutation lost its derived rows"
finally:
    proc.send_signal(signal.SIGINT)
    proc.wait()
print(f"recovered {before} path rows across a kill -9 restart")
PY

echo
echo "== fault-injected server boot (typed error over the wire, then recovery) =="
# Boot the server CLI with REPRO_FAULTS arming the WAL fsync point to fail
# exactly once.  The first committed mutation must surface as a *typed*
# durability_error on the wire (never a stack trace or a hung client); the
# schedule then recovers, so the retried mutation commits and survives a
# restart of the same directory.
python - <<'PY'
import os
import signal
import subprocess
import sys
import tempfile

from repro.server import BlockingClient
from repro.server.client import ServerError

workdir = tempfile.mkdtemp(prefix="repro-smoke-faults-")
program = os.path.join(workdir, "tc.dl")
durdir = os.path.join(workdir, "dur")
with open(program, "w", encoding="utf-8") as handle:
    handle.write(
        "edge(1, 2).\n"
        "edge(2, 3).\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
    )

def boot(faults=None):
    env = dict(os.environ)
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--program", program,
         "--port", "0", "--durability", durdir, "--fsync", "always"],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    while True:
        line = proc.stderr.readline()
        assert line, "server exited before listening"
        if "listening on" in line:
            return proc, int(line.rsplit(":", 1)[1])

proc, port = boot(faults="wal.fsync:fail_nth=1")
try:
    with BlockingClient("127.0.0.1", port) as client:
        try:
            client.insert("edge", [[3, 4]])
        except ServerError as error:
            assert error.code == "durability_error", error.code
        else:
            raise AssertionError("injected fsync fault never surfaced")
        client.insert("edge", [[3, 4]])  # the schedule recovered
        assert (1, 4) in client.query("path")
finally:
    proc.send_signal(signal.SIGINT)
    proc.wait()

proc, port = boot()  # clean boot: the committed write replayed from WAL
try:
    with BlockingClient("127.0.0.1", port) as client:
        assert (1, 4) in client.query("path"), "post-fault commit not durable"
finally:
    proc.send_signal(signal.SIGINT)
    proc.wait()
print("typed durability_error over the wire; post-fault commit durable")
PY

echo
echo "== sample trace (JSON-lines artifact -> TRACE_SAMPLE.jsonl) =="
# A small sharded, vectorized, fully traced round-trip; the trace lands in
# TRACE_SAMPLE.jsonl (one JSON document per completed trace), which
# smoke.yml uploads so reviewers can eyeball span trees without re-running.
python - <<'PY'
from repro import Database, EngineConfig, Program
from repro.telemetry import tracing

program = Program("smoke_trace")
edge, path = program.relations("edge", "path", arity=2)
x, y, z = program.variables("x", "y", "z")
path(x, y) <= edge(x, y)
path(x, z) <= path(x, y) & edge(y, z)
edge.add_facts([(i, i + 1) for i in range(40)])

config = EngineConfig.parallel(shards=4, pool="thread").with_(
    executor="vectorized",
    telemetry=tracing(ring=16, jsonl_path="TRACE_SAMPLE.jsonl"),
)
with Database(program, config) as db, db.connect() as conn:
    result = conn.query("path")
    trace = result.trace()
    assert trace is not None and len(trace) > 3, "trace capture failed"
    conn.insert_facts("edge", [(41, 0)])
    print(f"captured {len(trace)} query spans; metrics: "
          f"{db.metrics()['rows_derived_total']} rows derived")
PY
test -s TRACE_SAMPLE.jsonl

echo
echo "== public-API drift guard (snapshot + deprecation shims) =="
python -m pytest -x -q tests/api

echo
echo "== examples (DeprecationWarning = error, so API drift fails here) =="
for example in examples/*.py; do
  echo "-- ${example}"
  python -W error::DeprecationWarning "${example}" > /dev/null
done

echo
echo "== micro-benchmark sanity (fibonacci, one JIT configuration) =="
python - <<'PY'
from repro.analyses.registry import get_benchmark
from repro.core.config import EngineConfig

spec = get_benchmark("fibonacci")
result = spec.query(EngineConfig.jit("lambda"))
assert result.count() > 0, "fibonacci benchmark produced no tuples"
print(f"fibonacci: {result.count()} tuples; first rows {result.take(3)}")
PY

if [[ "${1:-}" == "--full" ]]; then
  echo
  echo "== slow tests =="
  python -m pytest -q --runslow tests
  echo
  echo "== pytest-benchmark suite =="
  # Explicit file list: bench_*.py does not match pytest's default
  # python_files pattern, so a bare `pytest benchmarks` collects nothing
  # (and its exit code 5 would abort this script).
  python -m pytest -q benchmarks/bench_*.py
fi

echo
echo "smoke OK"

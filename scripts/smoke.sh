#!/usr/bin/env bash
# Fast CI smoke: the quick test subset plus one micro-benchmark sanity run.
#
# Usage: scripts/smoke.sh [--full]
#   default  ~1 minute: unit + integration tests (slow-marked tests skipped)
#            and the incremental-update acceptance benchmark at reduced scale
#   --full   also runs the slow-marked tests and the pytest-benchmark suite
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== incremental acceptance benchmark (10k-edge graph) =="
python -m pytest -x -q benchmarks/bench_incremental.py::test_single_batch_speedup_at_10k_edges

echo
echo "== subsystem smoke benches (perf trajectory -> BENCH_5.json) =="
# One machine-readable dump per CI run: 2-shard parallel, vectorized
# executor and dictionary-encoded storage at --quick scale.  smoke.yml
# uploads BENCH_5.json as an artifact so future PRs can diff against a
# recorded baseline.
python -m repro.bench --quick --only parallel,vectorized,interning --json BENCH_5.json

echo
echo "== public-API drift guard (snapshot + deprecation shims) =="
python -m pytest -x -q tests/api

echo
echo "== examples (DeprecationWarning = error, so API drift fails here) =="
for example in examples/*.py; do
  echo "-- ${example}"
  python -W error::DeprecationWarning "${example}" > /dev/null
done

echo
echo "== micro-benchmark sanity (fibonacci, one JIT configuration) =="
python - <<'PY'
from repro.analyses.registry import get_benchmark
from repro.core.config import EngineConfig

spec = get_benchmark("fibonacci")
result = spec.query(EngineConfig.jit("lambda"))
assert result.count() > 0, "fibonacci benchmark produced no tuples"
print(f"fibonacci: {result.count()} tuples; first rows {result.take(3)}")
PY

if [[ "${1:-}" == "--full" ]]; then
  echo
  echo "== slow tests =="
  python -m pytest -q --runslow tests
  echo
  echo "== pytest-benchmark suite =="
  # Explicit file list: bench_*.py does not match pytest's default
  # python_files pattern, so a bare `pytest benchmarks` collects nothing
  # (and its exit code 5 would abort this script).
  python -m pytest -q benchmarks/bench_*.py
fi

echo
echo "smoke OK"

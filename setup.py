"""Packaging for the Carac reproduction (src-layout, offline-friendly).

The package metadata lives here (no ``pyproject.toml``) so that editable
installs keep working in offline environments that lack the ``wheel``
package (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-carac",
    version="0.3.0",
    description=(
        "Reproduction of 'Compiling Structured Queries with Adaptive "
        "Metaprogramming' (ICDE 2024): an adaptive Datalog engine with "
        "JIT/AOT join ordering, incremental and shard-parallel evaluation "
        "subsystems behind an embedded Database/Connection/QueryResult API"
    ),
    long_description=(
        "A pure-Python Datalog engine reproducing the paper's adaptive "
        "metaprogramming evaluation study: interpreted, JIT (four code "
        "generation backends) and ahead-of-time configurations over the "
        "paper's macro/micro benchmark programs, plus a long-lived "
        "incremental session API with delta ingestion, DRed retraction and "
        "generation-based result caching."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.__main__:main",
        ],
    },
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Database :: Database Engines/Servers",
    ],
)

"""repro: a Python reproduction of "Adaptive Recursive Query Optimization" (ICDE 2024).

The package implements Carac — a Datalog engine whose join orders are
re-optimized continuously at runtime via staged code generation — along with
every substrate it needs (Datalog frontend, relational storage layer, IR,
workloads, baseline engines) and the benchmark harness that regenerates the
paper's tables and figures.

The public surface is the embedded-database API — one :class:`Database` per
program, :class:`Connection` objects for stateful work, every read returning
a first-class :class:`QueryResult`::

    from repro import Database, EngineConfig, Program

    program = Program("reachability")
    edge = program.relation("edge", columns=("src", "dst"))
    path = program.relation("path", 2)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts([(1, 2), (2, 3), (3, 4)])

    db = Database(program, EngineConfig.jit(backend="lambda"))
    with db.connect() as conn:
        conn.insert_facts("edge", [(4, 5)])
        result = conn.query("path")
        print(result.count(), result.take(3))
        print(result.explain())

Every execution subsystem — interpreted, JIT, AOT, incremental sessions,
shard-parallel (``EngineConfig.parallel(shards=N)``) — plugs in beneath this
one surface and returns bit-for-bit identical results.
"""

from repro.api.database import Connection, Database
from repro.api.result import QueryResult, ResultSchema, ResultSet
from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
    ShardingConfig,
)
from repro.datalog.dsl import Program, RelationHandle
from repro.durability import DurabilityConfig
from repro.datalog.literals import compare, let
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine
from repro.incremental.session import IncrementalSession
from repro.resilience import (
    Cancelled,
    CancellationToken,
    DeadlineExceeded,
    DurabilityError,
    QueryLimits,
    ResilienceError,
    ResourceExhausted,
    WorkerFailed,
)

__version__ = "1.1.0"

__all__ = [
    "AOTSortMode",
    "CancellationToken",
    "Cancelled",
    "CompilationGranularity",
    "Connection",
    "Database",
    "DeadlineExceeded",
    "DurabilityConfig",
    "DurabilityError",
    "EngineConfig",
    "ExecutionEngine",
    "ExecutionMode",
    "IncrementalSession",
    "Program",
    "QueryLimits",
    "QueryResult",
    "RelationHandle",
    "ResilienceError",
    "ResourceExhausted",
    "ResultSchema",
    "ResultSet",
    "ShardingConfig",
    "Variable",
    "WorkerFailed",
    "compare",
    "let",
    "parse_program",
    "__version__",
]

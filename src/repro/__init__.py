"""repro: a Python reproduction of "Adaptive Recursive Query Optimization" (ICDE 2024).

The package implements Carac — a Datalog engine whose join orders are
re-optimized continuously at runtime via staged code generation — along with
every substrate it needs (Datalog frontend, relational storage layer, IR,
workloads, baseline engines) and the benchmark harness that regenerates the
paper's tables and figures.

Quickstart::

    from repro import Program, EngineConfig

    program = Program("reachability")
    edge = program.relation("edge", 2)
    path = program.relation("path", 2)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts([(1, 2), (2, 3), (3, 4)])

    print(program.solve("path", EngineConfig.jit(backend="lambda")))
"""

from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
    ShardingConfig,
)
from repro.datalog.dsl import Program, RelationHandle
from repro.datalog.literals import compare, let
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable
from repro.engine.engine import ExecutionEngine

__version__ = "1.0.0"

__all__ = [
    "AOTSortMode",
    "CompilationGranularity",
    "EngineConfig",
    "ExecutionEngine",
    "ExecutionMode",
    "ShardingConfig",
    "Program",
    "RelationHandle",
    "Variable",
    "compare",
    "let",
    "parse_program",
    "__version__",
]

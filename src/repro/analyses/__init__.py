"""Benchmark query programs: the macro program analyses and micro programs.

Each builder returns a :class:`~repro.datalog.program.DatalogProgram` with
facts already loaded, in one of three atom orderings:

* ``"written"`` — the order the paper's Fig. 1 (or the classic formulation)
  uses; a plausible order an author might write.
* ``"optimized"`` — the hand-optimized formulation: atoms ordered to keep
  intermediate results small (what §VI-B calls "hand-optimized").
* ``"worst"`` — the deliberately inefficient formulation simulating a user
  with bad luck (what §VI-B calls "unoptimized").

The engine never inspects which variant it is given, which is exactly the
point of the experiments: the JIT has to recover good orders from runtime
information alone.
"""

from repro.analyses.ordering import Ordering, pick_order
from repro.analyses.cspa import build_cspa_program
from repro.analyses.csda import build_csda_program
from repro.analyses.andersen import build_andersen_program
from repro.analyses.inverse_functions import build_inverse_functions_program
from repro.analyses.micro import (
    build_ackermann_program,
    build_fibonacci_program,
    build_primes_program,
    build_same_generation_program,
    build_transitive_closure_program,
)
from repro.analyses.registry import BenchmarkSpec, get_benchmark, list_benchmarks

__all__ = [
    "BenchmarkSpec",
    "Ordering",
    "build_ackermann_program",
    "build_andersen_program",
    "build_cspa_program",
    "build_csda_program",
    "build_fibonacci_program",
    "build_inverse_functions_program",
    "build_primes_program",
    "build_same_generation_program",
    "build_transitive_closure_program",
    "get_benchmark",
    "list_benchmarks",
    "pick_order",
]

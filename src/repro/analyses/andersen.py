"""Andersen's points-to analysis (context- and flow-insensitive), Doop-style.

Four statement forms over program variables and abstract heap objects::

    y = &x      addressOf(y, x)
    y = x       assign(y, x)
    y = *x      load(y, x)
    *y = x      store(y, x)

and the classic inference rules with a heap-indirection relation so that the
load/store rules are genuine 3-way joins (the shape the join-order
optimization targets).
"""

from __future__ import annotations

from repro.analyses.ordering import Ordering, pick_order
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.workloads.program_facts import SListLibDataset


def build_andersen_program(dataset: SListLibDataset,
                           ordering: "Ordering | str" = Ordering.WRITTEN,
                           name: str = "andersen") -> DatalogProgram:
    """Andersen's analysis over the SListLib-style fact base."""
    program = DatalogProgram(name)
    y, x, z, w = Variable("y"), Variable("x"), Variable("z"), Variable("w")

    address_of = lambda a, b: Atom("addressOf", (a, b))  # noqa: E731
    assign = lambda a, b: Atom("assign", (a, b))         # noqa: E731
    load = lambda a, b: Atom("load", (a, b))             # noqa: E731
    store = lambda a, b: Atom("store", (a, b))           # noqa: E731
    points_to = lambda a, b: Atom("pointsTo", (a, b))    # noqa: E731
    heap_points_to = lambda a, b: Atom("heapPointsTo", (a, b))  # noqa: E731

    program.add_rule(points_to(y, x), [address_of(y, x)], name="pt_addressOf")
    program.add_rule(
        points_to(y, x),
        pick_order(
            ordering,
            optimized=[assign(y, z), points_to(z, x)],
            worst=[points_to(z, x), assign(y, z)],
            written=[assign(y, z), points_to(z, x)],
        ),
        name="pt_assign",
    )
    # y = *x:  pt(y, o2) :- load(y, x), pt(x, o), heapPt(o, o2)
    program.add_rule(
        points_to(y, x),
        pick_order(
            ordering,
            optimized=[load(y, z), points_to(z, w), heap_points_to(w, x)],
            worst=[heap_points_to(w, x), points_to(z, w), load(y, z)],
            written=[load(y, z), points_to(z, w), heap_points_to(w, x)],
        ),
        name="pt_load",
    )
    # *y = x:  heapPt(o, o2) :- store(y, x), pt(y, o), pt(x, o2)
    program.add_rule(
        heap_points_to(w, x),
        pick_order(
            ordering,
            optimized=[store(y, z), points_to(y, w), points_to(z, x)],
            worst=[points_to(y, w), points_to(z, x), store(y, z)],
            written=[store(y, z), points_to(y, w), points_to(z, x)],
        ),
        name="hpt_store",
    )

    for relation, rows in dataset.andersen_facts().items():
        program.add_facts(relation, rows)
    return program

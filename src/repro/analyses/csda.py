"""Graspan's Context-Sensitive Dataflow Analysis (CSDA).

A null-value propagation over the program's dataflow graph.  All rules are
2-way joins, which is why the paper uses CSDA to show that the lightweight
IRGenerator backend — whose only lever on a binary join is swapping the two
sides — can beat the heavier code-generating backends when there is little
room for specialization to pay off.
"""

from __future__ import annotations

from repro.analyses.ordering import Ordering, pick_order
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.workloads.program_facts import CSDADataset


def build_csda_program(dataset: CSDADataset,
                       ordering: "Ordering | str" = Ordering.WRITTEN,
                       name: str = "csda") -> DatalogProgram:
    """Dataflow reachability plus null propagation over ``dataset``."""
    program = DatalogProgram(name)
    x, y, z, s = Variable("x"), Variable("y"), Variable("z"), Variable("s")

    edge = lambda a, b: Atom("edge", (a, b))          # noqa: E731
    flows = lambda a, b: Atom("flows", (a, b))        # noqa: E731
    null_source = lambda a: Atom("nullSource", (a,))  # noqa: E731
    null_flow = lambda a: Atom("nullFlow", (a,))      # noqa: E731

    program.add_rule(flows(x, y), [edge(x, y)], name="flows_base")
    program.add_rule(
        flows(x, z),
        pick_order(
            ordering,
            optimized=[flows(x, y), edge(y, z)],
            worst=[edge(y, z), flows(x, y)],
            written=[flows(x, y), edge(y, z)],
        ),
        name="flows_step",
    )
    program.add_rule(
        null_flow(y),
        pick_order(
            ordering,
            optimized=[null_source(s), flows(s, y)],
            worst=[flows(s, y), null_source(s)],
            written=[null_source(s), flows(s, y)],
        ),
        name="null_propagation",
    )
    program.add_rule(null_flow(s), [null_source(s)], name="null_base")

    program.add_facts("edge", dataset.edge)
    program.add_facts("nullSource", dataset.null_source)
    return program

"""Graspan's Context-Sensitive Pointer Analysis (CSPA), the paper's Fig. 1.

Three mutually recursive IDB relations — ``VaFlow`` (value flow), ``VAlias``
(value alias) and ``MAlias`` (memory alias) — over two EDB relations,
``Assign`` and ``Derefr``.  The rules below follow Fig. 1(a); the
``optimized`` ordering keeps every join connected through a shared variable,
while the ``worst`` ordering front-loads the Cartesian-product pairs that
make intermediate results explode (the 6534 GB example of §IV).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analyses.ordering import Ordering, pick_order
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.workloads.program_facts import CSPADataset


def build_cspa_program(dataset: CSPADataset,
                       ordering: "Ordering | str" = Ordering.WRITTEN,
                       name: str = "cspa") -> DatalogProgram:
    """Build the CSPA program over ``dataset`` in the requested atom order."""
    program = DatalogProgram(name)
    v0, v1, v2, v3 = (Variable(f"v{i}") for i in range(4))

    def vaflow(a: Variable, b: Variable) -> Atom:
        return Atom("VaFlow", (a, b))

    def valias(a: Variable, b: Variable) -> Atom:
        return Atom("VAlias", (a, b))

    def malias(a: Variable, b: Variable) -> Atom:
        return Atom("MAlias", (a, b))

    def assign(a: Variable, b: Variable) -> Atom:
        return Atom("Assign", (a, b))

    def derefr(a: Variable, b: Variable) -> Atom:
        return Atom("Derefr", (a, b))

    # Rule 1: VaFlow(v1, v2) :- MAlias(v3, v2), Assign(v1, v3)
    program.add_rule(
        vaflow(v1, v2),
        pick_order(
            ordering,
            optimized=[assign(v1, v3), malias(v3, v2)],
            worst=[malias(v3, v2), assign(v1, v3)],
            written=[malias(v3, v2), assign(v1, v3)],
        ),
        name="VaFlow_via_malias",
    )
    # Rule 2: VaFlow(v1, v2) :- VaFlow(v3, v2), VaFlow(v1, v3)  (transitivity)
    program.add_rule(
        vaflow(v1, v2),
        pick_order(
            ordering,
            optimized=[vaflow(v1, v3), vaflow(v3, v2)],
            worst=[vaflow(v3, v2), vaflow(v1, v3)],
            written=[vaflow(v3, v2), vaflow(v1, v3)],
        ),
        name="VaFlow_transitive",
    )
    # Rule 3: MAlias(v1, v0) :- VAlias(v2, v3), Derefr(v3, v0), Derefr(v2, v1)
    program.add_rule(
        malias(v1, v0),
        pick_order(
            ordering,
            optimized=[valias(v2, v3), derefr(v3, v0), derefr(v2, v1)],
            worst=[derefr(v3, v0), derefr(v2, v1), valias(v2, v3)],
            written=[valias(v2, v3), derefr(v3, v0), derefr(v2, v1)],
        ),
        name="MAlias_via_valias",
    )
    # Rule 4: VAlias(v1, v2) :- VaFlow(v3, v2), VaFlow(v3, v1)
    program.add_rule(
        valias(v1, v2),
        pick_order(
            ordering,
            optimized=[vaflow(v3, v1), vaflow(v3, v2)],
            worst=[vaflow(v3, v2), vaflow(v3, v1)],
            written=[vaflow(v3, v2), vaflow(v3, v1)],
        ),
        name="VAlias_common_source",
    )
    # Rule 5: VAlias(v1, v2) :- VaFlow(v0, v2), VaFlow(v3, v1), MAlias(v3, v0)
    program.add_rule(
        valias(v1, v2),
        pick_order(
            ordering,
            optimized=[vaflow(v3, v1), malias(v3, v0), vaflow(v0, v2)],
            worst=[vaflow(v0, v2), vaflow(v3, v1), malias(v3, v0)],
            written=[vaflow(v0, v2), vaflow(v3, v1), malias(v3, v0)],
        ),
        name="VAlias_via_malias",
    )
    # Base rules (single-atom bodies, order-insensitive).
    program.add_rule(vaflow(v2, v1), [assign(v2, v1)], name="VaFlow_assign")
    program.add_rule(vaflow(v1, v1), [assign(v1, v2)], name="VaFlow_refl_src")
    program.add_rule(vaflow(v1, v1), [assign(v2, v1)], name="VaFlow_refl_dst")
    program.add_rule(malias(v1, v1), [assign(v2, v1)], name="MAlias_refl_dst")
    program.add_rule(malias(v1, v1), [assign(v1, v2)], name="MAlias_refl_src")

    program.add_facts("Assign", dataset.assign)
    program.add_facts("Derefr", dataset.dereference)
    return program

"""The Inverse-Function ("wasted work") analysis (paper §VI-A).

The analysis extends a value-flow/points-to style analysis with knowledge of
function pairs that undo each other — ``invFuns(deserialize, serialize)``,
``invFuns(from_json, to_json)`` — and flags call sites where a value is
transformed by a function and then immediately transformed back before being
used, i.e. a round trip that can be elided.

The rules are deliberately join-heavy: the paper notes this analysis contains
a 9-atom rule, which is reproduced here as ``wastedWork``.  Rules recurse
through the ``vflow`` value-flow relation, so the cardinalities the optimizer
sees keep shifting as the transitive closure grows.
"""

from __future__ import annotations

from repro.analyses.ordering import Ordering, pick_order
from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Variable
from repro.workloads.program_facts import SListLibDataset


def build_inverse_functions_program(dataset: SListLibDataset,
                                    ordering: "Ordering | str" = Ordering.WRITTEN,
                                    name: str = "inverse_functions") -> DatalogProgram:
    """Inverse-function analysis over SListLib-style facts."""
    program = DatalogProgram(name)
    (value, other, source, sink, argument, argument2, result, result2,
     function, inverse, site, site2, site3) = (
        Variable(n) for n in (
            "value", "other", "source", "sink", "argument", "argument2",
            "result", "result2", "function", "inverse", "site", "site2", "site3",
        )
    )

    assign = lambda a, b: Atom("assign", (a, b))                   # noqa: E731
    vflow = lambda a, b: Atom("vflow", (a, b))                     # noqa: E731
    call = lambda i, f, a, r: Atom("call", (i, f, a, r))           # noqa: E731
    inv_funs = lambda f, g: Atom("invFuns", (f, g))                # noqa: E731
    follows = lambda a, b: Atom("follows", (a, b))                 # noqa: E731
    precedes = lambda a, b: Atom("precedes", (a, b))               # noqa: E731
    used_at = lambda v, i: Atom("usedAt", (v, i))                  # noqa: E731
    equivalent = lambda a, b: Atom("equivalentValue", (a, b))      # noqa: E731
    round_trip = lambda a, b: Atom("roundTrip", (a, b))            # noqa: E731
    wasted = lambda a, b: Atom("wastedWork", (a, b))               # noqa: E731

    # Control-flow order: direct successors plus transitive closure.
    program.add_rule(precedes(site, site2), [follows(site, site2)], name="precedes_base")
    program.add_rule(
        precedes(site, site3),
        pick_order(
            ordering,
            optimized=[precedes(site, site2), follows(site2, site3)],
            worst=[follows(site2, site3), precedes(site, site2)],
            written=[precedes(site, site2), follows(site2, site3)],
        ),
        name="precedes_step",
    )

    # Value flow: direct assignments plus transitive closure.
    program.add_rule(vflow(source, value), [assign(value, source)], name="vflow_assign")
    program.add_rule(
        vflow(source, sink),
        pick_order(
            ordering,
            optimized=[vflow(source, value), vflow(value, sink)],
            worst=[vflow(value, sink), vflow(source, value)],
            written=[vflow(source, value), vflow(value, sink)],
        ),
        name="vflow_transitive",
    )
    # A call's result flows from its argument (functions propagate values).
    program.add_rule(
        vflow(argument, result),
        [call(site, function, argument, result)],
        name="vflow_call",
    )

    # Two values are equivalent when one is produced by applying f and the
    # other by applying f's inverse to (a value flowing from) the first.
    program.add_rule(
        equivalent(result, result2),
        pick_order(
            ordering,
            optimized=[
                call(site, function, argument, result),
                inv_funs(inverse, function),
                call(site2, inverse, argument2, result2),
                vflow(result, argument2),
                precedes(site, site2),
            ],
            worst=[
                vflow(result, argument2),
                call(site2, inverse, argument2, result2),
                call(site, function, argument, result),
                precedes(site, site2),
                inv_funs(inverse, function),
            ],
            written=[
                call(site, function, argument, result),
                call(site2, inverse, argument2, result2),
                inv_funs(inverse, function),
                vflow(result, argument2),
                precedes(site, site2),
            ],
        ),
        name="equivalent_value",
    )

    # A round trip: the inverse call's result is equivalent to the original
    # call's argument (serialize then deserialize restores the value).
    program.add_rule(
        round_trip(site, site2),
        pick_order(
            ordering,
            optimized=[
                call(site, function, argument, result),
                inv_funs(inverse, function),
                call(site2, inverse, argument2, result2),
                vflow(result, argument2),
                vflow(argument, other),
                equivalent(result, result2),
            ],
            worst=[
                vflow(argument, other),
                equivalent(result, result2),
                call(site2, inverse, argument2, result2),
                call(site, function, argument, result),
                vflow(result, argument2),
                inv_funs(inverse, function),
            ],
            written=[
                call(site, function, argument, result),
                call(site2, inverse, argument2, result2),
                inv_funs(inverse, function),
                vflow(result, argument2),
                vflow(argument, other),
                equivalent(result, result2),
            ],
        ),
        name="round_trip",
    )

    # The original value flows (directly or transitively) both into the
    # inverse call's argument and into its restored result — the witnesses
    # that the second call really just undoes the first.

    # The paper's long rule (9 atoms): the round trip is *wasted work* when the
    # restored value is actually used later, the two call sites are ordered by
    # control flow, and the original value was still live at the second site.
    program.add_rule(
        wasted(site, site3),
        pick_order(
            ordering,
            optimized=[
                round_trip(site, site2),
                call(site, function, argument, result),
                inv_funs(inverse, function),
                call(site2, inverse, argument2, result2),
                used_at(result2, site3),
                precedes(site2, site3),
                vflow(argument, argument2),
                vflow(argument, result2),
                precedes(site, site2),
            ],
            worst=[
                vflow(argument, argument2),
                vflow(argument, result2),
                used_at(result2, site3),
                call(site, function, argument, result),
                call(site2, inverse, argument2, result2),
                precedes(site, site2),
                precedes(site2, site3),
                inv_funs(inverse, function),
                round_trip(site, site2),
            ],
            written=[
                round_trip(site, site2),
                call(site, function, argument, result),
                call(site2, inverse, argument2, result2),
                inv_funs(inverse, function),
                used_at(result2, site3),
                precedes(site, site2),
                precedes(site2, site3),
                vflow(argument, argument2),
                vflow(argument, result2),
            ],
        ),
        name="wasted_work",
    )

    for relation, rows in dataset.inverse_function_facts().items():
        program.add_facts(relation, rows)
    return program

"""Microbenchmark programs: Ackermann, Fibonacci, Primes (+ two classics).

The paper uses these short-running queries to locate the point at which
runtime optimization stops paying for itself (§VI-A): the shorter the
program, the less room there is to amortise reordering/compilation overhead.

Bottom-up Datalog needs a bounded domain for the arithmetic programs, so all
builders take a size parameter; growing it lengthens the run without changing
the rule structure.
"""

from __future__ import annotations

from repro.analyses.ordering import Ordering, pick_order
from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Constant, Variable


def _num_facts(program: DatalogProgram, limit: int, relation: str = "num") -> None:
    program.add_facts(relation, [(i,) for i in range(limit + 1)])


def build_fibonacci_program(limit: int = 24,
                            ordering: "Ordering | str" = Ordering.WRITTEN,
                            name: str = "fibonacci") -> DatalogProgram:
    """Fibonacci numbers up to index ``limit`` via bottom-up recurrence."""
    program = DatalogProgram(name)
    n, n1, n2, a, b, s = (Variable(v) for v in ("n", "n1", "n2", "a", "b", "s"))
    fib = lambda i, v: Atom("fib", (i, v))  # noqa: E731

    program.add_fact("fib", (0, 0))
    program.add_fact("fib", (1, 1))
    body_optimized = [
        fib(n, a),
        Assignment(n1, n + 1),
        fib(n1, b),
        Assignment(n2, n + 2),
        Comparison("<=", n2, Constant(limit)),
        Assignment(s, a + b),
    ]
    body_worst = [
        fib(n1, b),
        fib(n, a),
        Assignment(n2, n + 2),
        Comparison("<=", n2, Constant(limit)),
        Assignment(s, a + b),
        Comparison("==", n1, n + 1),
    ]
    program.add_rule(
        fib(n2, s),
        pick_order(ordering, optimized=body_optimized, worst=body_worst),
        name="fib_step",
    )
    return program


def build_primes_program(limit: int = 200,
                         ordering: "Ordering | str" = Ordering.WRITTEN,
                         name: str = "primes") -> DatalogProgram:
    """Primes up to ``limit`` via composite sieving and stratified negation."""
    program = DatalogProgram(name)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    num = lambda v: Atom("num", (v,))              # noqa: E731
    candidate = lambda v: Atom("candidate", (v,))  # noqa: E731
    composite = lambda v: Atom("composite", (v,))  # noqa: E731
    prime = lambda v: Atom("prime", (v,))          # noqa: E731

    program.add_facts("num", [(i,) for i in range(2, limit + 1)])
    program.add_rule(candidate(x), [num(x)], name="candidate")
    body_optimized = [
        num(y),
        num(z),
        Comparison("<=", y, z),
        Assignment(x, y * z),
        Comparison("<=", x, Constant(limit)),
        num(x),
    ]
    # The "unoptimized" formulation scans the composite candidate relation
    # first, so the product check degenerates into a filter over the full
    # num × num × num cube unless the optimizer reorders the atoms.
    body_worst = [
        num(x),
        num(z),
        num(y),
        Comparison("<=", y, z),
        Assignment(x, y * z),
        Comparison("<=", x, Constant(limit)),
    ]
    program.add_rule(
        composite(x),
        pick_order(ordering, optimized=body_optimized, worst=body_worst),
        name="composite",
    )
    program.add_rule(
        prime(x),
        [candidate(x), Atom("composite", (x,), negated=True)],
        name="prime",
    )
    return program


def build_ackermann_program(max_m: int = 2, max_n: int = 14,
                            ordering: "Ordering | str" = Ordering.WRITTEN,
                            name: str = "ackermann") -> DatalogProgram:
    """The Ackermann function tabulated bottom-up over a bounded domain.

    ``ack(m, n, v)`` holds when A(m, n) = v.  The classic three-rule
    definition is evaluated over ``num`` facts 0..max_n (and intermediate
    values up to the largest representable result); keep ``max_m`` small —
    the function's growth is the whole point of the benchmark.
    """
    if max_m > 3:
        raise ValueError("max_m above 3 would require an enormous value domain")
    program = DatalogProgram(name)
    m, n, v, w, m1, n1, v1 = (Variable(s) for s in ("m", "n", "v", "w", "m1", "n1", "v1"))
    ack = lambda a, b, c: Atom("ack", (a, b, c))  # noqa: E731
    num = lambda a: Atom("num", (a,))             # noqa: E731

    # The value domain has to cover every intermediate A(m, n) result.
    domain = max_n + 3
    if max_m >= 2:
        domain = 2 * max_n + 5
    if max_m >= 3:
        domain = 2 ** (max_n + 3)
    _num_facts(program, domain)

    # A(0, n) = n + 1
    program.add_rule(
        ack(Constant(0), n, v),
        [num(n), Comparison("<=", n, Constant(domain - 1)), Assignment(v, n + 1)],
        name="ack_base",
    )
    # A(m, 0) = A(m - 1, 1)
    body_optimized = [
        num(m),
        Comparison(">=", m, Constant(1)),
        Comparison("<=", m, Constant(max_m)),
        Assignment(m1, m - 1),
        ack(m1, Constant(1), v),
    ]
    body_worst = [
        ack(m1, Constant(1), v),
        num(m),
        Comparison(">=", m, Constant(1)),
        Comparison("<=", m, Constant(max_m)),
        Comparison("==", m1, m - 1),
    ]
    program.add_rule(
        ack(m, Constant(0), v),
        pick_order(ordering, optimized=body_optimized, worst=body_worst),
        name="ack_zero",
    )
    # A(m, n) = A(m - 1, A(m, n - 1))
    body_optimized = [
        ack(m, n1, w),
        Comparison("<=", m, Constant(max_m)),
        Comparison(">=", m, Constant(1)),
        Assignment(m1, m - 1),
        ack(m1, w, v),
        Assignment(n, n1 + 1),
        num(n),
        num(m),
    ]
    body_worst = [
        num(m),
        num(n),
        Comparison(">=", m, Constant(1)),
        Comparison("<=", m, Constant(max_m)),
        Comparison(">=", n, Constant(1)),
        Assignment(n1, n - 1),
        ack(m, n1, w),
        Assignment(m1, m - 1),
        ack(m1, w, v),
    ]
    program.add_rule(
        ack(m, n, v),
        pick_order(ordering, optimized=body_optimized, worst=body_worst,
                   written=body_worst),
        name="ack_step",
    )
    return program


def build_transitive_closure_program(edges, ordering: "Ordering | str" = Ordering.WRITTEN,
                                     name: str = "tc") -> DatalogProgram:
    """Plain transitive closure over an edge list (used by tests/examples)."""
    program = DatalogProgram(name)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    edge = lambda a, b: Atom("edge", (a, b))  # noqa: E731
    path = lambda a, b: Atom("path", (a, b))  # noqa: E731
    program.add_rule(path(x, y), [edge(x, y)], name="tc_base")
    program.add_rule(
        path(x, z),
        pick_order(
            ordering,
            optimized=[path(x, y), edge(y, z)],
            worst=[edge(y, z), path(x, y)],
        ),
        name="tc_step",
    )
    program.add_facts("edge", edges)
    return program


def build_same_generation_program(parent_edges, ordering: "Ordering | str" = Ordering.WRITTEN,
                                  name: str = "same_generation") -> DatalogProgram:
    """The classic same-generation query over a parent relation."""
    program = DatalogProgram(name)
    x, y, px, py = (Variable(v) for v in ("x", "y", "px", "py"))
    parent = lambda a, b: Atom("parent", (a, b))  # noqa: E731
    sg = lambda a, b: Atom("sg", (a, b))          # noqa: E731
    program.add_rule(sg(x, y), [parent(px, x), parent(px, y)], name="sg_base")
    program.add_rule(
        sg(x, y),
        pick_order(
            ordering,
            optimized=[parent(px, x), sg(px, py), parent(py, y)],
            worst=[parent(py, y), parent(px, x), sg(px, py)],
        ),
        name="sg_step",
    )
    program.add_facts("parent", parent_edges)
    return program

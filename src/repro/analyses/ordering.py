"""Atom-ordering variants shared by every benchmark builder."""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class Ordering(str, enum.Enum):
    """Which formulation of a benchmark program to build."""

    WRITTEN = "written"
    OPTIMIZED = "optimized"
    WORST = "worst"


def pick_order(
    ordering: "Ordering | str",
    optimized: Sequence[T],
    worst: Sequence[T],
    written: Optional[Sequence[T]] = None,
) -> List[T]:
    """Pick one rule-body variant.

    ``written`` defaults to the optimized order when a benchmark has no
    separately documented as-written formulation.
    """
    mode = Ordering(ordering)
    if mode == Ordering.OPTIMIZED:
        return list(optimized)
    if mode == Ordering.WORST:
        return list(worst)
    return list(written if written is not None else optimized)

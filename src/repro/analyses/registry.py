"""Benchmark registry: name -> (program builder, dataset, query relation).

The benchmark harness and the examples refer to workloads by the names used
in the paper's figures ("Andersen's Points-To", "Inverse Functions",
"CSPA_20k", "CSDA", "Ackermann", "Fibonacci", "Primes"), each at a default,
laptop-friendly scale plus optional alternative scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # repro.api sits above this layer; import only for types
    from repro.api.database import Database
    from repro.api.result import QueryResult
    from repro.core.config import EngineConfig

from repro.analyses.andersen import build_andersen_program
from repro.analyses.cspa import build_cspa_program
from repro.analyses.csda import build_csda_program
from repro.analyses.inverse_functions import build_inverse_functions_program
from repro.analyses.micro import (
    build_ackermann_program,
    build_fibonacci_program,
    build_primes_program,
)
from repro.analyses.ordering import Ordering
from repro.datalog.program import DatalogProgram
from repro.workloads.datasets import get_dataset


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark workload: how to build it and what to query."""

    name: str
    kind: str                       # "macro" or "micro"
    query_relation: str
    builder: Callable[[str], DatalogProgram]
    description: str = ""

    def build(self, ordering: "Ordering | str" = Ordering.WRITTEN) -> DatalogProgram:
        """Build a fresh program (facts included) in the requested ordering."""
        return self.builder(Ordering(ordering).value)

    def database(self, config: Optional["EngineConfig"] = None,
                 ordering: "Ordering | str" = Ordering.WRITTEN) -> "Database":
        """Open a :class:`repro.Database` over a fresh build of this workload."""
        from repro.api.database import Database

        return Database(self.build(ordering), config, name=self.name)

    def query(self, config: Optional["EngineConfig"] = None,
              ordering: "Ordering | str" = Ordering.WRITTEN) -> "QueryResult":
        """One-shot evaluation of the workload's query relation."""
        return self.database(config, ordering).query(self.query_relation)


def _macro(name: str, query: str, description: str,
           build: Callable[[str], DatalogProgram]) -> BenchmarkSpec:
    return BenchmarkSpec(name, "macro", query, build, description)


def _micro(name: str, query: str, description: str,
           build: Callable[[str], DatalogProgram]) -> BenchmarkSpec:
    return BenchmarkSpec(name, "micro", query, build, description)


def _registry() -> Dict[str, BenchmarkSpec]:
    specs: List[BenchmarkSpec] = [
        _macro(
            "andersen", "pointsTo",
            "Andersen's points-to analysis on SListLib-style facts",
            lambda ordering: build_andersen_program(get_dataset("slistlib"), ordering),
        ),
        _macro(
            "inverse_functions", "wastedWork",
            "Inverse-function (wasted work) analysis on SListLib-style facts",
            lambda ordering: build_inverse_functions_program(get_dataset("slistlib"), ordering),
        ),
        _macro(
            "cspa_tiny", "VAlias",
            "Graspan CSPA on a ~400-tuple synthetic httpd-like graph",
            lambda ordering: build_cspa_program(get_dataset("cspa_tiny"), ordering),
        ),
        _macro(
            "cspa_20k", "VAlias",
            "Graspan CSPA on a ~1200-tuple synthetic graph (scaled-down CSPA_20k)",
            lambda ordering: build_cspa_program(get_dataset("cspa_small"), ordering),
        ),
        _macro(
            "cspa_full", "VAlias",
            "Graspan CSPA at the paper's 20k-tuple sample scale (slow)",
            lambda ordering: build_cspa_program(get_dataset("cspa_20k"), ordering),
        ),
        _macro(
            "csda", "nullFlow",
            "Graspan CSDA (2-way joins only) on a synthetic dataflow DAG",
            lambda ordering: build_csda_program(get_dataset("csda_small"), ordering),
        ),
        _micro(
            "ackermann", "ack",
            "Ackermann function tabulated over a bounded domain",
            lambda ordering: build_ackermann_program(max_m=2, max_n=12, ordering=ordering),
        ),
        _micro(
            "fibonacci", "fib",
            "Fibonacci numbers up to index 24",
            lambda ordering: build_fibonacci_program(limit=24, ordering=ordering),
        ),
        _micro(
            "primes", "prime",
            "Prime sieve up to 100 with stratified negation",
            lambda ordering: build_primes_program(limit=100, ordering=ordering),
        ),
    ]
    return {spec.name: spec for spec in specs}


_BENCHMARKS = _registry()

#: The benchmark groups the paper's figures use.
MACRO_BENCHMARKS = ("andersen", "inverse_functions", "cspa_20k")
MACRO_BENCHMARKS_WITH_CSDA = ("andersen", "inverse_functions", "cspa_20k", "csda")
MICRO_BENCHMARKS = ("ackermann", "fibonacci", "primes")
TABLE1_BENCHMARKS = (
    "ackermann", "fibonacci", "primes", "andersen", "inverse_functions", "csda", "cspa_20k",
)
TABLE2_BENCHMARKS = ("inverse_functions", "csda", "cspa_20k")


def list_benchmarks(kind: Optional[str] = None) -> List[str]:
    if kind is None:
        return sorted(_BENCHMARKS)
    return sorted(name for name, spec in _BENCHMARKS.items() if spec.kind == kind)


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return _BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_BENCHMARKS)}"
        ) from None

"""The public embedded-database API: ``Database`` / ``Connection`` / ``QueryResult``.

One coherent surface over every execution subsystem (interpreted, JIT, AOT,
incremental sessions, shard-parallel evaluation)::

    from repro import Database, EngineConfig

    db = Database(program, EngineConfig.parallel(shards=4))
    with db.connect() as conn:
        conn.insert_facts("edge", [(1, 2), (2, 3)])
        result = conn.query("path")
        print(result.count(), result.take(5))
        print(result.explain())

See :mod:`repro.api.database` for the entry points and
:mod:`repro.api.result` for the result types.
"""

from repro.api.database import Connection, Database, coerce_program, schema_for
from repro.api.explain import render_explain
from repro.api.result import QueryResult, ResultSchema, ResultSet

__all__ = [
    "Connection",
    "Database",
    "QueryResult",
    "ResultSchema",
    "ResultSet",
    "coerce_program",
    "render_explain",
    "schema_for",
]

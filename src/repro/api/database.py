"""The embedded-database entry point: ``Database`` and ``Connection``.

This is the public face of the engine, shaped like the embedded databases it
aspires to sit beside (SQLite, DuckDB): one :class:`Database` per program,
:class:`Connection` objects for stateful interaction, and every read returning
a first-class :class:`~repro.api.result.QueryResult`.

::

    from repro import Database, EngineConfig, Program

    program = Program("reachability")
    edge, path = program.relations("edge", "path", arity=2)
    x, y, z = program.variables("x", "y", "z")
    path(x, y) <= edge(x, y)
    path(x, z) <= path(x, y) & edge(y, z)
    edge.add_facts([(1, 2), (2, 3), (3, 4)])

    db = Database(program, EngineConfig.jit("lambda"))
    with db.connect() as conn:
        conn.insert_facts("edge", [(4, 5)])
        result = conn.query("path")        # QueryResult
        print(result.count(), result.take(3))
        print(result.explain())

Every execution subsystem plugs in underneath this one surface: the
configuration decides whether a connection evaluates interpreted, JIT, AOT
or shard-parallel (``EngineConfig.parallel(shards=N, ...)``), and the results
are bit-for-bit identical across all of them.

A :class:`Database` accepts an embedded-DSL :class:`~repro.datalog.dsl.Program`,
a bare :class:`~repro.datalog.program.DatalogProgram`, or textual Datalog
source (parsed with :func:`repro.datalog.parser.parse_program`).  Connections
opened from one database share its :class:`~repro.incremental.cache.ResultCache`,
so replicas serving the same workload reuse each other's query results.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union, overload

from repro.api.explain import render_explain
from repro.api.result import QueryResult, ResultSchema, ResultSet
from repro.core.config import EngineConfig
from repro.datalog.program import DatalogProgram
from repro.incremental.cache import ResultCache
from repro.incremental.session import IncrementalSession, UpdateReport
from repro.introspect import (
    CATALOG_COLUMNS,
    RESERVED_PREFIX,
    SystemCatalog,
    render_analyze,
)
from repro.relational.relation import Row

#: Anything a :class:`Database` can be opened over.
ProgramLike = Union["DatalogProgram", "object", str]


def coerce_program(program: ProgramLike, name: str = "database") -> DatalogProgram:
    """Accept a DSL ``Program``, a ``DatalogProgram`` or Datalog source text."""
    if isinstance(program, DatalogProgram):
        return program
    if isinstance(program, str):
        from repro.datalog.parser import parse_program

        return parse_program(program, name=name)
    datalog = getattr(program, "datalog", None)
    if isinstance(datalog, DatalogProgram):
        return datalog
    raise TypeError(
        "expected a Program, DatalogProgram or Datalog source string, "
        f"got {type(program).__name__}"
    )


def schema_for(program: DatalogProgram, relation: str) -> ResultSchema:
    """The :class:`ResultSchema` of a declared relation."""
    declaration = program.relations.get(relation)
    if declaration is None:
        raise KeyError(
            f"unknown relation {relation!r}; "
            f"available: {sorted(program.relations)}"
        )
    return ResultSchema.of(
        relation, declaration.arity, getattr(declaration, "columns", None)
    )


def _shard_rows_provider(session: IncrementalSession):
    """The ``sys_shards`` row source for one session's shard topology."""

    def provider():
        from repro.parallel.executor import shard_stat_rows

        state = session._shard_state
        return shard_stat_rows(
            session.config,
            pool=state.pool if state is not None else None,
            degradations=session.profile.pool_degradations,
        )

    return provider


class Connection:
    """A stateful handle on one evaluated program: mutate facts, read results.

    Wraps a long-lived :class:`~repro.incremental.IncrementalSession`: the
    first read computes the fixpoint, mutations repair it incrementally
    (delta propagation / DRed, shard-parallel when the configuration says
    so), and repeated queries are served from the result cache.  Every read
    returns an immutable :class:`QueryResult` snapshot.
    """

    def __init__(self, session: IncrementalSession,
                 _database: Optional["Database"] = None,
                 catalog: Optional[SystemCatalog] = None) -> None:
        self._session = session
        self._database = _database
        self._catalog = catalog
        self._durability = None  # set by Database.connect for the durable writer
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._session.config

    @property
    def program(self) -> DatalogProgram:
        return self._session.program

    @property
    def session(self) -> IncrementalSession:
        """The underlying incremental session (advanced use)."""
        return self._session

    @property
    def catalog(self) -> Optional[SystemCatalog]:
        """This connection's system catalog (None when opened without one).

        The binding point for extra ``sys_`` row providers — the query
        server binds ``sys_connections``/``sys_server`` here so its own
        state is queryable through the same Datalog surface as everything
        else.
        """
        return self._catalog

    @property
    def durability(self):
        """This connection's :class:`~repro.durability.DurabilityManager`,
        or None — only the durable writer (the first connection a durable
        database opens) has one.  ``conn.durability.last_recovery`` is the
        warm-restart report of this open."""
        return self._durability

    def checkpoint(self) -> int:
        """Write a durable checkpoint now; returns bytes written.

        Collapses the WAL into a full-state snapshot so the next open
        restarts warm with nothing to replay.  Raises when this connection
        is not the durable writer.
        """
        self._check_open()
        if self._durability is None:
            raise RuntimeError(
                "this connection is not a durable writer; open the database "
                "with Database(durability=DurabilityConfig(dir=...))"
            )
        return self._durability.checkpoint()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def last_report(self) -> Optional[UpdateReport]:
        """The :class:`UpdateReport` of the most recent mutation batch."""
        return self._session.last_report

    def schema(self, relation: str) -> ResultSchema:
        return schema_for(self._session.program, relation)

    # -- mutation --------------------------------------------------------------

    def insert_facts(self, relation: str, rows) -> UpdateReport:
        """Assert a batch of facts; the fixpoint is repaired before returning."""
        self._check_open()
        return self._session.insert_facts(relation, rows)

    def retract_facts(self, relation: str, rows) -> UpdateReport:
        """Retract a batch of base facts (rows never asserted are ignored)."""
        self._check_open()
        return self._session.retract_facts(relation, rows)

    def apply(self, inserts=None, retracts=None) -> UpdateReport:
        """One mixed mutation batch: retractions first, then insertions."""
        self._check_open()
        return self._session.apply(inserts, retracts)

    # -- queries ---------------------------------------------------------------

    @overload
    def query(self, relation: str, limits=None, token=None) -> QueryResult: ...

    @overload
    def query(self, relation: None = None, limits=None,
              token=None) -> ResultSet: ...

    def query(self, relation: Optional[str] = None, limits=None, token=None):
        """Rows of ``relation`` as a :class:`QueryResult` snapshot.

        With no argument: a :class:`ResultSet` covering every IDB relation
        (the same relations the legacy ``ExecutionEngine.run()`` returned),
        in declaration order, for any execution mode.

        ``sys_``-prefixed names read the system catalog instead of the
        program (see :mod:`repro.introspect`): an untraced raw-row snapshot
        of the engine's own state — untraced so observing the engine does
        not itself add query traces to the ring being observed.

        ``limits`` (:class:`~repro.resilience.limits.QueryLimits`) bounds
        any fixpoint this read triggers — deadline, rounds, rows derived,
        result bytes; ``token``
        (:class:`~repro.resilience.cancel.CancellationToken`) allows
        cooperative cancellation from another thread.  A violated bound
        aborts the read with the matching typed
        :class:`~repro.resilience.errors.ResilienceError`; the session
        resets to ground state and the next read recomputes.
        """
        self._check_open()
        if (
            relation is not None
            and relation.startswith(RESERVED_PREFIX)
            and self._catalog is not None
        ):
            return self._catalog_snapshot(relation)
        session = self._session
        started = time.perf_counter()
        with session.tracer.span(
            "query", root=True, relation=relation or "*",
            program=session.program_fingerprint[:12],
        ) as span:
            trace = (lambda: span.trace) if session.tracer.enabled else None
            if relation is None:
                results = {
                    name: self._snapshot(name, trace=trace, limits=limits,
                                         token=token)
                    for name in session.program.idb_relations()
                }
                out = ResultSet(
                    results, explain=self._render_explain, trace=trace
                )
                if session.tracer.enabled:
                    span.set(rows=out.total_rows())
            else:
                out = self._snapshot(relation, trace=trace, limits=limits,
                                     token=token)
                if session.tracer.enabled:
                    span.set(rows=out.count())
        if span.trace is not None:
            session.last_trace = span.trace
        session.metrics.counter("queries_total").inc()
        session.metrics.histogram("query_seconds").observe(
            time.perf_counter() - started
        )
        return out

    def _snapshot(self, relation: str, trace=None, limits=None,
                  token=None) -> QueryResult:
        schema = self.schema(relation)  # raises KeyError on unknown relations
        # Rows stay dictionary-encoded (shared with the session's result
        # cache — one copy of each constant in the symbol table); the
        # QueryResult decodes lazily, per accessed page.
        rows = self._session.fetch_encoded(relation, limits, token)
        count = len(rows)

        def explain() -> str:
            return self._render_explain(relation=relation, row_count=count)

        return QueryResult(
            schema, rows, explain=explain,
            symbols=self._session.storage.symbols, trace=trace,
        )

    def _catalog_snapshot(self, relation: str) -> QueryResult:
        """One system-catalog relation as a raw-domain :class:`QueryResult`."""
        rows = frozenset(self._catalog.rows(relation))  # KeyError on unknowns
        columns = CATALOG_COLUMNS[relation]
        self._session.metrics.counter(
            "catalog_queries_total", relation=relation
        ).inc()
        return QueryResult(
            ResultSchema.of(relation, len(columns), columns), rows,
            explain=lambda: self._render_explain(
                relation=relation, row_count=len(rows)
            ),
        )

    def query_snapshot(self, relation: str) -> QueryResult:
        """Rows of ``relation`` at the last *committed* MVCC version.

        Requires snapshots on the session (``session.enable_snapshots()``;
        the query server does this).  Unlike :meth:`query`, this never
        touches live session state: the rows come from the pinned
        :class:`~repro.incremental.snapshots.StorageSnapshot`, so it is safe
        to call from reader threads while a writer repairs the fixpoint —
        the returned result carries ``snapshot_version`` and holds a pin on
        that version until it is released or garbage-collected.
        """
        self._check_open()
        session = self._session
        manager = session.snapshots
        if manager is None:
            raise RuntimeError(
                "snapshots are not enabled on this connection's session; "
                "call conn.session.enable_snapshots() first"
            )
        schema = self.schema(relation)  # raises KeyError before pinning
        snapshot = manager.acquire()
        try:
            rows = snapshot.rows_of(relation)
        except KeyError:
            manager.release(snapshot.version)
            raise
        session.metrics.counter("snapshot_queries_total").inc()
        return QueryResult(
            schema, rows, symbols=snapshot.symbols,
            version=snapshot.version,
            on_release=manager.releaser(snapshot.version),
        )

    def refresh(self) -> None:
        """Force the initial fixpoint computation (otherwise lazy)."""
        self._check_open()
        self._session.refresh()

    def explain(self, relation: Optional[str] = None,
                analyze: bool = False) -> str:
        """The session's plan and the adaptive decisions taken so far.

        ``analyze=True`` appends the EXPLAIN ANALYZE section: the actual
        per-operator timings and row counts from the most recent trace,
        lined up with the join-order optimizer's cardinality predictions,
        flagging misestimated operators (see :mod:`repro.introspect`).
        Needs telemetry for the trace and ``executor='vectorized'`` for
        per-operator spans; the section says so when either is missing.
        """
        self._check_open()
        row_count = None
        if relation is not None:
            row_count = len(self._session.fetch_encoded(relation))
        return self._render_explain(
            relation=relation, row_count=row_count, analyze=analyze
        )

    def _render_explain(self, relation: Optional[str] = None,
                        row_count: Optional[int] = None,
                        analyze: bool = False) -> str:
        session = self._session
        analysis = None
        if analyze:
            analysis = render_analyze(session.profile, session.last_trace)
        return render_explain(
            title=f"connection over {session.program.name!r}",
            config=session.config,
            tree=session.tree,
            profile=session.profile,
            relation=relation,
            row_count=row_count,
            symbols=session.storage.symbols,
            trace=session.last_trace,
            analyze=analysis,
        )

    def self_check(self) -> None:
        """Assert the incremental state equals a from-scratch evaluation."""
        self._check_open()
        self._session.self_check()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release session resources (idempotent).

        The durable writer checkpoints on clean close (per its
        configuration) and releases the durability directory, so the next
        ``connect()`` — this process or the next — can claim it.
        """
        if not self._closed:
            if self._durability is not None:
                self._durability.close()
                self._durability = None
            self._session.close()
            self._closed = True
            if self._database is not None:
                self._database._forget(self)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (
            f"Connection({self._session.program.name!r}, "
            f"config={self._session.config.describe()!r}, {state})"
        )


class Database:
    """One Datalog program, embedded-database-shaped.

    The single entry point of the public API: hold a :class:`Database` per
    program, open :class:`Connection` objects for stateful work, or use
    :meth:`query` for one-shot reads.  The configuration given here is the
    default for every connection; ``connect(config=...)`` overrides it per
    connection (e.g. one interpreted and one shard-parallel connection over
    the same program).
    """

    def __init__(self, program: ProgramLike,
                 config: Optional[EngineConfig] = None,
                 cache: Optional[ResultCache] = None,
                 name: str = "database",
                 durability=None) -> None:
        self.program = coerce_program(program, name=name)
        self.config = config or EngineConfig()
        #: Optional :class:`~repro.durability.DurabilityConfig`.  When set,
        #: the first connection becomes the durable writer: it recovers
        #: from the directory on open (checkpoint install + WAL replay),
        #: logs every mutation batch, and checkpoints per the thresholds.
        self.durability = durability
        self._durability_owner: Optional["Connection"] = None
        #: Shared across every connection; keyed by program fingerprint,
        #: configuration and mutation history, so sharing is always safe.
        self.cache = cache if cache is not None else ResultCache()
        # One registry per database: connections and one-shot queries all
        # aggregate into it, so ``metrics()`` sees the whole workload.
        from repro.telemetry.config import metrics_of

        self._metrics = metrics_of(self.config.telemetry)
        self._connections: List[Connection] = []
        self._closed = False

    @classmethod
    def from_source(cls, source: str,
                    config: Optional[EngineConfig] = None,
                    name: str = "parsed") -> "Database":
        """Open a database over textual Datalog source."""
        return cls(source, config=config, name=name)

    # -- schema ----------------------------------------------------------------

    def relations(self) -> Tuple[str, ...]:
        return tuple(self.program.relations)

    def schema(self, relation: str) -> ResultSchema:
        return schema_for(self.program, relation)

    def schemas(self) -> Dict[str, ResultSchema]:
        return {name: self.schema(name) for name in self.program.relations}

    # -- connections -----------------------------------------------------------

    def connect(self, config: Optional[EngineConfig] = None) -> Connection:
        """Open a :class:`Connection` (its session snapshots the program now)."""
        self._check_open()
        effective = config or self.config
        catalog = self._catalog_for(effective)
        session = IncrementalSession(
            self.program, effective, cache=self.cache,
            metrics=self._metrics, catalog=catalog,
        )
        catalog.bind_storage(lambda: session.storage)
        catalog.bind_shards(_shard_rows_provider(session))
        catalog.bind_resilience(session.resilience_stats)
        connection = Connection(session, _database=self, catalog=catalog)
        if self.durability is not None and self._durability_owner is None:
            from repro.durability import DurabilityManager

            manager = DurabilityManager(self.durability, session)
            manager.open()  # recovery runs here, before any query/mutation
            catalog.bind_durability(lambda: [manager.stat_row()])
            connection._durability = manager
            self._durability_owner = connection
        self._connections.append(connection)
        return connection

    def _catalog_for(self, config: EngineConfig) -> SystemCatalog:
        """A fresh per-connection :class:`SystemCatalog` over this database's
        shared metrics registry and the configuration's telemetry ring."""
        telemetry = config.telemetry
        ring = telemetry.ring if telemetry is not None else None
        return SystemCatalog(metrics=self._metrics, ring=ring)

    # -- one-shot queries ------------------------------------------------------

    @overload
    def query(self, relation: str,
              config: Optional[EngineConfig] = None) -> QueryResult: ...

    @overload
    def query(self, relation: None = None,
              config: Optional[EngineConfig] = None) -> ResultSet: ...

    def query(self, relation: Optional[str] = None,
              config: Optional[EngineConfig] = None):
        """Evaluate once and return results (no session state is kept).

        With a relation name: that relation's :class:`QueryResult` (EDB
        relations are allowed).  Without: a :class:`ResultSet` of every IDB
        relation — the same answer in every execution mode.

        ``sys_``-prefixed names read the system catalog: trace- and
        metrics-backed relations cover this database's whole workload, but
        the storage-backed ones (``sys_relations``, ``sys_symbols``,
        ``sys_shards``) are empty here — a one-shot read keeps no session
        state to observe; open a connection for those.
        """
        self._check_open()
        from repro.engine.engine import ExecutionEngine

        effective = config or self.config
        if relation is not None and relation.startswith(RESERVED_PREFIX):
            catalog = self._catalog_for(effective)
            rows = frozenset(catalog.rows(relation))
            columns = CATALOG_COLUMNS[relation]
            self._metrics.counter(
                "catalog_queries_total", relation=relation
            ).inc()
            return QueryResult(
                ResultSchema.of(relation, len(columns), columns), rows
            )
        tracer = effective.tracer()
        started = time.perf_counter()
        engine = ExecutionEngine(
            self.program.copy(), effective, catalog=self._catalog_for(effective)
        )
        with tracer.span(
            "query", root=True, relation=relation or "*",
            database=self.program.name,
        ) as span:
            engine._trace_source = (
                (lambda: span.trace) if tracer.enabled else None
            )
            results = engine.evaluate()
            out = results if relation is None else engine.result(relation)
            if tracer.enabled:
                rows = (
                    out.total_rows() if relation is None else out.count()
                )
                span.set(rows=rows)
        # The engine already folded its profile into the TelemetryConfig
        # registry when they share one; fold manually otherwise so
        # ``Database.metrics()`` always covers one-shot queries too.
        if engine.metrics is not self._metrics:
            self._metrics.absorb_profile(engine.profile)
        self._metrics.counter("queries_total").inc()
        self._metrics.histogram("query_seconds").observe(
            time.perf_counter() - started
        )
        return out

    # -- telemetry -------------------------------------------------------------

    @property
    def metrics_registry(self):
        """The :class:`~repro.telemetry.MetricsRegistry` aggregating this
        database's connections and one-shot queries (shared with the
        configuration's :class:`TelemetryConfig` when one is set)."""
        return self._metrics

    def metrics(self) -> Dict[str, object]:
        """A stable snapshot of every counter/gauge/histogram."""
        return self._metrics.snapshot()

    def metrics_prometheus(self) -> str:
        """The metrics in Prometheus text exposition format."""
        return self._metrics.to_prometheus()

    def metrics_json(self) -> str:
        """The metrics snapshot as a JSON document."""
        return self._metrics.to_json()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close every connection opened from this database (idempotent)."""
        for connection in list(self._connections):
            connection.close()
        self._connections.clear()
        self._closed = True

    def _forget(self, connection: Connection) -> None:
        if self._durability_owner is connection:
            self._durability_owner = None
        try:
            self._connections.remove(connection)
        except ValueError:  # pragma: no cover - double-close race
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this database is closed")

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Database({self.program.name!r}, "
            f"config={self.config.describe()!r}, "
            f"connections={len(self._connections)})"
        )

"""Rendering of query plans and adaptive-execution decisions.

One formatter serves every producer of :class:`~repro.api.result.QueryResult`
objects — the single-shot engine, connections over incremental sessions, and
shard-parallel evaluations — so ``.explain()`` output looks the same whatever
path computed the rows: the configuration, the (possibly JIT-rewritten) IR
tree, and the join-order / code-generation decisions taken at runtime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import EngineConfig
from repro.core.profile import RuntimeProfile
from repro.ir.ops import ProgramOp
from repro.ir.printer import explain as explain_tree


def _format_order(order) -> str:
    return " ⋈ ".join(order) if order else "(empty)"


def render_explain(
    title: str,
    config: EngineConfig,
    tree: Optional[ProgramOp] = None,
    profile: Optional[RuntimeProfile] = None,
    relation: Optional[str] = None,
    row_count: Optional[int] = None,
    symbols=None,
    trace=None,
    analyze: Optional[str] = None,
) -> str:
    """A human-readable account of how a result was (or will be) computed.

    ``analyze`` is an optional pre-rendered EXPLAIN ANALYZE block (see
    :func:`repro.introspect.render_analyze`) appended as its own section —
    rendered by the caller so this module stays introspection-free.
    """
    lines: List[str] = [f"-- {title}"]
    if relation is not None:
        suffix = "" if row_count is None else f"  ({row_count} rows)"
        lines.append(f"relation: {relation}{suffix}")
    lines.append(f"configuration: {config.describe()}")
    detail = f"mode={config.mode.value}"
    if config.executor != "pushdown":
        detail += f" executor={config.executor}"
    if config.mode.value == "jit":
        detail += (
            f" backend={config.backend}"
            f" granularity={config.granularity.value}"
            f" compilation={'async' if config.async_compilation else 'blocking'}"
        )
    if config.mode.value == "aot":
        detail += f" sort={config.aot_sort.value} online={config.aot_online}"
    if config.sharding is not None and config.sharding.shards > 1:
        detail += f" shards={config.sharding.shards} pool={config.sharding.pool}"
    lines.append(detail)
    if symbols is not None and not getattr(symbols, "identity", True):
        lines.append(
            f"dictionary encoding: {len(symbols)} symbols interned, "
            f"{symbols.rows_encoded} rows encoded, "
            f"{symbols.rows_decoded} rows decoded"
        )

    if tree is not None:
        lines.append("")
        lines.append("plan (after any adaptive rewrites):")
        lines.extend("  " + line for line in explain_tree(tree).splitlines())

    if profile is not None:
        lines.append("")
        sources = (
            f"sub-queries {profile.sources.interpreted} interpreted / "
            f"{profile.sources.compiled} compiled"
        )
        if profile.sources.vectorized:
            sources += f" / {profile.sources.vectorized} vectorized"
        lines.append(
            f"execution: {profile.iteration_count()} iterations, "
            f"{len(profile.compile_events)} compilations "
            f"({profile.total_compile_seconds() * 1000:.1f} ms), "
            + sources
        )
        if profile.block_joins:
            joins = profile.block_joins
            lines.append(
                f"vectorized batches: {joins.get('batches', 0)} "
                f"(index-probe {joins.get('index', 0)}, "
                f"table-build {joins.get('build', 0)})"
            )
        if profile.block_plans:
            latest = dict(profile.block_plans)  # last prediction per rule wins
            lines.append("vectorized plan strategies (latest per rule):")
            for rule_name, strategies in list(latest.items())[:8]:
                lines.append(f"  {rule_name}: {' ⋈ '.join(strategies)}")
        if profile.reorders:
            changed = [r for r in profile.reorders if r.decision.changed]
            lines.append(
                f"adaptive join-order decisions: {len(profile.reorders)} "
                f"({len(changed)} changed the as-written order)"
            )
            shown = 0
            for record in profile.reorders:
                if not record.decision.changed:
                    continue
                lines.append(
                    f"  [{record.stage}] {record.rule_name}: "
                    f"{_format_order(record.decision.original_order)} -> "
                    f"{_format_order(record.decision.chosen_order)} "
                    f"(est. cost {record.decision.estimated_cost:.1f})"
                )
                shown += 1
                if shown >= 12:
                    lines.append(
                        f"  ... {len(changed) - shown} more changed decisions"
                    )
                    break
        else:
            lines.append("adaptive join-order decisions: none recorded")
        if profile.cache_probes:
            probes = profile.cache_probes
            lines.append(
                f"snapshot cache: {probes.get('hit', 0)} hits, "
                f"{probes.get('miss', 0)} misses"
            )
        if profile.pool_degradations:
            lines.append(
                f"pool degradations: {profile.pool_degradations} "
                "(process pool substituted)"
            )

    if trace is not None:
        lines.append("")
        lines.append("trace (most recent):")
        lines.extend("  " + line for line in trace.render().splitlines())

    if analyze is not None:
        lines.append("")
        lines.extend(analyze.splitlines())
    return "\n".join(lines)

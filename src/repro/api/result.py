"""First-class query results: schema-carrying, ordered, lazily materialised.

:class:`QueryResult` replaces the raw ``set`` / ``dict`` / ``frozenset`` zoo
the engine, the incremental session and the parallel executor used to return.
One result object knows

* its **schema** (:class:`ResultSchema`: relation name, arity, column names),
* a **deterministic row order** (natural sort where the rows are comparable,
  a ``repr``-keyed total order otherwise — the same batch of rows always
  iterates identically, across runs and across execution modes),
* **lazy materialisation**: a result may be built from a thunk, in which case
  rows are fetched on first access; sorting happens only when an ordered view
  is actually requested (``count()``/``__contains__`` never sort),
* **pagination** (:meth:`QueryResult.rows` with offset/limit,
  :meth:`QueryResult.take`), **columnar export**
  (:meth:`QueryResult.to_columns`, :meth:`QueryResult.to_dicts`) and
* :meth:`QueryResult.explain` — the plan and the adaptive join-order /
  code-generation decisions that produced the rows.

``QueryResult`` registers as :class:`collections.abc.Set`, so every set idiom
the old API supported keeps working: ``row in result``, ``len(result)``,
``result == {(1, 2)}``, ``result - other``, iteration.  Set operators return
plain ``set`` objects (a derived result has no single source relation).

:class:`ResultSet` is the multi-relation analogue — an immutable mapping of
relation name to :class:`QueryResult` — and compares equal to the plain
``Dict[str, Set[Row]]`` the legacy ``ExecutionEngine.run()`` returned.
"""

from __future__ import annotations

import itertools
import weakref
from collections.abc import Mapping as MappingABC
from collections.abc import Set as SetABC
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.relational.relation import Row

#: A result's rows: either an already-materialised set or a thunk fetching one.
RowSource = Union[FrozenSet[Row], Iterable[Row], Callable[[], Iterable[Row]]]
#: Deferred plan/profile rendering, attached by whichever engine produced the rows.
ExplainFn = Callable[[], str]


def default_columns(arity: int) -> Tuple[str, ...]:
    """Positional column names (``c0`` … ``c{n-1}``) for undeclared schemas."""
    return tuple(f"c{i}" for i in range(arity))


@dataclass(frozen=True)
class ResultSchema:
    """The shape of one relation's rows: name, arity, column names."""

    relation: str
    arity: int
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != self.arity:
            raise ValueError(
                f"schema for {self.relation!r} declares {len(self.columns)} "
                f"column names for arity {self.arity}"
            )

    @staticmethod
    def of(relation: str, arity: int,
           columns: Optional[Iterable[str]] = None) -> "ResultSchema":
        """Build a schema, generating positional column names when undeclared."""
        names = tuple(columns) if columns is not None else default_columns(arity)
        return ResultSchema(relation=relation, arity=arity, columns=names)


def ordered_rows(rows: Iterable[Row]) -> Tuple[Row, ...]:
    """Rows in the canonical deterministic order.

    Natural tuple ordering when every row is mutually comparable; otherwise
    (mixed int/str columns) the ``repr``-keyed total order used throughout
    the code base.  Both are stable across runs and execution modes.
    """
    try:
        return tuple(sorted(rows))
    except TypeError:
        return tuple(sorted(rows, key=repr))


class QueryResult(SetABC):
    """The rows of one relation at one point in time, with schema and plan.

    Results are immutable snapshots: mutating the session or database that
    produced one does not change it.  Construction is cheap — when built
    from a thunk the rows are fetched on first access, and the deterministic
    sort happens only when an ordered view (iteration, :meth:`rows`,
    :meth:`take`, exports) is requested.
    """

    __slots__ = ("_schema", "_frozen", "_thunk", "_sorted", "_decoded",
                 "_explain_fn", "_symbols", "_trace_fn", "_version",
                 "_finalizer", "__weakref__")

    def __init__(self, schema: ResultSchema, rows: RowSource,
                 explain: Optional[ExplainFn] = None, symbols=None,
                 trace: Optional[Callable[[], Any]] = None,
                 version: Optional[int] = None,
                 on_release: Optional[Callable[[], None]] = None) -> None:
        """``symbols`` marks ``rows`` as dictionary-encoded.

        When a (non-identity) symbol table is attached, the result holds
        the storage-domain int tuples — one copy of each string lives in
        the table, not one per row — and decoding happens here, at the
        boundary: ordering sorts by decoded keys, bounded pages decode as
        they are read, full views decode once and are memoised (repeat
        iteration/export reuses the decoded rows), and membership probes
        encode the probe instead of decoding the set.

        ``version``/``on_release`` tie the result to an MVCC snapshot
        (:mod:`repro.incremental.snapshots`): the result pins the committed
        version it was computed against, and ``on_release`` — registered as
        a weakref finalizer — unpins it when the result is released or
        garbage-collected, whichever comes first.
        """
        self._schema = schema
        self._frozen: Optional[FrozenSet[Row]] = None
        self._thunk: Optional[Callable[[], Iterable[Row]]] = None
        if symbols is not None and getattr(symbols, "identity", False):
            symbols = None
        self._symbols = symbols
        if callable(rows):
            self._thunk = rows
        elif isinstance(rows, frozenset):
            # Already-frozen row sets (e.g. the session result cache's) are
            # adopted as-is: no per-query copy of a potentially huge result.
            self._frozen = rows
        else:
            self._frozen = frozenset(tuple(row) for row in rows)
        self._sorted: Optional[Tuple[Row, ...]] = None
        self._decoded: Optional[Tuple[Row, ...]] = None
        self._explain_fn = explain
        self._trace_fn = trace
        self._version = version
        self._finalizer = (
            weakref.finalize(self, on_release) if on_release is not None else None
        )

    # -- schema ----------------------------------------------------------------

    @property
    def schema(self) -> ResultSchema:
        return self._schema

    @property
    def relation(self) -> str:
        return self._schema.relation

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._schema.columns

    # -- materialisation -------------------------------------------------------

    def _materialise(self) -> FrozenSet[Row]:
        if self._frozen is None:
            assert self._thunk is not None
            self._frozen = frozenset(tuple(row) for row in self._thunk())
            self._thunk = None
        return self._frozen

    def _ordered(self) -> Tuple[Row, ...]:
        """Storage-domain rows in canonical order (sorted by decoded key)."""
        if self._sorted is None:
            if self._symbols is None:
                self._sorted = ordered_rows(self._materialise())
            else:
                decode = self._symbols.resolve_row
                rows = self._materialise()
                try:
                    self._sorted = tuple(sorted(rows, key=decode))
                except TypeError:
                    self._sorted = tuple(
                        sorted(rows, key=lambda row: repr(decode(row)))
                    )
        return self._sorted

    def _decode_page(self, rows: Iterable[Row]) -> Iterator[Row]:
        """Decode one page of ordered rows (identity when not encoded)."""
        if self._symbols is None:
            return iter(rows)
        return iter(self._symbols.resolve_rows(rows))

    def _decoded_ordered(self) -> Tuple[Row, ...]:
        """All rows decoded, in canonical order — decoded at most once.

        The memo behind every full view (iteration, ``to_list``/
        ``to_dicts``/``to_columns``): repeat accesses reuse the decoded
        tuple instead of re-resolving every row through the symbol table.
        """
        if self._decoded is None:
            if self._symbols is None:
                self._decoded = self._ordered()
            else:
                self._decoded = tuple(self._symbols.resolve_rows(self._ordered()))
        return self._decoded

    # -- set protocol ----------------------------------------------------------

    def __contains__(self, row: object) -> bool:
        try:
            candidate = tuple(row)  # type: ignore[arg-type]
        except TypeError:
            return False
        if self._symbols is not None:
            # Encode the probe (no decode of the whole set); a value the
            # table has never seen cannot occur in any stored row.
            encoded = self._symbols.lookup_row(candidate)
            return encoded is not None and encoded in self._materialise()
        return candidate in self._materialise()

    def __iter__(self) -> Iterator[Row]:
        return iter(self._decoded_ordered())

    def __len__(self) -> int:
        return len(self._materialise())

    def __bool__(self) -> bool:
        return bool(self._materialise())

    @classmethod
    def _from_iterable(cls, iterable: Iterable[Row]) -> set:
        # Set operators (|, &, -, ^) produce plain sets: a derived row set
        # has no single source relation, hence no schema to carry.
        return set(iterable)

    __hash__ = SetABC._hash  # results are immutable snapshots

    # -- row access ------------------------------------------------------------

    def count(self) -> int:
        """Number of rows (no ordering cost)."""
        return len(self._materialise())

    def rows(self, offset: int = 0,
             limit: Optional[int] = None) -> Iterator[Row]:
        """Iterate rows in deterministic order, with offset/limit pagination."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        stop = None if limit is None else offset + limit
        if self._decoded is not None or (offset == 0 and limit is None):
            return iter(self._decoded_ordered()[offset:stop])
        return self._decode_page(itertools.islice(iter(self._ordered()), offset, stop))

    def take(self, n: int) -> List[Row]:
        """The first ``n`` rows in deterministic order."""
        return list(self.rows(limit=n))

    def first(self) -> Optional[Row]:
        """The first row in deterministic order, or ``None`` when empty."""
        ordered = self._ordered()
        if not ordered:
            return None
        return next(self._decode_page(ordered[:1]))

    # -- exports ---------------------------------------------------------------

    def to_set(self) -> set:
        if self._symbols is not None:
            if self._decoded is not None:
                return set(self._decoded)
            return set(self._symbols.resolve_rows(self._materialise()))
        return set(self._materialise())

    def to_frozenset(self) -> FrozenSet[Row]:
        if self._symbols is not None:
            if self._decoded is not None:
                return frozenset(self._decoded)
            return frozenset(self._symbols.resolve_rows(self._materialise()))
        return self._materialise()

    def to_list(self) -> List[Row]:
        """All rows as a list, in deterministic order."""
        return list(self._decoded_ordered())

    def to_columns(self) -> Dict[str, List[Any]]:
        """Columnar export: column name -> value vector (rows in order)."""
        ordered = self._decoded_ordered()
        return {
            name: [row[i] for row in ordered]
            for i, name in enumerate(self._schema.columns)
        }

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Row-wise export: one ``{column: value}`` dict per row, in order."""
        columns = self._schema.columns
        return [dict(zip(columns, row)) for row in self._decoded_ordered()]

    # -- snapshot pinning --------------------------------------------------------

    @property
    def snapshot_version(self) -> Optional[int]:
        """The committed MVCC version this result was computed against.

        ``None`` for results produced outside a snapshot-serving context
        (embedded sessions, one-shot evaluations).
        """
        return self._version

    def release(self) -> None:
        """Drop this result's snapshot pin (idempotent; GC does it too).

        The rows stay readable — they are immutable and already held by
        this object — but the engine may now garbage-collect the pinned
        storage version if no other reader holds it.
        """
        if self._finalizer is not None:
            self._finalizer()

    # -- provenance ------------------------------------------------------------

    def explain(self) -> str:
        """The plan and adaptive decisions behind this result.

        Covers the evaluated IR tree and, when the producing engine recorded
        them, the runtime join-order reorderings and code-generation events —
        the adaptive-metaprogramming choices the paper studies.
        """
        if self._explain_fn is None:
            return (
                f"-- {self._schema.relation} ({self.count()} rows): "
                "no execution profile attached"
            )
        return self._explain_fn()

    def trace(self):
        """The :class:`~repro.telemetry.Trace` of the producing evaluation.

        ``None`` unless the producing database/session ran with tracing
        enabled (``EngineConfig.with_(telemetry=...)``); resolved lazily so
        results handed out before the root span closes still see the
        finished trace.
        """
        if self._trace_fn is None:
            return None
        return self._trace_fn()

    def __repr__(self) -> str:
        preview = ", ".join(repr(row) for row in self.take(3))
        suffix = ", ..." if self.count() > 3 else ""
        return (
            f"QueryResult({self._schema.relation!r}, {self.count()} rows"
            + (f": {preview}{suffix}" if preview else "")
            + ")"
        )


class ResultSet(MappingABC):
    """An immutable mapping of relation name -> :class:`QueryResult`.

    Compares equal to the plain ``{relation: set(rows)}`` dictionaries the
    legacy API returned, preserves the producing engine's relation order,
    and carries one whole-program :meth:`explain`.
    """

    __slots__ = ("_results", "_explain_fn", "_trace_fn")

    def __init__(self, results: Mapping[str, QueryResult],
                 explain: Optional[ExplainFn] = None,
                 trace: Optional[Callable[[], Any]] = None) -> None:
        self._results: Dict[str, QueryResult] = dict(results)
        self._explain_fn = explain
        self._trace_fn = trace

    def __getitem__(self, relation: str) -> QueryResult:
        try:
            return self._results[relation]
        except KeyError:
            raise KeyError(
                f"no result for relation {relation!r}; "
                f"available: {sorted(self._results)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def relations(self) -> Tuple[str, ...]:
        return tuple(self._results)

    def total_rows(self) -> int:
        return sum(result.count() for result in self._results.values())

    def to_sets(self) -> Dict[str, set]:
        """The legacy shape: a fresh ``{relation: set(rows)}`` dictionary."""
        return {name: result.to_set() for name, result in self._results.items()}

    def explain(self) -> str:
        if self._explain_fn is None:
            return "-- no execution profile attached"
        return self._explain_fn()

    def trace(self):
        """The evaluation's :class:`~repro.telemetry.Trace` (None untraced)."""
        if self._trace_fn is None:
            return None
        return self._trace_fn()

    def __repr__(self) -> str:
        body = ", ".join(
            f"{name}: {result.count()}" for name, result in self._results.items()
        )
        return f"ResultSet({{{body}}})"

"""Baseline engines the paper compares against (Table II).

Neither Soufflé nor the anonymized commercial engine ("DLX") can be shipped
with an offline Python reproduction, so this package provides stand-ins that
preserve the properties the comparison exercises:

* :class:`SouffleLikeEngine` — semi-naive evaluation with a *static* per-rule
  join order; three modes mirroring Soufflé's interpreter, compiler (a large
  ahead-of-time toolchain cost before a fast run) and auto-tuned compiler
  (static orders chosen from an offline profiling run over the same data).
* :class:`DLXLikeEngine` — a simpler commercial-style engine: naive
  (non-semi-naive) evaluation with as-written join orders.

DESIGN.md documents the substitution and its limits.
"""

from repro.baselines.souffle_like import SouffleLikeEngine, SouffleLikeResult
from repro.baselines.dlx_like import DLXLikeEngine, DLXLikeResult

__all__ = [
    "DLXLikeEngine",
    "DLXLikeResult",
    "SouffleLikeEngine",
    "SouffleLikeResult",
]

"""A DLX-like baseline: a simpler commercial-style Datalog evaluator.

The anonymized commercial engine of Table II is modelled as a naive
(non-semi-naive) bottom-up evaluator with as-written join orders and indexes
enabled — competitive on short queries, increasingly penalised as the derived
relations grow (it re-joins the full relations every iteration), and unable
to finish the largest workload in reasonable time, which is the qualitative
behaviour the paper reports (DNF on CSPA).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional, Set

from repro.core.config import EngineConfig, ExecutionMode
from repro.datalog.program import DatalogProgram
from repro.engine.engine import ExecutionEngine
from repro.relational.relation import Row


@dataclass
class DLXLikeResult:
    """Execution outcome (or a recorded DNF).

    ``relations`` is a :class:`~repro.api.result.ResultSet` (a mapping of
    relation name to ``QueryResult``), comparable to plain dicts of sets.
    """

    relations: Mapping[str, Set[Row]]
    evaluation_seconds: float
    finished: bool = True

    @property
    def reported_seconds(self) -> float:
        return self.evaluation_seconds


class DLXLikeEngine:
    """Naive-evaluation baseline with as-written join orders."""

    def __init__(self, use_indexes: bool = True,
                 timeout_iterations: Optional[int] = None) -> None:
        self.use_indexes = use_indexes
        self.timeout_iterations = timeout_iterations

    def run(self, program: DatalogProgram) -> DLXLikeResult:
        config = EngineConfig(
            mode=ExecutionMode.NAIVE,
            use_indexes=self.use_indexes,
        )
        if self.timeout_iterations is not None:
            config = config.with_(max_iterations=self.timeout_iterations)
        engine = ExecutionEngine(program, config)
        start = time.perf_counter()
        relations = engine.evaluate()
        seconds = time.perf_counter() - start
        finished = True
        if self.timeout_iterations is not None:
            finished = engine.profile.iteration_count() < self.timeout_iterations
        return DLXLikeResult(relations=relations, evaluation_seconds=seconds,
                             finished=finished)

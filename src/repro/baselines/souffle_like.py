"""A Soufflé-like baseline: static join orders, optional offline profiling.

Soufflé lowers Datalog to a relational-algebra machine and either interprets
it or emits C++ that is compiled ahead of time; an auto-tuning mode picks
join orders from a profile gathered in a previous run over the same data
(paper §VI-D).  The stand-in below reuses the reproduction's semi-naive
engine but freezes the join order before execution:

* ``interpreter`` mode — as-written orders, no ahead-of-time cost.
* ``compiler`` mode — as-written orders, plus a simulated C++-toolchain
  latency added to the reported time (the dominant cost Table II shows for
  short queries).  The configurable constant stands in for invoking a full
  optimizing C++ compiler, which has no Python equivalent.
* ``auto-tuned`` mode — an offline profiling run over the same facts records
  relation cardinalities; the static orders are then chosen by the same
  greedy optimizer Carac uses, but fixed for the whole execution (no runtime
  adaptation), plus the compiler latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.aot import apply_aot_optimization
from repro.core.config import AOTSortMode, EngineConfig, ExecutionMode
from repro.core.executor import IRExecutor
from repro.core.join_order import JoinOrderOptimizer
from repro.core.profile import RuntimeProfile
from repro.datalog.program import DatalogProgram
from repro.engine.engine import ExecutionEngine
from repro.ir.builder import build_program_ir
from repro.relational.relation import Row
from repro.relational.storage import StorageManager
from repro.engine.indexing import select_indexes

#: Simulated ahead-of-time C++ toolchain latency (seconds).  The real Soufflé
#: compile of the paper's InvFuns program takes tens of seconds; scaled down
#: here so the harness stays fast while preserving the ordering of Table II
#: (compiler modes lose on short queries because of this constant).
DEFAULT_TOOLCHAIN_SECONDS = 2.0


@dataclass
class SouffleLikeResult:
    """Execution outcome: results plus the cost breakdown."""

    relations: Dict[str, Set[Row]]
    evaluation_seconds: float
    toolchain_seconds: float = 0.0
    profiling_seconds: float = 0.0

    @property
    def reported_seconds(self) -> float:
        """What Table II reports: toolchain + evaluation (profiling excluded).

        The paper notes Soufflé's auto-tuned time "does not include the time
        spent generating the profiling information"; the same convention is
        used here, with the profiling cost still recorded separately.
        """
        return self.evaluation_seconds + self.toolchain_seconds


class SouffleLikeEngine:
    """Static-join-order semi-naive engine with three Soufflé-style modes."""

    MODES = ("interpreter", "compiler", "auto-tuned")

    def __init__(self, mode: str = "interpreter",
                 toolchain_seconds: float = DEFAULT_TOOLCHAIN_SECONDS,
                 use_indexes: bool = True) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        self.mode = mode
        self.toolchain_seconds = toolchain_seconds
        self.use_indexes = use_indexes

    # -- profiling (auto-tuned mode) --------------------------------------------

    def _profile_orders(self, program: DatalogProgram) -> StorageManager:
        """Run the query once to collect the cardinalities a profile would hold."""
        engine = ExecutionEngine(program.copy(), EngineConfig.interpreted(self.use_indexes))
        engine.evaluate()
        return engine.storage

    # -- execution ---------------------------------------------------------------

    def run(self, program: DatalogProgram) -> SouffleLikeResult:
        profiling_seconds = 0.0
        profiled_storage: Optional[StorageManager] = None
        if self.mode == "auto-tuned":
            profile_start = time.perf_counter()
            profiled_storage = self._profile_orders(program)
            profiling_seconds = time.perf_counter() - profile_start

        storage = StorageManager(program)
        if self.use_indexes:
            for relation, column in sorted(select_indexes(program)):
                storage.register_index(relation, column)
        tree = build_program_ir(program)

        if self.mode == "auto-tuned" and profiled_storage is not None:
            # Static orders chosen from the profile's (final) cardinalities.
            apply_aot_optimization(
                tree,
                JoinOrderOptimizer(),
                profiled_storage,
                AOTSortMode.FACTS_AND_RULES,
                use_indexes=self.use_indexes,
            )

        config = EngineConfig.interpreted(self.use_indexes)
        profile = RuntimeProfile()
        executor = IRExecutor(storage, config, profile)
        evaluation_start = time.perf_counter()
        executor.execute(tree)
        evaluation_seconds = time.perf_counter() - evaluation_start

        toolchain = 0.0
        if self.mode in ("compiler", "auto-tuned"):
            toolchain = self.toolchain_seconds

        relations = {
            relation: storage.tuples(relation)
            for relation in program.idb_relations()
        }
        return SouffleLikeResult(
            relations=relations,
            evaluation_seconds=evaluation_seconds,
            toolchain_seconds=toolchain,
            profiling_seconds=profiling_seconds,
        )

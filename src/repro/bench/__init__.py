"""The benchmark harness: drivers that regenerate the paper's tables/figures.

Each ``run_*`` function measures the configurations one table or figure
compares, over the registered benchmark workloads at a configurable scale,
and returns structured rows that the formatters render the way the paper
reports them (absolute seconds for the tables, speedups for the figures).

``python -m repro.bench`` runs everything at the default (quick) scale.
"""

from repro.bench.measurement import MeasurementResult, measure_program, speedup
from repro.bench.configurations import (
    fig10_configurations,
    jit_configurations,
    table1_configurations,
)
from repro.bench.table1 import run_table1
from repro.bench.table2 import run_table2
from repro.bench.fig5 import run_fig5
from repro.bench.fig67 import run_fig6, run_fig7
from repro.bench.fig89 import run_fig8, run_fig9
from repro.bench.fig10 import run_fig10
from repro.bench.formatting import format_rows, print_rows

__all__ = [
    "MeasurementResult",
    "fig10_configurations",
    "format_rows",
    "jit_configurations",
    "measure_program",
    "print_rows",
    "run_fig10",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table1",
    "run_table2",
    "speedup",
    "table1_configurations",
]

"""Run the whole evaluation harness: ``python -m repro.bench [options]``.

Prints every table and figure of the paper's evaluation section — plus the
repository's own subsystem benchmarks (``incremental``, ``parallel``,
``vectorized``) — regenerated over the synthetic datasets at the selected
scale.

Sections register in a single table (:data:`SECTIONS`: name → title →
columns → runner), so adding an experiment is one entry, automatically
picked up by ``--only`` and the JSON export.  ``--json PATH`` dumps every
measured row machine-readable (the repo's performance-trajectory format);
``--quick`` shrinks the section workloads that support it (CI smoke).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.bench.fig10 import FIG10_COLUMNS, run_fig10
from repro.bench.fig5 import FIG5_COLUMNS, run_fig5
from repro.bench.fig67 import FIG67_COLUMNS, run_fig6, run_fig7
from repro.bench.fig89 import FIG89_COLUMNS, run_fig8, run_fig9
from repro.bench.durability import DURABILITY_COLUMNS, run_durability
from repro.bench.formatting import format_rows
from repro.bench.incremental import INCREMENTAL_COLUMNS, run_incremental
from repro.bench.interning import INTERNING_COLUMNS, run_interning
from repro.bench.parallel import PARALLEL_COLUMNS, run_parallel
from repro.bench.resilience import RESILIENCE_COLUMNS, run_resilience
from repro.bench.serving import SERVING_COLUMNS, run_serving
from repro.bench.table1 import TABLE1_COLUMNS, run_table1
from repro.bench.table2 import TABLE2_COLUMNS, run_table2
from repro.bench.telemetry import TELEMETRY_COLUMNS, run_telemetry
from repro.bench.vectorized import VECTORIZED_COLUMNS, run_vectorized

Rows = List[Dict[str, object]]


@dataclass(frozen=True)
class BenchSection:
    """One registered experiment of the harness."""

    name: str
    title: str
    columns: Tuple[str, ...]
    runner: Callable[[argparse.Namespace], Rows]


def _incremental_runner(args: argparse.Namespace) -> Rows:
    # --repeat scales the number of measured batches per phase (5 each at
    # the default repeat of 1), mirroring its per-cell meaning elsewhere.
    scales = [("tc_2k", 3_000, 2_000)] if args.quick else None
    return run_incremental(scales=scales, batches=5 * args.repeat)


SECTIONS: Tuple[BenchSection, ...] = (
    BenchSection(
        "table1", "Table I — interpreted execution time (s)", TABLE1_COLUMNS,
        lambda args: run_table1(repeat=args.repeat),
    ),
    BenchSection(
        "table2", "Table II — comparison with the state of the art (s)",
        TABLE2_COLUMNS, lambda args: run_table2(),
    ),
    BenchSection(
        "fig5", "Fig. 5 — code generation time per granularity (s)",
        FIG5_COLUMNS, lambda args: run_fig5(),
    ),
    BenchSection(
        "fig6", "Fig. 6 — macrobenchmark speedup over unoptimized",
        FIG67_COLUMNS,
        lambda args: run_fig6(repeat=args.repeat,
                              include_unindexed=not args.skip_unindexed),
    ),
    BenchSection(
        "fig7", "Fig. 7 — microbenchmark speedup over unoptimized",
        FIG67_COLUMNS,
        lambda args: run_fig7(repeat=args.repeat,
                              include_unindexed=not args.skip_unindexed),
    ),
    BenchSection(
        "fig8", "Fig. 8 — macrobenchmark speedup over hand-optimized",
        FIG89_COLUMNS,
        lambda args: run_fig8(repeat=args.repeat,
                              include_unindexed=not args.skip_unindexed),
    ),
    BenchSection(
        "fig9", "Fig. 9 — microbenchmark speedup over hand-optimized",
        FIG89_COLUMNS,
        lambda args: run_fig9(repeat=args.repeat,
                              include_unindexed=not args.skip_unindexed),
    ),
    BenchSection(
        "fig10", "Fig. 10 — ahead-of-time vs online compilation (speedup)",
        FIG10_COLUMNS, lambda args: run_fig10(repeat=args.repeat),
    ),
    BenchSection(
        "incremental",
        "Incremental sessions — update latency vs full recompute",
        INCREMENTAL_COLUMNS, _incremental_runner,
    ),
    BenchSection(
        "parallel",
        "Shard-parallel evaluation — shards scaling vs single shard",
        PARALLEL_COLUMNS,
        lambda args: run_parallel(repeat=args.repeat, quick=args.quick),
    ),
    BenchSection(
        "vectorized",
        "Vectorized execution — batch vs tuple-at-a-time sub-queries",
        VECTORIZED_COLUMNS,
        lambda args: run_vectorized(repeat=args.repeat, quick=args.quick),
    ),
    BenchSection(
        "interning",
        "Dictionary-encoded storage — interned vs raw-object evaluation",
        INTERNING_COLUMNS,
        lambda args: run_interning(repeat=args.repeat, quick=args.quick),
    ),
    BenchSection(
        "telemetry",
        "Telemetry — traced vs no-op vs bare evaluation overhead",
        TELEMETRY_COLUMNS,
        lambda args: run_telemetry(repeat=args.repeat, quick=args.quick),
    ),
    BenchSection(
        "resilience",
        "Resilience — governed vs ungoverned evaluation overhead",
        RESILIENCE_COLUMNS,
        lambda args: run_resilience(repeat=args.repeat, quick=args.quick),
    ),
    BenchSection(
        "serving",
        "Concurrent serving — mixed read/write latency under N clients",
        SERVING_COLUMNS,
        lambda args: run_serving(repeat=args.repeat, quick=args.quick),
    ),
    BenchSection(
        "durability",
        "Durability — WAL append cost and warm-restart speedup",
        DURABILITY_COLUMNS,
        lambda args: run_durability(repeat=args.repeat, quick=args.quick),
    ),
)


def _jsonable(value: object) -> object:
    """JSON-safe scalar: non-finite floats become None (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=1,
                        help="measurement repetitions per cell (default 1)")
    parser.add_argument("--skip-unindexed", action="store_true",
                        help="skip the unindexed variants (much slower)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scales for sections that support it (CI smoke)")
    parser.add_argument("--only", metavar="NAME[,NAME...]",
                        help="run a subset of experiments (comma-separated "
                             f"names from: {', '.join(s.name for s in SECTIONS)})")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="also dump every measured row as JSON to PATH")
    args = parser.parse_args(argv)

    selected = None
    if args.only is not None:
        selected = {name.strip() for name in args.only.split(",") if name.strip()}
        known = {section.name for section in SECTIONS}
        if not selected:
            # An empty selection (e.g. --only "$UNSET_VAR" in CI) would
            # silently run nothing and exit 0 — fail loudly instead.
            parser.error(f"--only selected no sections; choose from {sorted(known)}")
        unknown = selected - known
        if unknown:
            parser.error(
                f"unknown section(s) {sorted(unknown)}; choose from {sorted(known)}"
            )

    started = time.perf_counter()
    collected: Dict[str, Rows] = {}
    for section in SECTIONS:
        if selected is not None and section.name not in selected:
            continue
        rows = section.runner(args)
        collected[section.name] = rows
        print(format_rows(rows, section.columns, section.title))
        print()

    total_seconds = time.perf_counter() - started
    if args.json_path:
        payload = {
            "harness": "repro.bench",
            "argv": list(argv) if argv is not None else sys.argv[1:],
            "total_seconds": total_seconds,
            "sections": {
                name: [
                    {key: _jsonable(value) for key, value in row.items()}
                    for row in rows
                ]
                for name, rows in collected.items()
            },
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote JSON results to {args.json_path}")

    print(f"total harness time: {total_seconds:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Run the whole evaluation harness: ``python -m repro.bench [--quick|--full]``.

Prints every table and figure of the paper's evaluation section, regenerated
over the synthetic datasets at the selected scale, in the same structure the
paper reports (absolute seconds for Tables I/II, speedups for the figures).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.fig10 import FIG10_COLUMNS, run_fig10
from repro.bench.fig5 import FIG5_COLUMNS, run_fig5
from repro.bench.fig67 import FIG67_COLUMNS, run_fig6, run_fig7
from repro.bench.fig89 import FIG89_COLUMNS, run_fig8, run_fig9
from repro.bench.formatting import format_rows
from repro.bench.incremental import INCREMENTAL_COLUMNS, run_incremental
from repro.bench.table1 import TABLE1_COLUMNS, run_table1
from repro.bench.table2 import TABLE2_COLUMNS, run_table2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=1,
                        help="measurement repetitions per cell (default 1)")
    parser.add_argument("--skip-unindexed", action="store_true",
                        help="skip the unindexed variants (much slower)")
    parser.add_argument("--only", choices=[
        "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "incremental",
    ], help="run a single experiment")
    args = parser.parse_args(argv)

    include_unindexed = not args.skip_unindexed
    started = time.perf_counter()

    def wanted(name: str) -> bool:
        return args.only is None or args.only == name

    if wanted("table1"):
        print(format_rows(run_table1(repeat=args.repeat), TABLE1_COLUMNS,
                          "Table I — interpreted execution time (s)"))
        print()
    if wanted("table2"):
        print(format_rows(run_table2(), TABLE2_COLUMNS,
                          "Table II — comparison with the state of the art (s)"))
        print()
    if wanted("fig5"):
        print(format_rows(run_fig5(), FIG5_COLUMNS,
                          "Fig. 5 — code generation time per granularity (s)"))
        print()
    if wanted("fig6"):
        print(format_rows(run_fig6(repeat=args.repeat, include_unindexed=include_unindexed),
                          FIG67_COLUMNS, "Fig. 6 — macrobenchmark speedup over unoptimized"))
        print()
    if wanted("fig7"):
        print(format_rows(run_fig7(repeat=args.repeat, include_unindexed=include_unindexed),
                          FIG67_COLUMNS, "Fig. 7 — microbenchmark speedup over unoptimized"))
        print()
    if wanted("fig8"):
        print(format_rows(run_fig8(repeat=args.repeat, include_unindexed=include_unindexed),
                          FIG89_COLUMNS, "Fig. 8 — macrobenchmark speedup over hand-optimized"))
        print()
    if wanted("fig9"):
        print(format_rows(run_fig9(repeat=args.repeat, include_unindexed=include_unindexed),
                          FIG89_COLUMNS, "Fig. 9 — microbenchmark speedup over hand-optimized"))
        print()
    if wanted("fig10"):
        print(format_rows(run_fig10(repeat=args.repeat), FIG10_COLUMNS,
                          "Fig. 10 — ahead-of-time vs online compilation (speedup)"))
        print()
    if wanted("incremental"):
        # --repeat scales the number of measured batches per phase (5 each
        # at the default repeat of 1), mirroring its per-cell meaning in the
        # other experiments.
        print(format_rows(run_incremental(batches=5 * args.repeat),
                          INCREMENTAL_COLUMNS,
                          "Incremental sessions — update latency vs full recompute"))
        print()

    print(f"total harness time: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())

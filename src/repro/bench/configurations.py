"""The named configuration sets each figure compares."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
)


def jit_configurations(use_indexes: bool,
                       granularity: CompilationGranularity = CompilationGranularity.RULE
                       ) -> List[Tuple[str, EngineConfig]]:
    """The JIT bars of Figs. 6–9 (plus the hand-optimized reference is added
    separately by the drivers, since it runs on a different program variant)."""
    return [
        (
            "JIT IRGenerator",
            EngineConfig.jit("irgen", granularity=granularity, use_indexes=use_indexes),
        ),
        (
            "JIT Lambda Blocking",
            EngineConfig.jit("lambda", granularity=granularity, use_indexes=use_indexes),
        ),
        (
            "JIT Bytecode Async",
            EngineConfig.jit("bytecode", asynchronous=True, granularity=granularity,
                             use_indexes=use_indexes),
        ),
        (
            "JIT Bytecode Blocking",
            EngineConfig.jit("bytecode", granularity=granularity, use_indexes=use_indexes),
        ),
        (
            "JIT Quotes Async",
            EngineConfig.jit("quotes", asynchronous=True, granularity=granularity,
                             use_indexes=use_indexes),
        ),
        (
            "JIT Quotes Blocking",
            EngineConfig.jit("quotes", granularity=granularity, use_indexes=use_indexes),
        ),
    ]


def table1_configurations() -> Dict[str, EngineConfig]:
    """The four interpreted columns of Table I."""
    return {
        "unindexed": EngineConfig.interpreted(use_indexes=False),
        "indexed": EngineConfig.interpreted(use_indexes=True),
    }


def fig10_configurations(use_indexes: bool = True) -> List[Tuple[str, EngineConfig]]:
    """The ahead-of-time / online configurations of Fig. 10."""
    return [
        (
            "JIT-lambda",
            EngineConfig.jit("lambda", granularity=CompilationGranularity.JOIN,
                             use_indexes=use_indexes),
        ),
        (
            "Macro Facts+rules (online)",
            EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES, online=True,
                             use_indexes=use_indexes),
        ),
        (
            "Macro Rules (online)",
            EngineConfig.aot(sort=AOTSortMode.RULES_ONLY, online=True,
                             use_indexes=use_indexes),
        ),
        (
            "Macro Facts+rules",
            EngineConfig.aot(sort=AOTSortMode.FACTS_AND_RULES, online=False,
                             use_indexes=use_indexes),
        ),
        (
            "Macro Rules",
            EngineConfig.aot(sort=AOTSortMode.RULES_ONLY, online=False,
                             use_indexes=use_indexes),
        ),
    ]

"""Durability benchmark: WAL append cost and warm-restart speedup.

Not a paper figure — this measures the repository's durability subsystem
(:mod:`repro.durability`) on the transitive-closure workload the
incremental and serving benches use:

* ``cold_seconds`` — time from ``Database(...)`` on a *fresh* durability
  directory to the first ``path`` query: the full initial fixpoint.
* ``apply_p50_ms`` — median latency of a durable single-edge mutation
  batch (engine propagation + WAL append under the row's fsync policy).
* ``wal_mb`` — bytes the mutation phase appended to the log.
* ``warm_seconds`` — time from ``Database(...)`` over the *closed*
  directory (clean close collapses the WAL into a checkpoint) to the
  same first query: checkpoint install, no re-evaluation.
* ``restart_speedup`` — ``cold_seconds / warm_seconds``; the acceptance
  gate in ``benchmarks/bench_durability.py`` requires >= 10x at the
  10k-edge scale.

One row per fsync policy: ``off`` isolates the engine+encoding cost,
``batch`` adds group-commit syncing (the server's default), ``always``
pays one fsync per batch.
"""

from __future__ import annotations

import gc
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.bench.serving import percentile
from repro.durability import DurabilityConfig
from repro.workloads.graphs import random_edges

DURABILITY_COLUMNS = (
    "workload", "fsync", "rows", "cold_seconds", "apply_p50_ms",
    "wal_mb", "warm_seconds", "restart_speedup",
)

TC_EDGES, TC_NODES = 10_000, 12_000
QUICK_EDGES, QUICK_NODES = 2_000, 2_400

POLICIES: Tuple[str, ...] = ("off", "batch", "always")
QUICK_POLICIES: Tuple[str, ...] = ("batch",)

#: Mutation batches per measured run; fresh node ids so every batch does
#: real incremental work and allocates fresh symbols for its WAL record.
MUTATION_BATCHES = 20
WRITE_NODE_BASE = 50_000_000


def _measure_lifecycle(
    program_edges,
    directory: str,
    fsync: str,
    batches: int,
) -> Dict[str, float]:
    """One full durable lifecycle in ``directory``: cold start, mutate,
    clean close, warm restart.  Returns the raw measurements."""
    config = DurabilityConfig(dir=directory, fsync=fsync)

    gc.collect()  # keep prior lifecycles' garbage out of the timed region
    started = time.perf_counter()
    database = Database(
        build_transitive_closure_program(program_edges),
        durability=config,
    )
    conn = database.connect()
    rows = conn.query("path").count()
    cold_seconds = time.perf_counter() - started

    apply_latencies: List[float] = []
    for index in range(batches):
        source = WRITE_NODE_BASE + index
        batch_started = time.perf_counter()
        conn.apply(inserts={"edge": [(source, source + 1)]})
        apply_latencies.append(time.perf_counter() - batch_started)
    wal_bytes = conn.durability.stats()["wal_bytes"]
    database.close()  # clean close: checkpoint + WAL rotation

    # Two warm reopens, keeping the faster: a single 50ms measurement is
    # at the mercy of scheduler noise, and each reopen-close leaves the
    # directory exactly as warm as it found it.
    warm_seconds = float("inf")
    for _ in range(2):
        gc.collect()
        started = time.perf_counter()
        database = Database(
            build_transitive_closure_program(program_edges),
            durability=config,
        )
        conn = database.connect()
        warm_rows = conn.query("path").count()
        warm_seconds = min(warm_seconds, time.perf_counter() - started)
        recovery = conn.durability.last_recovery
        database.close()
        assert recovery is not None and recovery.warm, "restart was not warm"
    assert warm_rows >= rows, "recovered fixpoint lost rows"
    return {
        "rows": warm_rows,
        "cold_seconds": cold_seconds,
        "apply_p50_ms": percentile(apply_latencies, 0.50) * 1_000,
        "wal_mb": wal_bytes / (1024 * 1024),
        "warm_seconds": warm_seconds,
    }


def run_durability(
    repeat: int = 1,
    quick: bool = False,
    policies: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Benchmark rows: one per fsync policy (best-of-``repeat`` rounds)."""
    if quick:
        edge_count, nodes = QUICK_EDGES, QUICK_NODES
        selected = QUICK_POLICIES if policies is None else policies
    else:
        edge_count, nodes = TC_EDGES, TC_NODES
        selected = POLICIES if policies is None else policies
    workload = f"tc_{edge_count // 1000}k"
    edges = random_edges(nodes, edge_count, seed=2024)

    rows: List[Dict[str, object]] = []
    for fsync in selected:
        # Field-wise minimum across rounds: each timing is an independent
        # noise-contaminated sample of a fixed true cost, so the minimum
        # is the least-contaminated estimate of each (standard
        # min-timing), and the speedup ratio is computed from the two
        # stable minima rather than one arbitrary pairing.
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeat)):
            base = tempfile.mkdtemp(prefix="repro-bench-durability-")
            try:
                outcome = _measure_lifecycle(
                    edges, os.path.join(base, "dur"), fsync,
                    MUTATION_BATCHES,
                )
            finally:
                shutil.rmtree(base, ignore_errors=True)
            if best is None:
                best = outcome
            else:
                for field in (
                    "cold_seconds", "apply_p50_ms", "warm_seconds",
                ):
                    best[field] = min(best[field], outcome[field])
        rows.append({
            "workload": workload,
            "fsync": fsync,
            "rows": int(best["rows"]),
            "cold_seconds": best["cold_seconds"],
            "apply_p50_ms": best["apply_p50_ms"],
            "wal_mb": best["wal_mb"],
            "warm_seconds": best["warm_seconds"],
            "restart_speedup": (
                best["cold_seconds"] / best["warm_seconds"]
                if best["warm_seconds"] else 0.0
            ),
        })
    return rows

"""Fig. 10: ahead-of-time ("macro") versus online compilation.

Five configurations over the microbenchmarks, all reported as speedup over
the unoptimized interpreted baseline: the JIT-lambda configuration at the
lowest granularity (no information before execution), and the four macro
combinations of {facts+rules, rules-only} × {with, without} the online
IRGenerator re-sorter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analyses.ordering import Ordering
from repro.analyses.registry import MICRO_BENCHMARKS
from repro.bench.configurations import fig10_configurations
from repro.bench.measurement import measure_benchmark, speedup
from repro.core.config import EngineConfig


def run_fig10(benchmarks: Optional[Sequence[str]] = None, repeat: int = 1,
              use_indexes: bool = True) -> List[Dict[str, object]]:
    """Measure the Fig. 10 configurations; one row per benchmark."""
    names = list(benchmarks) if benchmarks is not None else list(MICRO_BENCHMARKS)
    rows: List[Dict[str, object]] = []
    for name in names:
        baseline = measure_benchmark(
            name, EngineConfig.interpreted(use_indexes), Ordering.WORST, repeat=repeat
        )
        row: Dict[str, object] = {
            "benchmark": name,
            "baseline_seconds": baseline.seconds,
        }
        for label, config in fig10_configurations(use_indexes):
            measured = measure_benchmark(name, config, Ordering.WORST, repeat=repeat)
            row[label] = speedup(baseline.seconds, measured.seconds)
        rows.append(row)
    return rows


FIG10_COLUMNS = (
    "benchmark", "baseline_seconds", "JIT-lambda",
    "Macro Facts+rules (online)", "Macro Rules (online)",
    "Macro Facts+rules", "Macro Rules",
)

"""Fig. 5: execution time of code generation per IROp granularity.

The paper measures how long generating (and compiling) a quote takes at each
node kind of the IROp tree — from the σπ⋈ leaf through the per-rule and
per-relation unions up to the whole program — with a warm versus a cold
compiler, and for "full" (whole subtree) versus "snippet" (operator body plus
continuations) compilation.  The reproduction measures the same thing for the
Quotes and Bytecode backends over the CSPA program's sub-queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analyses.ordering import Ordering
from repro.analyses.registry import get_benchmark
from repro.core.backends import BytecodeBackend, QuotesBackend
from repro.core.backends.base import Backend
from repro.engine.engine import ExecutionEngine
from repro.core.config import EngineConfig
from repro.ir.ops import JoinProjectOp, ProgramOp, RelationUnionOp, UnionOp, find_nodes
from repro.relational.operators import JoinPlan


def _plan_groups(tree: ProgramOp) -> Dict[str, List[JoinPlan]]:
    """Plans grouped the way each compilation granularity would see them."""
    join_ops = [n for n in find_nodes(tree, JoinProjectOp)]
    union_ops = [n for n in find_nodes(tree, UnionOp)]
    relation_ops = [n for n in find_nodes(tree, RelationUnionOp)]

    groups: Dict[str, List[JoinPlan]] = {}
    groups["JoinProjectOp"] = [join_ops[0].plan] if join_ops else []
    if union_ops:
        largest_union = max(union_ops, key=lambda n: len(n.children))
        groups["UnionOp"] = [
            c.plan for c in largest_union.children if isinstance(c, JoinProjectOp)
        ]
    if relation_ops:
        largest_relation = max(
            relation_ops,
            key=lambda n: len([j for j in find_nodes(n, JoinProjectOp)]),
        )
        groups["RelationUnionOp"] = [
            j.plan for j in find_nodes(largest_relation, JoinProjectOp)
        ]
    groups["ProgramOp"] = [op.plan for op in join_ops]
    return {label: plans for label, plans in groups.items() if plans}


def _measure_backend(backend_factory, plans: Sequence[JoinPlan], storage,
                     mode: str, warmups: int) -> float:
    """Compile ``plans`` once after ``warmups`` warm-up compilations."""
    backend: Backend = backend_factory()
    continuations = None
    if mode == "snippet":
        continuations = [lambda s: set() for _ in plans]
    for _ in range(warmups):
        backend.compile_plans(plans, storage, mode=mode, continuations=continuations,
                              label="warmup")
    artifact = backend.compile_plans(plans, storage, mode=mode,
                                     continuations=continuations, label="measured")
    return artifact.compile_seconds


def run_fig5(benchmark: str = "cspa_tiny", warm_compilations: int = 20,
             backends: Sequence[str] = ("quotes", "bytecode")) -> List[Dict[str, object]]:
    """Measure code-generation time per granularity/backend/warmth/mode."""
    spec = get_benchmark(benchmark)
    program = spec.build(Ordering.WRITTEN)
    engine = ExecutionEngine(program, EngineConfig.interpreted())
    groups = _plan_groups(engine.tree)

    factories = {"quotes": QuotesBackend, "bytecode": BytecodeBackend}
    rows: List[Dict[str, object]] = []
    for backend_name in backends:
        factory = factories[backend_name]
        for granularity, plans in groups.items():
            for mode in ("full", "snippet"):
                if mode == "snippet" and backend_name == "bytecode":
                    continue  # bytecode has no snippet mode (not revertible)
                cold = _measure_backend(factory, plans, engine.storage, mode, warmups=0)
                warm = _measure_backend(factory, plans, engine.storage, mode,
                                        warmups=warm_compilations)
                rows.append(
                    {
                        "backend": backend_name,
                        "granularity": granularity,
                        "mode": mode,
                        "plans": len(plans),
                        "cold_seconds": cold,
                        "warm_seconds": warm,
                    }
                )
    return rows


FIG5_COLUMNS = ("backend", "granularity", "mode", "plans", "cold_seconds", "warm_seconds")

"""Figs. 6 & 7: speedup of JIT configurations over the "unoptimized" input.

For each benchmark the baseline is the interpreted evaluation of the
*worst-ordered* ("unoptimized") program formulation; every JIT configuration
also runs on that same worst-ordered program (no help from the user), while
"Hand-Optimized" runs the interpreter on the hand-optimized formulation.
Fig. 6 covers the macrobenchmarks, Fig. 7 the microbenchmarks, each measured
both with and without indexes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analyses.ordering import Ordering
from repro.analyses.registry import MACRO_BENCHMARKS, MICRO_BENCHMARKS
from repro.bench.configurations import jit_configurations
from repro.bench.measurement import measure_benchmark, speedup
from repro.core.config import EngineConfig


def _speedups_over_unoptimized(benchmarks: Sequence[str], use_indexes: bool,
                               repeat: int = 1) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name in benchmarks:
        baseline_config = EngineConfig.interpreted(use_indexes)
        baseline = measure_benchmark(name, baseline_config, Ordering.WORST, repeat=repeat)
        row: Dict[str, object] = {
            "benchmark": name,
            "indexes": "indexed" if use_indexes else "unindexed",
            "baseline_seconds": baseline.seconds,
        }
        hand = measure_benchmark(name, baseline_config, Ordering.OPTIMIZED, repeat=repeat)
        row["Hand-Optimized"] = speedup(baseline.seconds, hand.seconds)
        for label, config in jit_configurations(use_indexes):
            measured = measure_benchmark(name, config, Ordering.WORST, repeat=repeat)
            row[label] = speedup(baseline.seconds, measured.seconds)
        rows.append(row)
    return rows


def run_fig6(benchmarks: Optional[Sequence[str]] = None, repeat: int = 1,
             include_unindexed: bool = True) -> List[Dict[str, object]]:
    """Macrobenchmark speedups over the unoptimized interpreted baseline."""
    names = list(benchmarks) if benchmarks is not None else list(MACRO_BENCHMARKS)
    rows = _speedups_over_unoptimized(names, use_indexes=True, repeat=repeat)
    if include_unindexed:
        rows += _speedups_over_unoptimized(names, use_indexes=False, repeat=repeat)
    return rows


def run_fig7(benchmarks: Optional[Sequence[str]] = None, repeat: int = 1,
             include_unindexed: bool = True) -> List[Dict[str, object]]:
    """Microbenchmark speedups over the unoptimized interpreted baseline."""
    names = list(benchmarks) if benchmarks is not None else list(MICRO_BENCHMARKS)
    rows = _speedups_over_unoptimized(names, use_indexes=True, repeat=repeat)
    if include_unindexed:
        rows += _speedups_over_unoptimized(names, use_indexes=False, repeat=repeat)
    return rows


FIG67_COLUMNS = (
    "benchmark", "indexes", "baseline_seconds", "Hand-Optimized",
    "JIT IRGenerator", "JIT Lambda Blocking", "JIT Bytecode Async",
    "JIT Bytecode Blocking", "JIT Quotes Async", "JIT Quotes Blocking",
)

"""Figs. 8 & 9: speedup (or slowdown) over the hand-optimized program.

Here every configuration — including the JIT — runs on the *hand-optimized*
formulation, and the baseline is its interpreted evaluation; values below 1
mean the JIT's overhead degraded an already-good program, which is the risk
§VI-B2 quantifies.  Fig. 8 covers the macrobenchmarks (including CSDA),
Fig. 9 the microbenchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analyses.ordering import Ordering
from repro.analyses.registry import MACRO_BENCHMARKS_WITH_CSDA, MICRO_BENCHMARKS
from repro.bench.configurations import jit_configurations
from repro.bench.measurement import measure_benchmark, speedup
from repro.core.config import EngineConfig


def _speedups_over_optimized(benchmarks: Sequence[str], use_indexes: bool,
                             repeat: int = 1) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name in benchmarks:
        baseline_config = EngineConfig.interpreted(use_indexes)
        baseline = measure_benchmark(name, baseline_config, Ordering.OPTIMIZED, repeat=repeat)
        row: Dict[str, object] = {
            "benchmark": name,
            "indexes": "indexed" if use_indexes else "unindexed",
            "baseline_seconds": baseline.seconds,
        }
        for label, config in jit_configurations(use_indexes):
            measured = measure_benchmark(name, config, Ordering.OPTIMIZED, repeat=repeat)
            row[label] = speedup(baseline.seconds, measured.seconds)
        rows.append(row)
    return rows


def run_fig8(benchmarks: Optional[Sequence[str]] = None, repeat: int = 1,
             include_unindexed: bool = True) -> List[Dict[str, object]]:
    """Macrobenchmark speedups over the hand-optimized interpreted baseline."""
    names = (
        list(benchmarks) if benchmarks is not None else list(MACRO_BENCHMARKS_WITH_CSDA)
    )
    rows = _speedups_over_optimized(names, use_indexes=True, repeat=repeat)
    if include_unindexed:
        unindexed_names = [n for n in names if n != "csda"]
        rows += _speedups_over_optimized(unindexed_names, use_indexes=False, repeat=repeat)
    return rows


def run_fig9(benchmarks: Optional[Sequence[str]] = None, repeat: int = 1,
             include_unindexed: bool = True) -> List[Dict[str, object]]:
    """Microbenchmark speedups over the hand-optimized interpreted baseline."""
    names = list(benchmarks) if benchmarks is not None else list(MICRO_BENCHMARKS)
    rows = _speedups_over_optimized(names, use_indexes=True, repeat=repeat)
    if include_unindexed:
        rows += _speedups_over_optimized(names, use_indexes=False, repeat=repeat)
    return rows


FIG89_COLUMNS = (
    "benchmark", "indexes", "baseline_seconds",
    "JIT IRGenerator", "JIT Lambda Blocking", "JIT Bytecode Async",
    "JIT Bytecode Blocking", "JIT Quotes Async", "JIT Quotes Blocking",
)

"""Plain-text table rendering for the benchmark drivers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_rows(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: str = "") -> str:
    """Render dict-rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_format_value(row.get(c, "")) for c in columns]
        rendered_rows.append(rendered)
        for column, value in zip(columns, rendered):
            widths[column] = max(widths[column], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[c] for c in columns))
    for rendered in rendered_rows:
        lines.append("  ".join(v.ljust(widths[c]) for c, v in zip(columns, rendered)))
    return "\n".join(lines)


def print_rows(rows: Sequence[Dict[str, object]],
               columns: Optional[Sequence[str]] = None, title: str = "") -> None:
    print(format_rows(rows, columns, title))

"""Incremental-update benchmark: session update latency vs. full recompute.

Not a figure from the paper — this measures the subsystem the paper's
storage split enables: a long-lived :class:`~repro.incremental.IncrementalSession`
absorbing batched mutations, against the single-shot baseline of rebuilding
an :class:`~repro.engine.engine.ExecutionEngine` and re-running the fixpoint
after every batch.  Reported per workload scale:

* ``full_recompute_s`` — one from-scratch evaluation of the current facts.
* ``insert_batch_s`` / ``retract_batch_s`` / ``mixed_batch_s`` — mean
  incremental latency of one batch of each kind.
* ``speedup`` — full recompute over the mean mixed-batch latency.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.incremental import IncrementalSession
from repro.workloads.streaming import UpdateStream, edge_update_stream

INCREMENTAL_COLUMNS = (
    "workload", "edges", "derived", "full_recompute_s",
    "insert_batch_s", "retract_batch_s", "mixed_batch_s", "speedup",
)


def _timed_recompute(edges: Sequence[Tuple[object, ...]],
                     config: EngineConfig) -> Tuple[float, int]:
    started = time.perf_counter()
    engine = ExecutionEngine(build_transitive_closure_program(edges), config)
    results = engine.evaluate()
    return time.perf_counter() - started, len(results["path"])


def _mean_batch_seconds(session: IncrementalSession, stream: UpdateStream) -> float:
    timings = [
        session.apply(inserts=batch.inserts, retracts=batch.retracts).seconds
        for batch in stream
    ]
    return sum(timings) / len(timings) if timings else 0.0


def run_incremental(
    scales: Optional[Sequence[Tuple[str, int, int]]] = None,
    batches: int = 5,
    batch_size: int = 10,
    config: Optional[EngineConfig] = None,
    seed: int = 2024,
) -> List[Dict[str, object]]:
    """Benchmark rows comparing incremental update latency to full recompute.

    ``scales`` is a list of (label, nodes, edges) graph sizes; the default
    covers a small and a 10k-edge graph (the acceptance scale).  Per scale,
    the session absorbs three chained update streams — insert-only
    (``retract_fraction=0``), retract-only (``1``) and mixed (``0.5``) — of
    ``batches`` batches each, ``batch_size`` mutations per batch.
    """
    if scales is None:
        scales = [("tc_2k", 3_000, 2_000), ("tc_10k", 12_000, 10_000)]
    config = config or EngineConfig.interpreted()

    rows: List[Dict[str, object]] = []
    for label, nodes, edge_count in scales:
        warm = edge_update_stream(
            nodes=nodes, initial_edges=edge_count, batches=0, batch_size=0,
            seed=seed,
        )
        session = IncrementalSession(
            build_transitive_closure_program(warm.initial["edge"]), config
        )
        session.refresh()
        full_seconds, derived = _timed_recompute(warm.initial["edge"], config)

        phases: List[float] = []
        live = warm.initial["edge"]
        for phase_index, fraction in enumerate((0.0, 1.0, 0.5)):
            stream = edge_update_stream(
                nodes=nodes, batches=batches, batch_size=batch_size,
                retract_fraction=fraction, seed=seed + phase_index + 1,
                start_edges=live,
            )
            phases.append(_mean_batch_seconds(session, stream))
            live = sorted(stream.live_after()["edge"])

        mixed_s = phases[2]
        rows.append({
            "workload": label,
            "edges": edge_count,
            "derived": derived,
            "full_recompute_s": full_seconds,
            "insert_batch_s": phases[0],
            "retract_batch_s": phases[1],
            "mixed_batch_s": mixed_s,
            "speedup": (full_seconds / mixed_s) if mixed_s else float("inf"),
        })
    return rows

"""Dictionary-encoded storage benchmark: interned vs raw-object evaluation.

Not a paper figure — this measures the repository's global symbol-interning
layer (:mod:`repro.relational.symbols`): the same program and facts
evaluated with ``EngineConfig(interning=False)`` (the raw-object engine,
exactly the PR-4 vectorized baseline, kept alive as the differential
oracle) and with the default dictionary-encoded configuration, plus a
memory comparison of the raw versus encoded storage footprint after a
streamed fact load.

Workloads are symbolic variants of the two acceptance benches: the
10k-edge transitive closure and the CSPA pointer analysis, with every
entity keyed by a **composite context-sensitive key** — a variable
qualified by a depth-4 call-string of ``(function, line)`` call sites, the
k-CFA value shape context-sensitive program analyses actually join on, and the one
dictionary encoding exists for: Python recomputes a composite key's hash
on every set/dict touch, while the encoded engine hashes it exactly once,
at interning time, and joins on dense ints from then on.  Labels are
freshly constructed per occurrence (as any parser/ingest pipeline would
produce them), so the raw engine retains one boxed key object per
occurrence while the encoded engine retains each distinct key once, in the
symbol table.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analyses.cspa import build_cspa_program
from repro.analyses.micro import build_transitive_closure_program
from repro.bench.measurement import MemoryMeasurement, measure_memory
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.relational.storage import StorageManager
from repro.relational.symbols import SymbolTable
from repro.workloads.graphs import random_edges
from repro.workloads.program_facts import CSPADataset, HttpdLikeGenerator

INTERNING_COLUMNS = (
    "workload", "codec", "seconds", "speedup", "equal",
    "retained_mb", "peak_mb", "mem_ratio",
)

#: Default evaluation scales.  The 10k-edge closure runs over 3000 entities
#: (an ~8M-row fixpoint — the memory-bound regime dictionary encoding is
#: built for: the derived set no longer fits in cache, so compact int
#: tuples beat pointer-chasing composite keys on every dedup pass); CSPA
#: uses the httpd-like generator's skewed fact graph.
TC_EDGES, TC_NODES = 10_000, 3_000
CSPA_TUPLES = 600
#: The memory workload: 10k edges over 2000 entities — every entity occurs
#: ~10 times, the duplication a parsed fact stream actually has.
MEM_EDGES, MEM_NODES = 10_000, 2_000


def context_key(i: int) -> Tuple[str, Tuple[Tuple[str, int], ...]]:
    """A freshly allocated composite entity key for node ``i``.

    A k-CFA-style qualified variable: the variable name plus a depth-4
    call-string of ``(function, line)`` call sites.  Built per call (never
    cached) so every occurrence is a distinct object, like rows coming off
    a parser; equal keys still compare/hash equal, so raw-mode set
    semantics are untouched.  Python re-walks this whole structure on every
    raw set/dict touch (tuple hashes are not cached); the encoded engine
    walks it exactly once, at interning time.
    """
    return (
        f"var_{i:06d}",
        (
            (f"fn_{i % 211}", 100 + i % 37),
            (f"fn_{(i * 13) % 211}", 100 + (i * 7) % 53),
            (f"fn_{(i * 29) % 211}", 100 + (i * 11) % 41),
            (f"fn_{(i * 43) % 211}", 100 + (i * 17) % 59),
        ),
    )


def symbolic_edges(edges: Sequence[Tuple[int, int]]) -> List[Tuple[object, object]]:
    return [(context_key(a), context_key(b)) for a, b in edges]


def tc_workload(edge_count: int = TC_EDGES, nodes: int = TC_NODES,
                seed: int = 2024) -> Tuple[str, Callable, str]:
    edges = random_edges(nodes, edge_count, seed=seed)
    return (
        f"tc_{edge_count // 1000}k_sym",
        lambda: build_transitive_closure_program(symbolic_edges(edges)),
        "path",
    )


def cspa_workload(tuples: int = CSPA_TUPLES, seed: int = 2024) -> Tuple[str, Callable, str]:
    dataset = HttpdLikeGenerator(seed=seed).cspa(tuples=tuples)

    def build():
        return build_cspa_program(
            CSPADataset(
                assign=symbolic_edges(dataset.assign),
                dereference=symbolic_edges(dataset.dereference),
            )
        )

    return (f"cspa_{tuples}_sym", build, "VAlias")


def raw_config() -> EngineConfig:
    """The PR-4 vectorized baseline: raw objects end-to-end."""
    return EngineConfig.interpreted().with_(executor="vectorized", interning=False)


def interned_config() -> EngineConfig:
    return EngineConfig.interpreted().with_(executor="vectorized")


def _measure_once(build_program: Callable, relation: str,
                  config: EngineConfig) -> Tuple[float, Set[Tuple[object, ...]]]:
    program = build_program()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        rows = ExecutionEngine(program, config).evaluate()[relation]
        seconds = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    return seconds, rows.to_set()


def _measure_pair(build_program: Callable, relation: str, repeat: int
                  ) -> Tuple[Tuple[float, Set], Tuple[float, Set]]:
    """Best-of-``repeat`` for raw and interned, with *interleaved* rounds.

    Each round measures the raw engine then the encoded one back-to-back,
    so slow machine drift (thermal throttling on shared CI boxes) hits
    both codecs alike instead of biasing whichever ran later.
    """
    best: Dict[str, Tuple[float, Set]] = {}
    for _ in range(max(1, repeat)):
        for codec, config in (("raw", raw_config()), ("interned", interned_config())):
            seconds, rows = _measure_once(build_program, relation, config)
            if codec not in best or seconds < best[codec][0]:
                best[codec] = (seconds, rows)
    return best["raw"], best["interned"]


# -- the storage-load memory comparison ---------------------------------------


def _edge_stream(edge_count: int, nodes: int, seed: int) -> Iterator[Tuple[object, object]]:
    """Freshly labelled edge rows, one at a time (an ingest pipeline)."""
    for a, b in random_edges(nodes, edge_count, seed=seed):
        yield (context_key(a), context_key(b))


def load_streamed(storage: StorageManager, relation: str,
                  rows: Iterable[Sequence[object]], chunk: int = 256) -> int:
    """Stream rows into Derived in chunks through the storage's codec.

    Encodes and absorbs one chunk at a time so transient raw rows become
    garbage immediately — both codecs see the same streaming shape, which
    is what makes their tracemalloc peaks comparable.
    """
    loaded = 0
    batch: List[Sequence[object]] = []
    symbols = storage.symbols
    for row in rows:
        batch.append(row)
        if len(batch) >= chunk:
            loaded += storage.absorb_rows(relation, symbols.intern_rows(batch))
            batch.clear()
    if batch:
        loaded += storage.absorb_rows(relation, symbols.intern_rows(batch))
    return loaded


def measure_load_memory(interning: bool, edge_count: int = MEM_EDGES,
                        nodes: int = MEM_NODES,
                        seed: int = 2024) -> Tuple[StorageManager, MemoryMeasurement]:
    """Load a streamed symbolic edge set; measure what the storage retains."""

    def load() -> StorageManager:
        storage = StorageManager(symbols=SymbolTable() if interning else None)
        storage.declare("edge", 2)
        load_streamed(storage, "edge", _edge_stream(edge_count, nodes, seed))
        return storage

    return measure_memory(load)


def run_interning(
    workloads: Optional[Sequence[Tuple[str, Callable, str]]] = None,
    repeat: int = 1,
    quick: bool = False,
    memory_scale: Optional[Tuple[int, int]] = None,
) -> List[Dict[str, object]]:
    """Benchmark rows: raw vs interned per workload, plus the load-memory pair.

    Each workload contributes two rows; the interned row's ``speedup``
    reads "dictionary-encoded over the raw-object baseline" and ``equal``
    asserts the decoded result set is bit-for-bit the raw engine's.  The
    ``*_load`` rows compare the storage footprint of the streamed 10k-edge
    load: ``mem_ratio`` is raw-retained over interned-retained (higher is
    better; the speed rows leave the memory columns empty).
    """
    if workloads is None:
        if quick:
            workloads = [
                tc_workload(edge_count=2_000, nodes=1_600),
                cspa_workload(tuples=150),
            ]
        else:
            workloads = [tc_workload(), cspa_workload()]
    if memory_scale is None:
        memory_scale = (2_000, 500) if quick else (MEM_EDGES, MEM_NODES)

    rows: List[Dict[str, object]] = []
    for workload, build_program, relation in workloads:
        (raw_seconds, raw_rows), (interned_seconds, interned_rows) = _measure_pair(
            build_program, relation, repeat
        )
        rows.append({
            "workload": workload, "codec": "raw", "seconds": raw_seconds,
            "speedup": 1.0, "equal": True,
            "retained_mb": None, "peak_mb": None, "mem_ratio": None,
        })
        rows.append({
            "workload": workload, "codec": "interned",
            "seconds": interned_seconds,
            "speedup": (
                raw_seconds / interned_seconds
                if interned_seconds else float("inf")
            ),
            "equal": interned_rows == raw_rows,
            "retained_mb": None, "peak_mb": None, "mem_ratio": None,
        })

    mem_edges, mem_nodes = memory_scale
    label = f"tc_{mem_edges // 1000}k_load"
    raw_storage, raw_memory = measure_load_memory(
        False, edge_count=mem_edges, nodes=mem_nodes
    )
    raw_count = raw_storage.cardinality("edge")
    del raw_storage
    interned_storage, interned_memory = measure_load_memory(
        True, edge_count=mem_edges, nodes=mem_nodes
    )
    equal = (
        interned_storage.cardinality("edge") == raw_count
    )
    del interned_storage
    for codec, memory, ratio in (
        ("raw", raw_memory, 1.0),
        (
            "interned", interned_memory,
            (
                raw_memory.retained_bytes / interned_memory.retained_bytes
                if interned_memory.retained_bytes else float("inf")
            ),
        ),
    ):
        rows.append({
            "workload": label, "codec": codec, "seconds": None,
            "speedup": None, "equal": equal,
            "retained_mb": round(memory.retained_mb(), 2),
            "peak_mb": round(memory.peak_mb(), 2),
            "mem_ratio": round(ratio, 2),
        })
    return rows

"""Measurement primitives shared by every table/figure driver."""

from __future__ import annotations

import gc
import math
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analyses.ordering import Ordering
from repro.analyses.registry import BenchmarkSpec, get_benchmark
from repro.core.config import EngineConfig
from repro.datalog.program import DatalogProgram
from repro.engine.engine import ExecutionEngine


@dataclass
class MeasurementResult:
    """One measured evaluation of one benchmark under one configuration."""

    benchmark: str
    configuration: str
    ordering: str
    seconds: float
    result_size: int
    iterations: int
    compilations: int
    compile_seconds: float
    runs: int = 1

    def as_row(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "ordering": self.ordering,
            "seconds": self.seconds,
            "result_size": self.result_size,
            "iterations": self.iterations,
            "compilations": self.compilations,
            "compile_seconds": self.compile_seconds,
        }


def measure_program(program: DatalogProgram, config: EngineConfig,
                    query_relation: str, benchmark: str = "",
                    ordering: str = "", repeat: int = 1) -> MeasurementResult:
    """Evaluate ``program`` ``repeat`` times; report the mean evaluation time.

    Every repetition builds a fresh engine over a copy of the program so that
    no derived state leaks between runs (the paper's JMH setup similarly
    re-evaluates from scratch per measurement iteration).
    """
    times: List[float] = []
    result_size = 0
    iterations = 0
    compilations = 0
    compile_seconds = 0.0
    for _ in range(max(1, repeat)):
        engine = ExecutionEngine(program.copy(), config)
        results = engine.evaluate()
        times.append(engine.profile.wall_seconds)
        result_size = results[query_relation].count()
        iterations = engine.profile.iteration_count()
        compilations = len(engine.profile.compile_events)
        compile_seconds = engine.profile.total_compile_seconds()
    return MeasurementResult(
        benchmark=benchmark,
        configuration=config.describe(),
        ordering=ordering,
        seconds=sum(times) / len(times),
        result_size=result_size,
        iterations=iterations,
        compilations=compilations,
        compile_seconds=compile_seconds,
        runs=len(times),
    )


def measure_benchmark(name: str, config: EngineConfig,
                      ordering: "Ordering | str" = Ordering.WRITTEN,
                      repeat: int = 1) -> MeasurementResult:
    """Build the named benchmark in the given ordering and measure it."""
    spec: BenchmarkSpec = get_benchmark(name)
    program = spec.build(ordering)
    return measure_program(
        program, config, spec.query_relation,
        benchmark=name, ordering=Ordering(ordering).value, repeat=repeat,
    )


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Speedup of ``seconds`` relative to ``baseline_seconds`` (>1 is faster)."""
    if seconds <= 0:
        return math.inf
    return baseline_seconds / seconds


@dataclass
class MemoryMeasurement:
    """One tracemalloc-based memory measurement of a callable.

    ``retained_bytes`` is what the call's result graph keeps alive after
    transient allocations are released (measured current-minus-baseline
    after a full gc pass) — for a storage load, the resident footprint of
    the loaded database.  ``peak_bytes`` is the tracemalloc high-water mark
    over the call, relative to the same baseline.
    """

    retained_bytes: int
    peak_bytes: int

    def retained_mb(self) -> float:
        return self.retained_bytes / (1024 * 1024)

    def peak_mb(self) -> float:
        return self.peak_bytes / (1024 * 1024)


#: Absolute high-water marks observed by in-flight :func:`measure_memory`
#: calls, innermost last.  A nested call must ``reset_peak`` to isolate its
#: own measurement, which clobbers the enclosing call's high-water mark —
#: so each call hands its observed absolute peak up one level on exit.
_active_peaks: List[int] = []


def measure_memory(fn: Callable[[], Any]) -> Tuple[Any, MemoryMeasurement]:
    """Run ``fn`` under ``tracemalloc``; returns ``(result, measurement)``.

    Used by the ``interning`` bench section to compare the resident
    footprint of raw-object versus dictionary-encoded storage: the builder
    should create its inputs *inside* ``fn`` (as an ingest pipeline would)
    so that only what the result retains is charged to it.  tracemalloc
    only sees Python-level allocations, but every structure being compared
    (tuples, sets, dicts, strings, symbol tables) allocates through it, so
    the *ratio* between two measurements is meaningful even though absolute
    numbers undercount interpreter overhead.  Calls nest: an inner
    measurement propagates its peak outward, so the outer ``peak_bytes``
    still covers the whole window despite the inner ``reset_peak``.
    """
    gc.collect()
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    _active_peaks.append(0)
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        result = fn()
        gc.collect()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        nested_peak = _active_peaks.pop()
        if not already_tracing:
            tracemalloc.stop()
    peak = max(peak, nested_peak)
    if _active_peaks:
        _active_peaks[-1] = max(_active_peaks[-1], peak)
    return result, MemoryMeasurement(
        retained_bytes=max(0, current - baseline),
        peak_bytes=max(0, peak - baseline),
    )

"""Measurement primitives shared by every table/figure driver."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analyses.ordering import Ordering
from repro.analyses.registry import BenchmarkSpec, get_benchmark
from repro.core.config import EngineConfig
from repro.datalog.program import DatalogProgram
from repro.engine.engine import ExecutionEngine


@dataclass
class MeasurementResult:
    """One measured evaluation of one benchmark under one configuration."""

    benchmark: str
    configuration: str
    ordering: str
    seconds: float
    result_size: int
    iterations: int
    compilations: int
    compile_seconds: float
    runs: int = 1

    def as_row(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "ordering": self.ordering,
            "seconds": self.seconds,
            "result_size": self.result_size,
            "iterations": self.iterations,
            "compilations": self.compilations,
            "compile_seconds": self.compile_seconds,
        }


def measure_program(program: DatalogProgram, config: EngineConfig,
                    query_relation: str, benchmark: str = "",
                    ordering: str = "", repeat: int = 1) -> MeasurementResult:
    """Evaluate ``program`` ``repeat`` times; report the mean evaluation time.

    Every repetition builds a fresh engine over a copy of the program so that
    no derived state leaks between runs (the paper's JMH setup similarly
    re-evaluates from scratch per measurement iteration).
    """
    times: List[float] = []
    result_size = 0
    iterations = 0
    compilations = 0
    compile_seconds = 0.0
    for _ in range(max(1, repeat)):
        engine = ExecutionEngine(program.copy(), config)
        results = engine.evaluate()
        times.append(engine.profile.wall_seconds)
        result_size = results[query_relation].count()
        iterations = engine.profile.iteration_count()
        compilations = len(engine.profile.compile_events)
        compile_seconds = engine.profile.total_compile_seconds()
    return MeasurementResult(
        benchmark=benchmark,
        configuration=config.describe(),
        ordering=ordering,
        seconds=sum(times) / len(times),
        result_size=result_size,
        iterations=iterations,
        compilations=compilations,
        compile_seconds=compile_seconds,
        runs=len(times),
    )


def measure_benchmark(name: str, config: EngineConfig,
                      ordering: "Ordering | str" = Ordering.WRITTEN,
                      repeat: int = 1) -> MeasurementResult:
    """Build the named benchmark in the given ordering and measure it."""
    spec: BenchmarkSpec = get_benchmark(name)
    program = spec.build(ordering)
    return measure_program(
        program, config, spec.query_relation,
        benchmark=name, ordering=Ordering(ordering).value, repeat=repeat,
    )


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Speedup of ``seconds`` relative to ``baseline_seconds`` (>1 is faster)."""
    if seconds <= 0:
        return math.inf
    return baseline_seconds / seconds

"""Shard-parallel benchmark: scaling of the sharded fixpoint vs one shard.

Not a paper figure — this measures the shard-parallel evaluation subsystem
on the reachability (transitive-closure) workload: the same program and
facts evaluated at 1, 2 and 4 shards per execution mode, with bit-for-bit
equality of the result sets verified against the 1-shard run.

``shards=1`` is the standard single-shard engine (sharding disabled by
definition), so each mode's ``speedup`` column reads as "shard-parallel
subsystem over the ordinary engine".  Two effects contribute: the worker
pool (real parallelism when the machine has cores to spare — note that on a
single-core machine the pool degrades to serial round-robin) and the shard
workers' one-shot plan compilation, which amortises over every round
because shard plans are frozen at setup (see
:class:`~repro.core.config.ShardingConfig.shard_backend`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.workloads.graphs import random_edges

PARALLEL_COLUMNS = (
    "workload", "mode", "shards", "strategy", "pool",
    "seconds", "speedup", "equal",
)

#: (label, base-configuration factory) per benchmarked execution mode.
DEFAULT_MODES: Tuple[Tuple[str, object], ...] = (
    ("interpreted", EngineConfig.interpreted),
    ("jit-bytecode", lambda: EngineConfig.jit("bytecode")),
    ("aot-facts", EngineConfig.aot),
)


def _measure(
    edges: Sequence[Tuple[int, int]],
    config: EngineConfig,
    repeat: int,
) -> Tuple[float, Set[Tuple[object, ...]], Optional[object]]:
    best_seconds = float("inf")
    result: Set[Tuple[object, ...]] = set()
    report = None
    for _ in range(max(1, repeat)):
        program = build_transitive_closure_program(edges)
        started = time.perf_counter()
        engine = ExecutionEngine(program, config)
        rows = engine.evaluate()["path"]
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            best_seconds = seconds
            result = rows
            report = engine.parallel_report
    return best_seconds, result, report


def run_parallel(
    nodes: int = 12_000,
    edge_count: int = 10_000,
    shard_counts: Sequence[int] = (1, 2, 4),
    modes: Optional[Sequence[Tuple[str, object]]] = None,
    repeat: int = 1,
    seed: int = 2024,
    quick: bool = False,
) -> List[Dict[str, object]]:
    """Benchmark rows for the shards scaling curve (per mode, per count).

    ``quick`` shrinks the workload to a 2k-edge graph, 1/2 shards and the
    interpreted mode only — the CI smoke configuration.
    """
    if quick:
        nodes, edge_count = 3_000, 2_000
        shard_counts = tuple(n for n in shard_counts if n <= 2) or (1, 2)
        modes = modes if modes is not None else DEFAULT_MODES[:1]
    modes = list(modes if modes is not None else DEFAULT_MODES)
    edges = random_edges(nodes, edge_count, seed=seed)
    workload = f"tc_{edge_count // 1000}k"

    rows: List[Dict[str, object]] = []
    for label, base_factory in modes:
        baseline_seconds: Optional[float] = None
        baseline_result: Optional[Set] = None
        for shards in shard_counts:
            config = EngineConfig.parallel(shards=shards, base=base_factory())
            seconds, result, report = _measure(edges, config, repeat)
            if baseline_seconds is None:
                baseline_seconds, baseline_result = seconds, result
            rows.append({
                "workload": workload,
                "mode": label,
                "shards": shards,
                "strategy": "/".join(report.strategies()) if report else "single",
                "pool": report.strata[-1].pool if report and report.strata else "-",
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds else float("inf"),
                "equal": result == baseline_result,
            })
    return rows

"""Governance overhead benchmark: governed vs ungoverned evaluation.

Not a paper figure — this measures the repository's resilience layer
(:mod:`repro.resilience`): the same 10k-edge transitive-closure fixpoint
evaluated two ways:

``off``
    ``EngineConfig.limits`` left ``None`` — the seed behaviour; every
    governance site resolves to the shared no-op governor.
``governed``
    A :class:`~repro.resilience.QueryLimits` with every bound set far
    beyond what the workload needs — a real :class:`QueryGovernor` runs
    its deadline/row/round checks at every stratum and iteration boundary
    without ever tripping.  This is the cost of *enforcing* limits; the
    acceptance gate (``benchmarks/bench_resilience.py``) holds it within
    2% of ``off``.

``overhead`` is the variant's best time over the ``off`` best time
(interleaved rounds, GC disabled — the same discipline as the telemetry
bench); ``equal`` asserts the governed result set is bit-for-bit the bare
one.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.resilience import QueryLimits
from repro.workloads.graphs import random_edges

RESILIENCE_COLUMNS = (
    "workload", "governance", "seconds", "overhead", "equal",
)

#: The acceptance scale: the telemetry bench's 10k-edge reachability graph
#: (12k nodes keeps the closure sparse enough to converge quickly while
#: still crossing thousands of governance checkpoints per run).
TC_EDGES, TC_NODES = 10_000, 12_000
QUICK_EDGES, QUICK_NODES = 2_000, 2_400

#: Variant order matters: ``off`` is the baseline the other divides by.
VARIANTS: Tuple[str, ...] = ("off", "governed")

#: Every bound set, none remotely reachable: the governor runs all of its
#: checks, the workload never trips one.
GENEROUS_LIMITS = QueryLimits(
    deadline_seconds=3600.0,
    max_rows=10**12,
    max_rounds=10**9,
    max_result_bytes=10**15,
)


def tc_workload(edge_count: int = TC_EDGES, nodes: int = TC_NODES,
                seed: int = 2024) -> Tuple[str, Callable, str]:
    edges = random_edges(nodes, edge_count, seed=seed)
    return (
        f"tc_{edge_count // 1000}k",
        lambda: build_transitive_closure_program(edges),
        "path",
    )


def variant_config(variant: str) -> EngineConfig:
    """The engine configuration of one governance variant.

    Both share the vectorized interpreted engine — the executor with the
    densest round structure and so the most governance checkpoints per
    second of work.
    """
    base = EngineConfig.interpreted().with_(executor="vectorized")
    if variant == "off":
        return base
    if variant == "governed":
        return base.with_(limits=GENEROUS_LIMITS)
    raise ValueError(f"unknown governance variant {variant!r}")


def _measure_once(build_program: Callable, relation: str,
                  config: EngineConfig) -> Tuple[float, Set]:
    """One evaluation through the public one-shot path."""
    program = build_program()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        database = Database(program, config)
        started = time.perf_counter()
        result = database.query(relation)
        rows = result.to_set()
        seconds = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    return seconds, rows


def measure_variants(build_program: Callable, relation: str, repeat: int,
                     ) -> Dict[str, Tuple[float, Set]]:
    """Best-of-``repeat`` per variant, with interleaved rounds.

    Each round measures every variant back-to-back so machine drift hits
    them alike instead of biasing whichever ran later.
    """
    best: Dict[str, Tuple[float, Set]] = {}
    for _ in range(max(1, repeat)):
        for variant in VARIANTS:
            seconds, rows = _measure_once(
                build_program, relation, variant_config(variant)
            )
            if variant not in best or seconds < best[variant][0]:
                best[variant] = (seconds, rows)
    return best


def overhead_samples(build_program: Callable, relation: str, rounds: int,
                     ) -> Tuple[List[float], bool]:
    """Per-round governed/ungoverned ratios (plus result equality).

    Each round times the two variants back-to-back, so slow machine drift
    (thermal, background load) cancels inside the ratio; the acceptance
    gate takes the median across rounds, which this workload holds far
    tighter than a best-of comparison of independently-noisy minima.  One
    untimed warm-up evaluation absorbs first-touch effects.
    """
    _measure_once(build_program, relation, variant_config("off"))
    ratios: List[float] = []
    equal = True
    for _ in range(max(1, rounds)):
        off_seconds, off_rows = _measure_once(
            build_program, relation, variant_config("off")
        )
        governed_seconds, governed_rows = _measure_once(
            build_program, relation, variant_config("governed")
        )
        ratios.append(governed_seconds / off_seconds)
        equal = equal and governed_rows == off_rows
    return ratios, equal


def run_resilience(
    workloads: Optional[Sequence[Tuple[str, Callable, str]]] = None,
    repeat: int = 1,
    quick: bool = False,
) -> List[Dict[str, object]]:
    """Benchmark rows: one per (workload, governance-variant) pair."""
    if workloads is None:
        if quick:
            workloads = [tc_workload(edge_count=QUICK_EDGES, nodes=QUICK_NODES)]
        else:
            workloads = [tc_workload()]

    rows: List[Dict[str, object]] = []
    for workload, build_program, relation in workloads:
        best = measure_variants(build_program, relation, repeat)
        base_seconds, base_rows = best["off"]
        for variant in VARIANTS:
            seconds, result_rows = best[variant]
            rows.append({
                "workload": workload,
                "governance": variant,
                "seconds": seconds,
                "overhead": (
                    seconds / base_seconds if base_seconds else float("inf")
                ),
                "equal": result_rows == base_rows,
            })
    return rows

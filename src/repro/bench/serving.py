"""Serving benchmark: N concurrent clients against the query server.

Not a paper figure — this measures the repository's serving layer
(:mod:`repro.server`): a transitive-closure database behind a
:class:`~repro.server.runtime.ServerThread`, loaded by ``clients``
concurrent wire clients issuing a mixed read/write workload:

* ``90/10`` — 90% snapshot reads of ``path``, 10% single-edge inserts;
* ``50/50`` — half and half, the writer-heavy stress case.

Reads are MVCC snapshot reads (they never block behind the writer's
fixpoint); writes funnel through the single-writer mutation queue.  Each
row reports wall-clock ``seconds`` for the whole run, aggregate
``ops_per_sec`` and the client-observed ``p50_ms``/``p99_ms`` request
latency.  ``errors`` counts structured error responses (0 under the
default block policy; the backpressure benches in ``tests/server``
exercise reject/shed).

:func:`run_mixed_load` is the reusable load generator — the smoke script
and the ``benchmarks/bench_serving.py`` acceptance gate drive it too.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.server.client import AsyncClient, ServerError
from repro.server.runtime import ServerThread
from repro.workloads.graphs import random_edges

SERVING_COLUMNS = (
    "workload", "clients", "mix", "requests", "seconds", "ops_per_sec",
    "p50_ms", "p99_ms", "errors",
)

#: Full scale matches the telemetry/incremental benches' 10k-edge closure.
TC_EDGES, TC_NODES = 10_000, 12_000
QUICK_EDGES, QUICK_NODES = 2_000, 2_400

CLIENT_COUNTS: Tuple[int, ...] = (1, 8, 32)
QUICK_CLIENT_COUNTS: Tuple[int, ...] = (1, 8)

#: ``mix`` label -> fraction of requests that are writes.
MIXES: Tuple[Tuple[str, float], ...] = (("90/10", 0.10), ("50/50", 0.50))

#: Fresh write targets start far above any workload node id, so every
#: insert is a genuinely new edge (forces real mutation work per write).
WRITE_NODE_BASE = 10_000_000


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` quantile by nearest-rank (samples need not be sorted)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


async def _client_load(
    host: str,
    port: int,
    client_id: int,
    requests: int,
    write_ratio: float,
    read_relation: str,
    write_relation: str,
    read_limit: Optional[int],
    latencies: List[float],
    errors: List[int],
) -> None:
    rng = random.Random(7_000 + client_id)
    client = await AsyncClient.connect(host, port)
    try:
        for index in range(requests):
            started = time.perf_counter()
            try:
                if rng.random() < write_ratio:
                    source = WRITE_NODE_BASE + client_id * 1_000_000 + index
                    await client.insert(write_relation, [(source, source + 1)])
                else:
                    await client.request({
                        "op": "query", "relation": read_relation,
                        "limit": read_limit,
                    })
            except ServerError:
                errors[0] += 1
            latencies.append(time.perf_counter() - started)
    finally:
        await client.close()


async def _run_clients(
    host: str, port: int, clients: int, requests: int, write_ratio: float,
    read_relation: str, write_relation: str, read_limit: Optional[int],
) -> Tuple[List[float], int]:
    latencies: List[float] = []
    errors = [0]
    await asyncio.gather(*(
        _client_load(
            host, port, client_id, requests, write_ratio,
            read_relation, write_relation, read_limit, latencies, errors,
        )
        for client_id in range(clients)
    ))
    return latencies, errors[0]


def run_mixed_load(
    host: str,
    port: int,
    clients: int,
    requests_per_client: int,
    write_ratio: float,
    read_relation: str = "path",
    write_relation: str = "edge",
    read_limit: Optional[int] = 32,
) -> Dict[str, object]:
    """Drive one mixed read/write load against a running server.

    Returns ``{"latencies": [...], "errors": N, "seconds": wall}`` — the
    latencies are per-request wall times in seconds, across all clients.
    """
    started = time.perf_counter()
    latencies, errors = asyncio.run(_run_clients(
        host, port, clients, requests_per_client, write_ratio,
        read_relation, write_relation, read_limit,
    ))
    return {
        "latencies": latencies,
        "errors": errors,
        "seconds": time.perf_counter() - started,
    }


def run_serving(
    repeat: int = 1,
    quick: bool = False,
    client_counts: Optional[Sequence[int]] = None,
    requests_per_client: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Benchmark rows: one per (clients, mix) pair.

    ``repeat`` keeps its harness meaning (best-of-N rounds per cell).
    """
    if quick:
        edge_count, nodes = QUICK_EDGES, QUICK_NODES
        counts = QUICK_CLIENT_COUNTS if client_counts is None else client_counts
        per_client = 40 if requests_per_client is None else requests_per_client
    else:
        edge_count, nodes = TC_EDGES, TC_NODES
        counts = CLIENT_COUNTS if client_counts is None else client_counts
        per_client = 60 if requests_per_client is None else requests_per_client
    workload = f"tc_{edge_count // 1000}k"

    rows: List[Dict[str, object]] = []
    program = build_transitive_closure_program(
        random_edges(nodes, edge_count, seed=2024)
    )
    database = Database(program)
    try:
        with ServerThread(database) as server:
            for clients in counts:
                for mix, write_ratio in MIXES:
                    best: Optional[Dict[str, object]] = None
                    for _ in range(max(1, repeat)):
                        outcome = run_mixed_load(
                            server.host, server.port, clients,
                            per_client, write_ratio,
                        )
                        if best is None or outcome["seconds"] < best["seconds"]:
                            best = outcome
                    latencies = best["latencies"]
                    total = len(latencies)
                    seconds = best["seconds"]
                    rows.append({
                        "workload": workload,
                        "clients": clients,
                        "mix": mix,
                        "requests": total,
                        "seconds": seconds,
                        "ops_per_sec": total / seconds if seconds else 0.0,
                        "p50_ms": percentile(latencies, 0.50) * 1_000,
                        "p99_ms": percentile(latencies, 0.99) * 1_000,
                        "errors": best["errors"],
                    })
    finally:
        database.close()
    return rows

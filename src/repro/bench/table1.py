"""Table I: average execution time (s) of interpreted Carac queries.

Four columns per benchmark: unindexed/indexed × unoptimized ("worst"
ordering) / hand-optimized ordering, all on the pure interpreter — the
baselines every speedup figure normalises against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analyses.ordering import Ordering
from repro.analyses.registry import TABLE1_BENCHMARKS, get_benchmark
from repro.bench.configurations import table1_configurations
from repro.bench.measurement import measure_benchmark


#: Benchmarks the paper only runs with indexes (their unindexed runtime is
#: prohibitive): CSDA and the CSPA sample.
INDEX_ONLY = ("csda", "cspa_20k", "cspa_full")


def run_table1(benchmarks: Optional[Sequence[str]] = None,
               repeat: int = 1) -> List[Dict[str, object]]:
    """Measure every Table I cell; returns one row per benchmark."""
    rows: List[Dict[str, object]] = []
    names = list(benchmarks) if benchmarks is not None else list(TABLE1_BENCHMARKS)
    configurations = table1_configurations()
    for name in names:
        row: Dict[str, object] = {"benchmark": name}
        for index_label, config in configurations.items():
            if index_label == "unindexed" and name in INDEX_ONLY:
                row["unindexed_unoptimized"] = float("nan")
                row["unindexed_optimized"] = float("nan")
                continue
            worst = measure_benchmark(name, config, Ordering.WORST, repeat=repeat)
            optimized = measure_benchmark(name, config, Ordering.OPTIMIZED, repeat=repeat)
            row[f"{index_label}_unoptimized"] = worst.seconds
            row[f"{index_label}_optimized"] = optimized.seconds
            row.setdefault("result_size", worst.result_size)
        rows.append(row)
    return rows


TABLE1_COLUMNS = (
    "benchmark",
    "unindexed_unoptimized",
    "unindexed_optimized",
    "indexed_unoptimized",
    "indexed_optimized",
)

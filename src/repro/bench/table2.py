"""Table II: comparison with the state of the art.

Columns: DLX-like, Soufflé-like interpreter / compiler / auto-tuned, and
Carac JIT (quotes backend, blocking, σπ⋈-granularity "full" mode — the
configuration §VI-D describes).  One row per long-running benchmark
(Inverse Functions, CSDA, CSPA).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analyses.ordering import Ordering
from repro.analyses.registry import TABLE2_BENCHMARKS, get_benchmark
from repro.baselines.dlx_like import DLXLikeEngine
from repro.baselines.souffle_like import SouffleLikeEngine
from repro.bench.measurement import measure_program
from repro.core.config import CompilationGranularity, EngineConfig


def run_table2(benchmarks: Optional[Sequence[str]] = None,
               ordering: "Ordering | str" = Ordering.WRITTEN,
               toolchain_seconds: float = 2.0,
               dlx_timeout_iterations: Optional[int] = None) -> List[Dict[str, object]]:
    """Measure every Table II cell; returns one row per benchmark."""
    rows: List[Dict[str, object]] = []
    names = list(benchmarks) if benchmarks is not None else list(TABLE2_BENCHMARKS)
    for name in names:
        spec = get_benchmark(name)
        row: Dict[str, object] = {"benchmark": name}

        dlx = DLXLikeEngine(use_indexes=True, timeout_iterations=dlx_timeout_iterations)
        dlx_result = dlx.run(spec.build(ordering))
        row["dlx"] = dlx_result.reported_seconds if dlx_result.finished else float("inf")

        for mode, label in (
            ("interpreter", "souffle_interpreter"),
            ("compiler", "souffle_compiler"),
            ("auto-tuned", "souffle_auto_tuned"),
        ):
            engine = SouffleLikeEngine(mode=mode, toolchain_seconds=toolchain_seconds)
            result = engine.run(spec.build(ordering))
            row[label] = result.reported_seconds

        carac_config = EngineConfig.jit(
            "quotes",
            asynchronous=False,
            granularity=CompilationGranularity.JOIN,
            use_indexes=True,
        )
        carac = measure_program(
            spec.build(ordering), carac_config, spec.query_relation,
            benchmark=name, ordering=Ordering(ordering).value,
        )
        row["carac_jit"] = carac.seconds
        rows.append(row)
    return rows


TABLE2_COLUMNS = (
    "benchmark", "dlx", "souffle_interpreter", "souffle_compiler",
    "souffle_auto_tuned", "carac_jit",
)

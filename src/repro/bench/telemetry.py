"""Telemetry overhead benchmark: traced vs no-op vs bare evaluation.

Not a paper figure — this measures the repository's observability layer
(:mod:`repro.telemetry`): the same 10k-edge transitive-closure fixpoint
evaluated three ways:

``off``
    ``EngineConfig.telemetry`` left ``None`` — the seed behaviour, no
    telemetry objects anywhere.
``noop``
    A :class:`~repro.telemetry.TelemetryConfig` with ``enabled=False`` —
    every instrumentation site runs, but resolves to the shared no-op
    tracer.  This is the cost of *having* the hooks; the acceptance gate
    (``benchmarks/bench_telemetry.py``) holds it within 2% of ``off``.
``traced``
    Full tracing into a ring-buffer sink plus a live metrics registry —
    real spans for every stratum, iteration and vectorized operator.  The
    gate holds this within 10% of ``off``.

``overhead`` is the variant's best time over the ``off`` best time
(interleaved rounds, GC disabled — the same discipline as the interning
bench); ``spans`` is the size of the captured trace and ``equal`` asserts
the traced result set is bit-for-bit the bare one.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analyses.micro import build_transitive_closure_program
from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.telemetry import TelemetryConfig, tracing
from repro.workloads.graphs import random_edges

TELEMETRY_COLUMNS = (
    "workload", "telemetry", "seconds", "overhead", "spans", "equal",
)

#: The acceptance scale: the incremental bench's 10k-edge reachability
#: graph (12k nodes keeps the closure sparse enough to converge quickly
#: while still measuring thousands of operator invocations per run).
TC_EDGES, TC_NODES = 10_000, 12_000
QUICK_EDGES, QUICK_NODES = 2_000, 2_400

#: Variant order matters: ``off`` is the baseline the others divide by.
VARIANTS: Tuple[str, ...] = ("off", "noop", "traced")


def tc_workload(edge_count: int = TC_EDGES, nodes: int = TC_NODES,
                seed: int = 2024) -> Tuple[str, Callable, str]:
    edges = random_edges(nodes, edge_count, seed=seed)
    return (
        f"tc_{edge_count // 1000}k",
        lambda: build_transitive_closure_program(edges),
        "path",
    )


def variant_config(variant: str) -> EngineConfig:
    """The engine configuration of one telemetry variant.

    All three share the vectorized interpreted engine — the executor with
    the densest instrumentation (a span per operator application) and so
    the worst case for overhead.
    """
    base = EngineConfig.interpreted().with_(executor="vectorized")
    if variant == "off":
        return base
    if variant == "noop":
        return base.with_(telemetry=TelemetryConfig(enabled=False))
    if variant == "traced":
        return base.with_(telemetry=tracing(ring=8))
    raise ValueError(f"unknown telemetry variant {variant!r}")


def _measure_once(build_program: Callable, relation: str,
                  config: EngineConfig) -> Tuple[float, Set, int]:
    """One evaluation through the public one-shot path; returns spans too."""
    program = build_program()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        database = Database(program, config)
        started = time.perf_counter()
        result = database.query(relation)
        rows = result.to_set()
        seconds = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    trace = result.trace()
    return seconds, rows, 0 if trace is None else len(trace)


def measure_variants(build_program: Callable, relation: str, repeat: int,
                     ) -> Dict[str, Tuple[float, Set, int]]:
    """Best-of-``repeat`` per variant, with interleaved rounds.

    Each round measures every variant back-to-back so machine drift hits
    them alike instead of biasing whichever ran later.
    """
    best: Dict[str, Tuple[float, Set, int]] = {}
    for _ in range(max(1, repeat)):
        for variant in VARIANTS:
            seconds, rows, spans = _measure_once(
                build_program, relation, variant_config(variant)
            )
            if variant not in best or seconds < best[variant][0]:
                best[variant] = (seconds, rows, spans)
    return best


def run_telemetry(
    workloads: Optional[Sequence[Tuple[str, Callable, str]]] = None,
    repeat: int = 1,
    quick: bool = False,
) -> List[Dict[str, object]]:
    """Benchmark rows: one per (workload, telemetry-variant) pair."""
    if workloads is None:
        if quick:
            workloads = [tc_workload(edge_count=QUICK_EDGES, nodes=QUICK_NODES)]
        else:
            workloads = [tc_workload()]

    rows: List[Dict[str, object]] = []
    for workload, build_program, relation in workloads:
        best = measure_variants(build_program, relation, repeat)
        base_seconds, base_rows, _ = best["off"]
        for variant in VARIANTS:
            seconds, result_rows, spans = best[variant]
            rows.append({
                "workload": workload,
                "telemetry": variant,
                "seconds": seconds,
                "overhead": (
                    seconds / base_seconds if base_seconds else float("inf")
                ),
                "spans": spans,
                "equal": result_rows == base_rows,
            })
    return rows

"""Vectorized-executor benchmark: batch vs tuple-at-a-time sub-queries.

Not a paper figure — this measures the repository's vectorized batch
execution layer (:mod:`repro.relational.columnar`): the same program and
facts evaluated with the ``pushdown`` executor (the tuple-at-a-time binding
recursion, which doubles as the correctness oracle) and with
``EngineConfig.with_(executor="vectorized")``, per workload and execution
mode, with bit-for-bit equality of the result sets verified per row.

Workloads are the two acceptance benches: the 10k-edge transitive closure
(the shared yardstick of the incremental and parallel subsystems) and the
CSPA pointer analysis (three mutually recursive relations — the paper's
Fig. 1 program).
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analyses.cspa import build_cspa_program
from repro.analyses.micro import build_transitive_closure_program
from repro.core.config import EngineConfig
from repro.engine.engine import ExecutionEngine
from repro.workloads.datasets import get_dataset
from repro.workloads.graphs import random_edges

VECTORIZED_COLUMNS = (
    "workload", "mode", "executor", "seconds", "speedup", "equal",
)

#: (label, base-configuration factory) per benchmarked execution mode.
DEFAULT_MODES: Tuple[Tuple[str, object], ...] = (
    ("interpreted", EngineConfig.interpreted),
    ("jit-lambda", lambda: EngineConfig.jit("lambda")),
    ("aot-facts", EngineConfig.aot),
)


def tc_workload(edge_count: int = 10_000, nodes: int = 12_000,
                seed: int = 2024) -> Tuple[str, Callable, str]:
    edges = random_edges(nodes, edge_count, seed=seed)
    return (
        f"tc_{edge_count // 1000}k",
        lambda: build_transitive_closure_program(edges),
        "path",
    )


def cspa_workload(scale: str = "cspa_small") -> Tuple[str, Callable, str]:
    dataset = get_dataset(scale)
    return (scale, lambda: build_cspa_program(dataset), "VAlias")


def _measure(build_program: Callable, relation: str, config: EngineConfig,
             repeat: int) -> Tuple[float, Set[Tuple[object, ...]]]:
    best_seconds = float("inf")
    result: Set[Tuple[object, ...]] = set()
    for _ in range(max(1, repeat)):
        program = build_program()
        # The executor comparison allocates millions of short-lived tuples;
        # collector pauses would otherwise dominate the shorter (vectorized)
        # runs and turn the speedup ratio into noise.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            rows = ExecutionEngine(program, config).evaluate()[relation]
            seconds = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
        if seconds < best_seconds:
            best_seconds = seconds
            result = rows.to_set()
    return best_seconds, result


def run_vectorized(
    workloads: Optional[Sequence[Tuple[str, Callable, str]]] = None,
    modes: Optional[Sequence[Tuple[str, object]]] = None,
    repeat: int = 1,
    quick: bool = False,
) -> List[Dict[str, object]]:
    """Benchmark rows: pushdown vs vectorized per workload and mode.

    Each mode contributes two rows; the vectorized row's ``speedup`` reads
    "batch executor over the tuple-at-a-time oracle" and ``equal`` asserts
    the result sets are bit-for-bit identical.  ``quick`` shrinks to a
    2k-edge closure and the tiny CSPA dataset, interpreted mode only — the
    CI smoke configuration.
    """
    if workloads is None:
        if quick:
            workloads = [tc_workload(edge_count=2_000, nodes=3_000),
                         cspa_workload("cspa_tiny")]
        else:
            workloads = [tc_workload(), cspa_workload()]
    if modes is None:
        modes = DEFAULT_MODES[:1] if quick else DEFAULT_MODES

    rows: List[Dict[str, object]] = []
    for workload, build_program, relation in workloads:
        for label, base_factory in modes:
            base = base_factory()
            pushdown_seconds, pushdown_rows = _measure(
                build_program, relation, base, repeat
            )
            vectorized_seconds, vectorized_rows = _measure(
                build_program, relation,
                base.with_(executor="vectorized"), repeat,
            )
            rows.append({
                "workload": workload, "mode": label, "executor": "pushdown",
                "seconds": pushdown_seconds, "speedup": 1.0, "equal": True,
            })
            rows.append({
                "workload": workload, "mode": label, "executor": "vectorized",
                "seconds": vectorized_seconds,
                "speedup": (
                    pushdown_seconds / vectorized_seconds
                    if vectorized_seconds else float("inf")
                ),
                "equal": vectorized_rows == pushdown_rows,
            })
    return rows

"""Adaptive Metaprogramming core: the paper's primary contribution.

This package holds everything that is *not* a generic Datalog substrate: the
runtime join-order optimizer (§IV), the staged code-generation backends
(§V-C), the compilation manager with synchronous and asynchronous modes, the
freshness test, the JIT executor that ties them together at IROp safe points,
and the ahead-of-time ("macro") optimization path (§VI-C).
"""

from repro.core.aot import apply_aot_optimization
from repro.core.backends import (
    Backend,
    BytecodeBackend,
    CompiledArtifact,
    IRGeneratorBackend,
    LambdaBackend,
    QuotesBackend,
    available_backends,
    get_backend,
)
from repro.core.compilation import CompilationEvent, CompilationManager
from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
)
from repro.core.executor import IRExecutor
from repro.core.freshness import FreshnessTest
from repro.core.join_order import (
    JoinOrderOptimizer,
    OrderingDecision,
    no_index_view,
    storage_cardinality_view,
    storage_index_view,
    zero_cardinality_view,
)
from repro.core.profile import RuntimeProfile

__all__ = [
    "AOTSortMode",
    "Backend",
    "BytecodeBackend",
    "CompilationEvent",
    "CompilationGranularity",
    "CompilationManager",
    "CompiledArtifact",
    "EngineConfig",
    "ExecutionMode",
    "FreshnessTest",
    "IRExecutor",
    "IRGeneratorBackend",
    "JoinOrderOptimizer",
    "LambdaBackend",
    "OrderingDecision",
    "QuotesBackend",
    "RuntimeProfile",
    "apply_aot_optimization",
    "available_backends",
    "get_backend",
    "no_index_view",
    "storage_cardinality_view",
    "storage_index_view",
    "zero_cardinality_view",
]

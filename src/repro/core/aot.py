"""Ahead-of-time ("macro") optimization (paper §VI-C).

Carac can apply the same join-order optimization before execution begins —
at Carac compile time via macros — using whatever information is available
at that point: only the rule schema (selectivity heuristics), or the rules
plus the cardinalities of the facts already loaded.  The optimizer may also
inject the online IRGenerator re-sorter into the generated code so that the
ahead-of-time order keeps being refined at runtime; because the runtime
re-sort uses a comparison sort over an already mostly-sorted input, presorting
offline makes the online step cheaper even when it is not exactly right.

In this reproduction the "macro expansion" is a pre-execution rewrite of the
IROp tree: every σπ⋈ leaf's plan is replaced by the optimized order.  Whether
the online re-sorter also runs is controlled by ``EngineConfig.aot_online``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import AOTSortMode
from repro.core.join_order import (
    JoinOrderOptimizer,
    no_index_view,
    storage_cardinality_view,
    storage_index_view,
    zero_cardinality_view,
)
from repro.core.profile import RuntimeProfile
from repro.ir.ops import AggregateOp, IROp, JoinProjectOp, ProgramOp, walk
from repro.relational.storage import StorageManager


def apply_aot_optimization(
    tree: ProgramOp,
    optimizer: JoinOrderOptimizer,
    storage: Optional[StorageManager],
    sort_mode: AOTSortMode,
    use_indexes: bool = True,
    profile: Optional[RuntimeProfile] = None,
) -> int:
    """Reorder every sub-query plan in ``tree`` in place; returns plans changed.

    ``sort_mode`` decides what the optimizer is allowed to see:

    * ``RULES_ONLY`` — no cardinalities (every relation counts as empty), so
      ordering is driven purely by selectivity and Cartesian-product
      avoidance.  This models "Macro Rules" in Fig. 10.
    * ``FACTS_AND_RULES`` — live cardinalities of the initially loaded facts
      (and indexes, when enabled).  This models "Macro Facts+rules".
    """
    if sort_mode == AOTSortMode.NONE:
        return 0

    if sort_mode == AOTSortMode.FACTS_AND_RULES:
        if storage is None:
            raise ValueError("FACTS_AND_RULES ahead-of-time sorting needs storage")
        cardinalities = storage_cardinality_view(storage)
        indexes = storage_index_view(storage) if use_indexes else no_index_view
    else:
        cardinalities = zero_cardinality_view
        indexes = no_index_view

    changed = 0
    for node in walk(tree):
        if isinstance(node, (JoinProjectOp, AggregateOp)):
            optimized, decision = optimizer.optimize_plan(node.plan, cardinalities, indexes)
            node.plan = optimized
            if profile is not None:
                rule_name = getattr(node.plan, "rule_name", "")
                profile.record_reorder(node.node_id, rule_name, "aot", decision)
            if decision.changed:
                changed += 1
    return changed

"""Compilation targets (paper §V-C).

Four backends turn an (already join-ordered) set of sub-query plans into an
executable artifact, trading expressiveness, safety and compilation overhead
against each other exactly as the paper describes:

* :class:`QuotesBackend` — generate Python source and invoke the host
  compiler (``compile`` on text).  Most expressive/safe, highest overhead,
  supports "snippet" compilation with continuations back to the interpreter.
* :class:`BytecodeBackend` — construct a Python ``ast`` and compile it
  directly, skipping the textual front end.  Cheaper, not revertible.
* :class:`LambdaBackend` — stitch precompiled closures; no compiler
  invocation at all, but limited to the predefined combinators.
* :class:`IRGeneratorBackend` — regenerate the IR (the reordered plans) and
  hand it back to the interpreter; minimal overhead, minimal specialization.
"""

from repro.core.backends.base import Backend, CompiledArtifact, get_backend, available_backends
from repro.core.backends.lambda_backend import LambdaBackend
from repro.core.backends.quotes import QuotesBackend
from repro.core.backends.bytecode import BytecodeBackend
from repro.core.backends.irgen import IRGeneratorBackend

__all__ = [
    "Backend",
    "BytecodeBackend",
    "CompiledArtifact",
    "IRGeneratorBackend",
    "LambdaBackend",
    "QuotesBackend",
    "available_backends",
    "get_backend",
]

"""Backend interface and compiled-artifact container."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.operators import JoinPlan
from repro.relational.relation import Row
from repro.relational.storage import StorageManager

#: A compiled artifact is callable on the live storage and returns head rows.
ArtifactFunction = Callable[[StorageManager], Set[Row]]


@dataclass
class CompiledArtifact:
    """The result of one backend compilation.

    ``function`` evaluates the compiled sub-queries against whatever the
    storage contains *at call time* (generated code always re-fetches the
    relation copies), so one artifact stays valid across iterations until the
    freshness test decides its join order is stale.
    """

    function: ArtifactFunction
    backend: str
    plans: Tuple[JoinPlan, ...]
    compile_seconds: float
    mode: str = "full"
    node_id: Optional[int] = None

    def __call__(self, storage: StorageManager) -> Set[Row]:
        return self.function(storage)


class Backend(ABC):
    """A compilation target: turns ordered plans into a callable artifact."""

    #: Short name used in configuration and result tables.
    name: str = "abstract"
    #: Whether compiled code can defer control back to the interpreter
    #: (snippet mode / de-optimization).  True for quotes, false for bytecode.
    revertible: bool = False
    #: Whether invoking this backend involves the host compiler at runtime.
    invokes_compiler: bool = False

    @abstractmethod
    def compile_plans(
        self,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> CompiledArtifact:
        """Compile ``plans`` (already join-ordered) into an artifact.

        ``mode`` is ``"full"`` (compile the whole subtree) or ``"snippet"``
        (compile only this node's own logic and splice ``continuations`` — one
        callable per plan — back to the interpreter).  Backends that do not
        support snippets fall back to full compilation.
        """

    def _index_view(self, storage: StorageManager, use_indexes: bool):
        if not use_indexes:
            return lambda relation, column: False
        return lambda relation, column: column in storage.registered_indexes(relation)

    @staticmethod
    def _timed(fn: Callable[[], ArtifactFunction]) -> Tuple[ArtifactFunction, float]:
        start = time.perf_counter()
        artifact = fn()
        return artifact, time.perf_counter() - start


_REGISTRY: Dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    _REGISTRY[name] = factory


def get_backend(name: str) -> Backend:
    """Instantiate a backend by configuration name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_backends() -> List[str]:
    return sorted(_REGISTRY)

"""The Bytecode backend: build an ``ast`` tree and compile it directly.

The reproduction's stand-in for Carac's direct JVM-bytecode generation via
the Class-File API: no textual front end, no parsing — the syntax tree is
constructed programmatically and handed straight to ``compile()``.  Cheaper
to invoke than the Quotes backend, but the artifact cannot defer control back
to the interpreter (no snippet mode) and nothing validates the construction
until the generated code runs.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence, Set

from repro.core.backends.base import (
    ArtifactFunction,
    Backend,
    CompiledArtifact,
    register_backend,
)
from repro.core.codegen.pyast import build_union_module_ast
from repro.core.codegen.steps import lower_plan
from repro.relational.operators import JoinPlan
from repro.relational.storage import DatabaseKind, StorageManager


class BytecodeBackend(Backend):
    """Direct syntax-tree construction; performance over ergonomics."""

    name = "bytecode"
    revertible = False
    invokes_compiler = True

    def __init__(self) -> None:
        self._module_counter = 0

    def compile_plans(
        self,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> CompiledArtifact:
        # Bytecode generation has no snippet mode: once compiled, control
        # stays inside the generated code (paper §V-C2); fall back to full.
        index_view = self._index_view(storage, use_indexes)
        self._module_counter += 1
        safe = "".join(ch if ch.isalnum() else "_" for ch in label)
        module_name = f"bytecode_{safe}_{self._module_counter}"

        def build() -> ArtifactFunction:
            lowered = [lower_plan(plan, index_view, use_indexes) for plan in plans]
            module, driver_name = build_union_module_ast(
                lowered, module_name, symbols=storage.symbols
            )
            code = compile(module, f"<carac-bytecode:{module_name}>", "exec")
            namespace = {"DatabaseKind": DatabaseKind}
            exec(code, namespace)  # noqa: S102 - deliberate runtime codegen
            return namespace[driver_name]

        function, seconds = self._timed(build)
        return CompiledArtifact(
            function=function,
            backend=self.name,
            plans=tuple(plans),
            compile_seconds=seconds,
            mode="full",
        )


register_backend(BytecodeBackend.name, BytecodeBackend)

"""The IRGenerator backend: regenerate the IR, keep interpreting.

The lightest-weight target (paper §V-C4): "compilation" is nothing more than
handing the reordered plans back to the interpreter, so the overhead of
applying the optimization is essentially the cost of the reordering itself.
The flip side is that no specialization happens — the generic sub-query
evaluator still pays its interpretation overhead per tuple.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.core.backends.base import (
    ArtifactFunction,
    Backend,
    CompiledArtifact,
    register_backend,
)
from repro.relational.operators import JoinPlan, SubqueryEvaluator
from repro.relational.relation import Row
from repro.relational.storage import StorageManager


class IRGeneratorBackend(Backend):
    """Reorder the IR on the fly and re-interpret it."""

    name = "irgen"
    revertible = True
    invokes_compiler = False

    def __init__(self, evaluator_style: str = "push") -> None:
        self.evaluator_style = evaluator_style

    def compile_plans(
        self,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> CompiledArtifact:
        plan_tuple = tuple(plans)
        style = self.evaluator_style

        def build() -> ArtifactFunction:
            def run(run_storage: StorageManager) -> Set[Row]:
                evaluator = SubqueryEvaluator(run_storage, style)
                out: Set[Row] = set()
                for plan in plan_tuple:
                    out |= evaluator.evaluate(plan)
                return out

            return run

        function, seconds = self._timed(build)
        return CompiledArtifact(
            function=function,
            backend=self.name,
            plans=plan_tuple,
            compile_seconds=seconds,
            mode="full",
        )


register_backend(IRGeneratorBackend.name, IRGeneratorBackend)

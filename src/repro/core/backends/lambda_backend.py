"""The Lambda backend: stitch precompiled closures, no runtime compiler.

Carac's lambda backend composes higher-order functions that were compiled
when Carac itself was compiled; only the *composition* happens at runtime.
The Python equivalent below builds, per body literal, a small specialized
step closure chosen from a fixed set of combinators written here (the
"precompiled procedures"), then chains them.  No ``compile()`` call happens
at query runtime, the cost of invoking the backend is just closure
construction, and the specialization is limited to what the combinators
support — exactly the trade-off described in §V-C3.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.terms import Constant, Term, Variable
from repro.core.backends.base import (
    ArtifactFunction,
    Backend,
    CompiledArtifact,
    register_backend,
)
from repro.relational.operators import JoinPlan
from repro.relational.relation import Row
from repro.relational.storage import DatabaseKind, StorageManager
from repro.relational.symbols import IDENTITY

#: A step closure maps a stream of partial binding environments (tuples keyed
#: by slot index) to an extended stream.
Environment = List[Any]
StepFunction = Callable[[StorageManager, Iterator[Environment]], Iterator[Environment]]


class _SlotAllocator:
    """Assigns each logic variable a dense slot in the environment list."""

    def __init__(self) -> None:
        self.slots: Dict[Variable, int] = {}

    def slot(self, variable: Variable) -> int:
        if variable not in self.slots:
            self.slots[variable] = len(self.slots)
        return self.slots[variable]

    def known(self, variable: Variable) -> Optional[int]:
        return self.slots.get(variable)

    def count(self) -> int:
        return len(self.slots)


def _value_getter(term: Term, slots: _SlotAllocator) -> Callable[[Environment], Any]:
    """Precompile a term into a *storage-domain* environment accessor.

    Environments hold storage-domain values (dense symbol ids under
    dictionary encoding), and plan constants were interned at plan-encode
    time, so membership probes and head projections over variables and
    constants need no translation.  Expression terms must not be compiled
    here — they compute raw values; see :func:`_raw_value_getter` /
    :func:`_stored_value_getter`.
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda env: value
    if isinstance(term, Variable):
        index = slots.known(term)
        if index is None:
            raise KeyError(f"variable {term.name!r} unbound when building lambda step")
        return lambda env: env[index]
    raise TypeError(f"cannot compile stored accessor for {term!r}")


def _raw_value_getter(term: Term, slots: _SlotAllocator,
                      symbols) -> Callable[[Environment], Any]:
    """Precompile a term into a *raw-domain* accessor (builtin operands)."""
    if isinstance(term, Constant):
        value = symbols.resolve(term.value)
        return lambda env: value
    if isinstance(term, Variable):
        index = slots.known(term)
        if index is None:
            raise KeyError(f"variable {term.name!r} unbound when building lambda step")
        if symbols.identity:
            return lambda env: env[index]
        resolve = symbols.resolve
        return lambda env: resolve(env[index])
    # Arithmetic expression: recurse.
    left = _raw_value_getter(term.left, slots, symbols)  # type: ignore[union-attr]
    right = _raw_value_getter(term.right, slots, symbols)  # type: ignore[union-attr]
    op = term.op  # type: ignore[union-attr]
    import operator as _operator

    ops = {
        "+": _operator.add, "-": _operator.sub, "*": _operator.mul,
        "//": _operator.floordiv, "/": _operator.truediv, "%": _operator.mod,
        "min": min, "max": max,
    }
    func = ops[op]
    return lambda env: func(left(env), right(env))


def _stored_value_getter(term: Term, slots: _SlotAllocator,
                         symbols) -> Callable[[Environment], Any]:
    """Storage-domain accessor, re-interning computed (expression) values."""
    if isinstance(term, (Constant, Variable)):
        return _value_getter(term, slots)
    raw = _raw_value_getter(term, slots, symbols)
    if symbols.identity:
        return raw
    intern = symbols.intern
    return lambda env: intern(raw(env))


def _atom_step(atom: Atom, kind: DatabaseKind, slots: _SlotAllocator,
               use_indexes: bool, indexed_columns: Tuple[int, ...]) -> StepFunction:
    """Combinator: join the stream with one relation copy."""
    constant_checks: List[Tuple[int, Any]] = []
    bound_checks: List[Tuple[int, int]] = []       # (column, env slot)
    new_bindings: List[Tuple[int, int]] = []       # (env slot, column)
    intra_checks: List[Tuple[int, int]] = []
    first_position: Dict[Variable, int] = {}
    for column, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constant_checks.append((column, term.value))
        elif isinstance(term, Variable):
            existing = slots.known(term)
            if existing is not None:
                bound_checks.append((column, existing))
            elif term in first_position:
                intra_checks.append((first_position[term], column))
            else:
                first_position[term] = column
                new_bindings.append((slots.slot(term), column))
        else:  # pragma: no cover
            raise TypeError(f"unexpected term {term!r} in body atom")

    lookup_column: Optional[int] = None
    lookup_constant: Optional[Any] = None
    lookup_slot: Optional[int] = None
    if use_indexes:
        for column, value in constant_checks:
            if column in indexed_columns:
                lookup_column, lookup_constant = column, value
                break
        if lookup_column is None:
            for column, slot in bound_checks:
                if column in indexed_columns:
                    lookup_column, lookup_slot = column, slot
                    break
    remaining_constants = [(c, v) for c, v in constant_checks if c != lookup_column]
    remaining_bound = [(c, s) for c, s in bound_checks if c != lookup_column]
    relation_name = atom.relation
    slot_count_after = slots.count()

    def step(storage: StorageManager, stream: Iterator[Environment]) -> Iterator[Environment]:
        relation = storage.relation(relation_name, kind)
        for env in stream:
            if lookup_column is not None:
                probe_value = lookup_constant if lookup_slot is None else env[lookup_slot]
                candidates: Iterable[Row] = relation.lookup(lookup_column, probe_value)
            elif remaining_constants or remaining_bound:
                constraints = {c: v for c, v in remaining_constants}
                constraints.update({c: env[s] for c, s in remaining_bound})
                candidates = relation.probe(constraints)
            else:
                candidates = relation.rows()
            for row in candidates:
                ok = True
                for column, value in remaining_constants:
                    if row[column] != value:
                        ok = False
                        break
                if ok:
                    for column, slot in remaining_bound:
                        if row[column] != env[slot]:
                            ok = False
                            break
                if ok:
                    for earlier, later in intra_checks:
                        if row[earlier] != row[later]:
                            ok = False
                            break
                if not ok:
                    continue
                extended = list(env)
                if len(extended) < slot_count_after:
                    extended.extend([None] * (slot_count_after - len(extended)))
                for slot, column in new_bindings:
                    extended[slot] = row[column]
                yield extended

    return step


def _negation_step(atom: Atom, slots: _SlotAllocator) -> StepFunction:
    getters = [_value_getter(term, slots) for term in atom.terms]
    relation_name = atom.relation

    def step(storage: StorageManager, stream: Iterator[Environment]) -> Iterator[Environment]:
        relation = storage.relation(relation_name, DatabaseKind.DERIVED)
        for env in stream:
            if tuple(getter(env) for getter in getters) not in relation:
                yield env

    return step


def _comparison_step(comparison: Comparison, slots: _SlotAllocator,
                     symbols=IDENTITY) -> StepFunction:
    left = _raw_value_getter(comparison.left, slots, symbols)
    right = _raw_value_getter(comparison.right, slots, symbols)
    import operator as _operator

    ops = {
        "<": _operator.lt, "<=": _operator.le, ">": _operator.gt,
        ">=": _operator.ge, "==": _operator.eq, "!=": _operator.ne,
    }
    func = ops[comparison.op]

    def step(storage: StorageManager, stream: Iterator[Environment]) -> Iterator[Environment]:
        for env in stream:
            if func(left(env), right(env)):
                yield env

    return step


def _assignment_step(assignment: Assignment, slots: _SlotAllocator,
                     symbols=IDENTITY) -> StepFunction:
    expression = _raw_value_getter(assignment.expression, slots, symbols)
    existing = slots.known(assignment.target)
    if existing is not None:
        target_slot = existing
        check_only = True
    else:
        target_slot = slots.slot(assignment.target)
        check_only = False
    slot_count_after = slots.count()
    resolve = symbols.resolve
    intern = symbols.intern

    def step(storage: StorageManager, stream: Iterator[Environment]) -> Iterator[Environment]:
        for env in stream:
            value = expression(env)
            if check_only:
                if resolve(env[target_slot]) == value:
                    yield env
                continue
            extended = list(env)
            if len(extended) < slot_count_after:
                extended.extend([None] * (slot_count_after - len(extended)))
            extended[target_slot] = intern(value)
            yield extended

    return step


def build_plan_pipeline(plan: JoinPlan, use_indexes: bool,
                        indexed_columns: Callable[[str], Tuple[int, ...]],
                        symbols=IDENTITY) -> Callable[[StorageManager], Set[Row]]:
    """Stitch the combinators for one plan into a single callable."""
    slots = _SlotAllocator()
    steps: List[StepFunction] = []
    for source in plan.sources:
        literal = source.literal
        if isinstance(literal, Atom) and not literal.negated:
            steps.append(
                _atom_step(
                    literal,
                    source.kind or DatabaseKind.DERIVED,
                    slots,
                    use_indexes,
                    indexed_columns(literal.relation),
                )
            )
        elif isinstance(literal, Atom):
            steps.append(_negation_step(literal, slots))
        elif isinstance(literal, Comparison):
            steps.append(_comparison_step(literal, slots, symbols))
        elif isinstance(literal, Assignment):
            steps.append(_assignment_step(literal, slots, symbols))
        else:  # pragma: no cover
            raise TypeError(f"unsupported literal {literal!r}")
    head_getters = [_stored_value_getter(term, slots, symbols) for term in plan.head_terms]

    def run(storage: StorageManager) -> Set[Row]:
        stream: Iterator[Environment] = iter(([],))
        for step in steps:
            stream = step(storage, stream)
        return {tuple(getter(env) for getter in head_getters) for env in stream}

    return run


class LambdaBackend(Backend):
    """Compose precompiled combinators; no compiler invocation at runtime."""

    name = "lambda"
    revertible = True
    invokes_compiler = False

    def compile_plans(
        self,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> CompiledArtifact:
        def indexed_columns(relation: str) -> Tuple[int, ...]:
            if not use_indexes:
                return ()
            return storage.registered_indexes(relation)

        def build() -> ArtifactFunction:
            if mode == "snippet" and continuations is not None:
                snippet_continuations = tuple(continuations)

                def snippet(run_storage: StorageManager) -> Set[Row]:
                    out: Set[Row] = set()
                    for continuation in snippet_continuations:
                        out |= continuation(run_storage)
                    return out

                return snippet

            pipelines = [
                build_plan_pipeline(
                    plan, use_indexes, indexed_columns, symbols=storage.symbols
                )
                for plan in plans
            ]

            def full(run_storage: StorageManager) -> Set[Row]:
                out: Set[Row] = set()
                for pipeline in pipelines:
                    out |= pipeline(run_storage)
                return out

            return full

        function, seconds = self._timed(build)
        return CompiledArtifact(
            function=function,
            backend=self.name,
            plans=tuple(plans),
            compile_seconds=seconds,
            mode=mode,
        )


register_backend(LambdaBackend.name, LambdaBackend)

"""The Quotes backend: generate Python source, invoke the host compiler.

The reproduction's stand-in for Scala 3 quotes & splices.  The backend
renders each (already join-ordered) sub-query to a specialized, readable
Python function, compiles the text with ``compile()`` and executes the module
to obtain the callable — paying a real, measurable "invoke the compiler at
query runtime" cost, which is exactly the overhead Fig. 5 and §VI-B attribute
to the quotes target.  The generated code only ever calls the public
relational-layer API and is retained for inspection on the artifact, which is
the analogue of the safety/ergonomics argument for quotes.

Snippet mode compiles only this node's union logic and splices continuation
callables (interpreter closures for the children) into the generated code, so
control can flow back to the interpreter after the compiled operator runs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.core.backends.base import (
    ArtifactFunction,
    Backend,
    CompiledArtifact,
    register_backend,
)
from repro.core.codegen.source import (
    render_plan_function,
    render_snippet_function,
    render_union_module,
)
from repro.core.codegen.steps import lower_plan
from repro.relational.operators import JoinPlan
from repro.relational.relation import Row
from repro.relational.storage import DatabaseKind, StorageManager


class QuotesBackend(Backend):
    """Source-level runtime code generation (the safest, heaviest target)."""

    name = "quotes"
    revertible = True
    invokes_compiler = True

    def __init__(self) -> None:
        self._module_counter = 0

    def _next_module_name(self, label: str) -> str:
        self._module_counter += 1
        safe = "".join(ch if ch.isalnum() else "_" for ch in label)
        return f"quotes_{safe}_{self._module_counter}"

    def compile_plans(
        self,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> CompiledArtifact:
        index_view = self._index_view(storage, use_indexes)
        module_name = self._next_module_name(label)

        def build() -> ArtifactFunction:
            namespace = {"DatabaseKind": DatabaseKind}
            if mode == "snippet" and continuations is not None:
                function_name = f"{module_name}_snippet"
                source = render_snippet_function(function_name, len(continuations))
                code = compile(source, f"<carac-quotes:{module_name}>", "exec")
                exec(code, namespace)  # noqa: S102 - deliberate runtime codegen
                snippet = namespace[function_name]
                spliced = tuple(continuations)

                def run_snippet(run_storage: StorageManager) -> Set[Row]:
                    return snippet(run_storage, spliced)

                run_snippet.generated_source = source  # type: ignore[attr-defined]
                return run_snippet

            lowered = [lower_plan(plan, index_view, use_indexes) for plan in plans]
            source, driver_name = render_union_module(
                lowered, module_name, symbols=storage.symbols
            )
            code = compile(source, f"<carac-quotes:{module_name}>", "exec")
            exec(code, namespace)  # noqa: S102 - deliberate runtime codegen
            driver = namespace[driver_name]
            driver.generated_source = source  # type: ignore[attr-defined]
            return driver

        function, seconds = self._timed(build)
        return CompiledArtifact(
            function=function,
            backend=self.name,
            plans=tuple(plans),
            compile_seconds=seconds,
            mode=mode,
        )

    def generate_source(self, plans: Sequence[JoinPlan], storage: StorageManager,
                        use_indexes: bool = True, label: str = "node") -> str:
        """Render (but do not compile) the module source, for inspection/tests."""
        index_view = self._index_view(storage, use_indexes)
        lowered = [lower_plan(plan, index_view, use_indexes) for plan in plans]
        source, _driver = render_union_module(
            lowered, self._next_module_name(label), symbols=storage.symbols
        )
        return source


register_backend(QuotesBackend.name, QuotesBackend)

"""Code generation shared by the Quotes and Bytecode backends.

The backends differ only in *how* they turn a lowered plan into executable
code (source text + ``compile()`` versus a directly constructed ``ast``
module), so the lowering itself — from a :class:`JoinPlan` to a list of
specialization steps — lives here and is shared.
"""

from repro.core.codegen.steps import (
    AssignStep,
    ConditionStep,
    EmitStep,
    LoopStep,
    LoweredPlan,
    NegationStep,
    lower_plan,
)
from repro.core.codegen.source import (
    render_plan_function,
    render_snippet_function,
    render_union_module,
)
from repro.core.codegen.pyast import build_plan_function_ast, build_union_module_ast

__all__ = [
    "AssignStep",
    "ConditionStep",
    "EmitStep",
    "LoopStep",
    "LoweredPlan",
    "NegationStep",
    "build_plan_function_ast",
    "build_union_module_ast",
    "lower_plan",
    "render_plan_function",
    "render_snippet_function",
    "render_union_module",
]

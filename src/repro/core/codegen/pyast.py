"""Rendering lowered plans directly to Python ``ast`` trees (the Bytecode backend).

The analogue of Carac's direct JVM-bytecode generation: the backend skips the
textual front end entirely and hands a constructed syntax tree straight to
``compile()``.  It is cheaper to invoke than the Quotes backend (no source
rendering, no parsing) but the artifact is harder to inspect and nothing
checks that the construction is well-formed until it runs — the same
expressiveness-versus-safety trade-off §V-C2 describes.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.datalog.terms import Aggregate, BinaryExpression, Constant, Term, Variable
from repro.relational.symbols import IDENTITY
from repro.core.codegen.steps import (
    AssignStep,
    ConditionStep,
    EmitStep,
    LoopStep,
    LoweredPlan,
    NegationStep,
    Step,
)

_BIN_OP_NODES = {
    "+": ast.Add(),
    "-": ast.Sub(),
    "*": ast.Mult(),
    "//": ast.FloorDiv(),
    "/": ast.Div(),
    "%": ast.Mod(),
}

_COMPARE_NODES = {
    "<": ast.Lt(),
    "<=": ast.LtE(),
    ">": ast.Gt(),
    ">=": ast.GtE(),
    "==": ast.Eq(),
    "!=": ast.NotEq(),
}


def _name(identifier: str, ctx: ast.expr_context | None = None) -> ast.Name:
    return ast.Name(id=identifier, ctx=ctx or ast.Load())


def term_to_ast(term: Term, locals_map: Dict[Variable, str]) -> ast.expr:
    """Build the *storage-domain* ``ast`` expression for a term.

    Under dictionary encoding plan constants are already interned ids, so
    the generated equality checks, index probes and negation membership
    tests compare int against int — no symbol-table call in the emitted
    code.  Expression terms compute raw values; use the symbol-aware
    helpers below for them.
    """
    if isinstance(term, Constant):
        return ast.Constant(value=term.value)
    if isinstance(term, Variable):
        local = locals_map.get(term)
        if local is None:
            raise KeyError(f"variable {term.name!r} is not bound at this point")
        return _name(local)
    if isinstance(term, BinaryExpression):
        left = term_to_ast(term.left, locals_map)
        right = term_to_ast(term.right, locals_map)
        if term.op in ("min", "max"):
            return ast.Call(func=_name(term.op), args=[left, right], keywords=[])
        return ast.BinOp(left=left, op=_BIN_OP_NODES[term.op], right=right)
    if isinstance(term, Aggregate):  # pragma: no cover - aggregates are interpreted
        raise TypeError("aggregate terms cannot be compiled")
    raise TypeError(f"cannot render term {term!r}")  # pragma: no cover


def raw_term_ast(term: Term, locals_map: Dict[Variable, str], symbols) -> ast.expr:
    """The *raw-domain* expression for a builtin operand.

    Encoded bindings route through ``_resolve`` (bound in the generated
    prologue); under the identity codec this collapses to
    :func:`term_to_ast` exactly.
    """
    if symbols.identity:
        return term_to_ast(term, locals_map)
    if isinstance(term, (Constant, Variable)):
        return ast.Call(
            func=_name("_resolve"), args=[term_to_ast(term, locals_map)], keywords=[]
        )
    if isinstance(term, BinaryExpression):
        left = raw_term_ast(term.left, locals_map, symbols)
        right = raw_term_ast(term.right, locals_map, symbols)
        if term.op in ("min", "max"):
            return ast.Call(func=_name(term.op), args=[left, right], keywords=[])
        return ast.BinOp(left=left, op=_BIN_OP_NODES[term.op], right=right)
    if isinstance(term, Aggregate):  # pragma: no cover - aggregates are interpreted
        raise TypeError("aggregate terms cannot be compiled")
    raise TypeError(f"cannot render term {term!r}")  # pragma: no cover


def stored_term_ast(term: Term, locals_map: Dict[Variable, str],
                    symbols) -> ast.expr:
    """Storage-domain expression, re-interning computed (expression) values."""
    if isinstance(term, (Constant, Variable)) or symbols.identity:
        return term_to_ast(term, locals_map)
    return ast.Call(
        func=_name("_intern"),
        args=[raw_term_ast(term, locals_map, symbols)],
        keywords=[],
    )


def _subscript(container: str, index: int) -> ast.Subscript:
    return ast.Subscript(
        value=_name(container), slice=ast.Constant(value=index), ctx=ast.Load()
    )


def _tuple_expr(elements: Sequence[ast.expr]) -> ast.Tuple:
    return ast.Tuple(elts=list(elements), ctx=ast.Load())


def _relation_fetch(relation_local: str, relation_name: str, kind_value: str) -> ast.Assign:
    call = ast.Call(
        func=ast.Attribute(value=_name("storage"), attr="relation", ctx=ast.Load()),
        args=[
            ast.Constant(value=relation_name),
            ast.Call(func=_name("DatabaseKind"), args=[ast.Constant(value=kind_value)],
                     keywords=[]),
        ],
        keywords=[],
    )
    return ast.Assign(targets=[_name(relation_local, ast.Store())], value=call)


def _build_steps(steps: Sequence[Step], index: int,
                 locals_map: Dict[Variable, str],
                 symbols=IDENTITY) -> List[ast.stmt]:
    if index == len(steps):
        return []
    step = steps[index]
    rest = lambda: _build_steps(steps, index + 1, locals_map, symbols)  # noqa: E731

    if isinstance(step, LoopStep):
        inner: List[ast.stmt] = []
        conditions: List[ast.expr] = []
        for column, term in step.checks:
            conditions.append(
                ast.Compare(
                    left=_subscript(step.tuple_local, column),
                    ops=[ast.Eq()],
                    comparators=[term_to_ast(term, locals_map)],
                )
            )
        for earlier, later in step.intra_checks:
            conditions.append(
                ast.Compare(
                    left=_subscript(step.tuple_local, earlier),
                    ops=[ast.Eq()],
                    comparators=[_subscript(step.tuple_local, later)],
                )
            )
        binding_statements: List[ast.stmt] = [
            ast.Assign(
                targets=[_name(local_name, ast.Store())],
                value=_subscript(step.tuple_local, column),
            )
            for local_name, column in step.bindings
        ]
        body_after_checks = binding_statements + rest()
        if not body_after_checks:
            body_after_checks = [ast.Pass()]
        if conditions:
            test = conditions[0] if len(conditions) == 1 else ast.BoolOp(
                op=ast.And(), values=conditions
            )
            inner = [ast.If(test=test, body=body_after_checks, orelse=[])]
        else:
            inner = body_after_checks
        if step.lookup_column is not None and step.lookup_term is not None:
            iterable: ast.expr = ast.Call(
                func=ast.Attribute(value=_name(step.relation_local), attr="lookup",
                                   ctx=ast.Load()),
                args=[ast.Constant(value=step.lookup_column),
                      term_to_ast(step.lookup_term, locals_map)],
                keywords=[],
            )
        else:
            iterable = ast.Call(
                func=ast.Attribute(value=_name(step.relation_local), attr="rows",
                                   ctx=ast.Load()),
                args=[],
                keywords=[],
            )
        return [
            ast.For(
                target=_name(step.tuple_local, ast.Store()),
                iter=iterable,
                body=inner,
                orelse=[],
            )
        ]

    if isinstance(step, NegationStep):
        probe = _tuple_expr([term_to_ast(term, locals_map) for term in step.terms])
        test = ast.Compare(
            left=probe, ops=[ast.NotIn()], comparators=[_name(step.relation_local)]
        )
        body = rest() or [ast.Pass()]
        return [ast.If(test=test, body=body, orelse=[])]

    if isinstance(step, ConditionStep):
        comparison = step.comparison
        test = ast.Compare(
            left=raw_term_ast(comparison.left, locals_map, symbols),
            ops=[_COMPARE_NODES[comparison.op]],
            comparators=[raw_term_ast(comparison.right, locals_map, symbols)],
        )
        body = rest() or [ast.Pass()]
        return [ast.If(test=test, body=body, orelse=[])]

    if isinstance(step, AssignStep):
        expression = raw_term_ast(step.expression, locals_map, symbols)
        if step.check_only:
            target: ast.expr = _name(step.target_local)
            if not symbols.identity:
                target = ast.Call(func=_name("_resolve"), args=[target], keywords=[])
            test = ast.Compare(left=target, ops=[ast.Eq()], comparators=[expression])
            body = rest() or [ast.Pass()]
            return [ast.If(test=test, body=body, orelse=[])]
        if not symbols.identity:
            expression = ast.Call(func=_name("_intern"), args=[expression], keywords=[])
        assign = ast.Assign(targets=[_name(step.target_local, ast.Store())],
                            value=expression)
        return [assign] + rest()

    if isinstance(step, EmitStep):
        head = _tuple_expr(
            [stored_term_ast(term, locals_map, symbols) for term in step.head_terms]
        )
        add_call = ast.Expr(
            value=ast.Call(
                func=ast.Attribute(value=_name("out"), attr="add", ctx=ast.Load()),
                args=[head],
                keywords=[],
            )
        )
        return [add_call] + rest()

    raise TypeError(f"unknown step {step!r}")  # pragma: no cover


def build_plan_function_ast(lowered: LoweredPlan, function_name: str,
                            symbols=IDENTITY) -> ast.FunctionDef:
    """Build the ``FunctionDef`` node evaluating one lowered plan."""
    body: List[ast.stmt] = [
        ast.Assign(
            targets=[_name("out", ast.Store())],
            value=ast.Call(func=_name("set"), args=[], keywords=[]),
        )
    ]
    if not symbols.identity:
        for alias, attr in (("_resolve", "resolve"), ("_intern", "intern")):
            codec = ast.Attribute(
                value=_name("storage"), attr="symbols", ctx=ast.Load()
            )
            body.append(
                ast.Assign(
                    targets=[_name(alias, ast.Store())],
                    value=ast.Attribute(value=codec, attr=attr, ctx=ast.Load()),
                )
            )
    for relation_local, relation_name, kind in lowered.relation_locals:
        body.append(_relation_fetch(relation_local, relation_name, kind.value))
    body.extend(_build_steps(lowered.steps, 0, lowered.locals_map, symbols))
    body.append(ast.Return(value=_name("out")))
    return ast.FunctionDef(
        name=function_name,
        args=ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg="storage")],
            kwonlyargs=[],
            kw_defaults=[],
            defaults=[],
        ),
        body=body,
        decorator_list=[],
    )


def build_union_module_ast(
    lowered_plans: Sequence[LoweredPlan],
    module_name: str = "generated_union",
    symbols=IDENTITY,
) -> Tuple[ast.Module, str]:
    """Build an ``ast.Module`` with one function per plan and a union driver."""
    functions: List[ast.stmt] = []
    function_names: List[str] = []
    for i, lowered in enumerate(lowered_plans):
        function_name = f"{module_name}_subquery_{i}"
        function_names.append(function_name)
        functions.append(build_plan_function_ast(lowered, function_name, symbols))

    driver_name = f"{module_name}_driver"
    driver_body: List[ast.stmt] = [
        ast.Assign(
            targets=[_name("out", ast.Store())],
            value=ast.Call(func=_name("set"), args=[], keywords=[]),
        )
    ]
    for function_name in function_names:
        driver_body.append(
            ast.AugAssign(
                target=_name("out", ast.Store()),
                op=ast.BitOr(),
                value=ast.Call(func=_name(function_name), args=[_name("storage")],
                               keywords=[]),
            )
        )
    driver_body.append(ast.Return(value=_name("out")))
    functions.append(
        ast.FunctionDef(
            name=driver_name,
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg="storage")],
                kwonlyargs=[],
                kw_defaults=[],
                defaults=[],
            ),
            body=driver_body,
            decorator_list=[],
        )
    )
    module = ast.Module(body=functions, type_ignores=[])
    ast.fix_missing_locations(module)
    return module, driver_name

"""Rendering lowered plans to Python source text (the Quotes backend).

The analogue of Carac's Scala quotes: the generated artifact is a plain,
readable function definition that the host compiler (here CPython's
``compile``) parses, checks and turns into executable code at runtime.  This
is the most expensive backend to invoke (it pays the full parse + compile
pipeline) but the generated code is fully inspectable and — by construction —
only ever calls the public relational-layer API, which is the reproduction's
equivalent of the type-safety argument the paper makes for quotes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalog.terms import Aggregate, BinaryExpression, Constant, Term, Variable
from repro.relational.symbols import IDENTITY
from repro.core.codegen.steps import (
    AssignStep,
    ConditionStep,
    EmitStep,
    LoopStep,
    LoweredPlan,
    NegationStep,
)

_INDENT = "    "


def term_to_source(term: Term, locals_map: Dict[Variable, str]) -> str:
    """Render a term as a *storage-domain* Python expression.

    Variables and constants are already in the storage domain (under
    dictionary encoding, plan constants were interned at plan-encode time,
    so the generated equality checks and index probes compare int against
    int with no per-tuple translation).  Expression terms cannot be
    rendered here — they compute raw values; use the symbol-aware helpers.
    """
    if isinstance(term, Constant):
        return repr(term.value)
    if isinstance(term, Variable):
        local = locals_map.get(term)
        if local is None:
            raise KeyError(f"variable {term.name!r} is not bound at this point")
        return local
    if isinstance(term, BinaryExpression):
        left = term_to_source(term.left, locals_map)
        right = term_to_source(term.right, locals_map)
        if term.op in ("min", "max"):
            return f"{term.op}({left}, {right})"
        return f"({left} {term.op} {right})"
    if isinstance(term, Aggregate):  # pragma: no cover - aggregates are interpreted
        raise TypeError("aggregate terms cannot be compiled")
    raise TypeError(f"cannot render term {term!r}")  # pragma: no cover


def raw_term_source(term: Term, locals_map: Dict[Variable, str], symbols) -> str:
    """Render a term as a *raw-domain* expression (builtin operands).

    Encoded variable bindings are resolved through ``_resolve`` (bound to
    ``storage.symbols.resolve`` in the generated prologue); encoded
    constants are resolved *now*, at code-generation time, and embedded as
    plain literals — the compiled comparison carries no symbol-table work
    for its constant side.
    """
    if isinstance(term, Constant):
        return repr(symbols.resolve(term.value))
    if isinstance(term, Variable):
        local = locals_map.get(term)
        if local is None:
            raise KeyError(f"variable {term.name!r} is not bound at this point")
        return local if symbols.identity else f"_resolve({local})"
    if isinstance(term, BinaryExpression):
        left = raw_term_source(term.left, locals_map, symbols)
        right = raw_term_source(term.right, locals_map, symbols)
        if term.op in ("min", "max"):
            return f"{term.op}({left}, {right})"
        return f"({left} {term.op} {right})"
    if isinstance(term, Aggregate):  # pragma: no cover - aggregates are interpreted
        raise TypeError("aggregate terms cannot be compiled")
    raise TypeError(f"cannot render term {term!r}")  # pragma: no cover


def stored_term_source(term: Term, locals_map: Dict[Variable, str], symbols) -> str:
    """Render a term as a storage-domain expression, interning computed values."""
    if isinstance(term, (Constant, Variable)):
        return term_to_source(term, locals_map)
    raw = raw_term_source(term, locals_map, symbols)
    return raw if symbols.identity else f"_intern({raw})"


def _tuple_source(expressions: Sequence[str]) -> str:
    if len(expressions) == 1:
        return f"({expressions[0]},)"
    return "(" + ", ".join(expressions) + ")"


def render_plan_function(lowered: LoweredPlan, function_name: str,
                         symbols=IDENTITY) -> str:
    """Render one lowered plan as a standalone ``def {name}(storage)`` function."""
    lines: List[str] = [f"def {function_name}(storage):"]
    lines.append(f"{_INDENT}out = set()")
    if not symbols.identity:
        lines.append(f"{_INDENT}_resolve = storage.symbols.resolve")
        lines.append(f"{_INDENT}_intern = storage.symbols.intern")
    for relation_local, relation_name, kind in lowered.relation_locals:
        lines.append(
            f"{_INDENT}{relation_local} = storage.relation({relation_name!r}, "
            f"DatabaseKind({kind.value!r}))"
        )

    locals_map = lowered.locals_map
    depth = 1

    def emit(line: str) -> None:
        lines.append(f"{_INDENT * depth}{line}")

    for step in lowered.steps:
        if isinstance(step, LoopStep):
            if step.lookup_column is not None and step.lookup_term is not None:
                probe = term_to_source(step.lookup_term, locals_map)
                emit(
                    f"for {step.tuple_local} in {step.relation_local}.lookup("
                    f"{step.lookup_column}, {probe}):"
                )
            else:
                emit(f"for {step.tuple_local} in {step.relation_local}.rows():")
            depth += 1
            conditions: List[str] = []
            for column, term in step.checks:
                conditions.append(
                    f"{step.tuple_local}[{column}] == {term_to_source(term, locals_map)}"
                )
            for earlier, later in step.intra_checks:
                conditions.append(
                    f"{step.tuple_local}[{earlier}] == {step.tuple_local}[{later}]"
                )
            if conditions:
                emit(f"if {' and '.join(conditions)}:")
                depth += 1
            for local_name, column in step.bindings:
                emit(f"{local_name} = {step.tuple_local}[{column}]")
        elif isinstance(step, NegationStep):
            values = [term_to_source(term, locals_map) for term in step.terms]
            emit(f"if {_tuple_source(values)} not in {step.relation_local}:")
            depth += 1
        elif isinstance(step, ConditionStep):
            comparison = step.comparison
            left = raw_term_source(comparison.left, locals_map, symbols)
            right = raw_term_source(comparison.right, locals_map, symbols)
            emit(f"if {left} {comparison.op} {right}:")
            depth += 1
        elif isinstance(step, AssignStep):
            expression = raw_term_source(step.expression, locals_map, symbols)
            if step.check_only:
                target = (
                    step.target_local if symbols.identity
                    else f"_resolve({step.target_local})"
                )
                emit(f"if {target} == {expression}:")
                depth += 1
            elif symbols.identity:
                emit(f"{step.target_local} = {expression}")
            else:
                emit(f"{step.target_local} = _intern({expression})")
        elif isinstance(step, EmitStep):
            head = [
                stored_term_source(term, locals_map, symbols)
                for term in step.head_terms
            ]
            emit(f"out.add({_tuple_source(head)})")
        else:  # pragma: no cover
            raise TypeError(f"unknown step {step!r}")

    lines.append(f"{_INDENT}return out")
    return "\n".join(lines) + "\n"


def render_union_module(
    lowered_plans: Sequence[LoweredPlan],
    module_name: str = "generated_union",
    symbols=IDENTITY,
) -> Tuple[str, str]:
    """Render several plans plus a union driver; returns (source, driver name).

    The driver function evaluates every sub-query and unions the results —
    the "full" compilation of a UnionOp / RelationUnionOp subtree.
    """
    parts: List[str] = []
    function_names: List[str] = []
    for i, lowered in enumerate(lowered_plans):
        function_name = f"{module_name}_subquery_{i}"
        function_names.append(function_name)
        parts.append(render_plan_function(lowered, function_name, symbols))
    driver_name = f"{module_name}_driver"
    driver_lines = [f"def {driver_name}(storage):", f"{_INDENT}out = set()"]
    for function_name in function_names:
        driver_lines.append(f"{_INDENT}out |= {function_name}(storage)")
    driver_lines.append(f"{_INDENT}return out")
    parts.append("\n".join(driver_lines) + "\n")
    return "\n".join(parts), driver_name


def render_snippet_function(
    function_name: str,
    continuation_count: int,
) -> str:
    """Render a "snippet" compilation: the node's own body only.

    Snippet mode compiles just the union/driver logic and defers each child
    sub-query back to the interpreter through continuations spliced in as
    arguments (paper §V-B3).  The generated function receives the storage and
    a sequence of continuation callables.
    """
    lines = [f"def {function_name}(storage, continuations):"]
    lines.append(f"{_INDENT}out = set()")
    lines.append(f"{_INDENT}assert len(continuations) == {continuation_count}")
    lines.append(f"{_INDENT}for continuation in continuations:")
    lines.append(f"{_INDENT * 2}out |= continuation(storage)")
    lines.append(f"{_INDENT}return out")
    return "\n".join(lines) + "\n"

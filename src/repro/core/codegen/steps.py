"""Lowering a JoinPlan into specialization steps.

The generic sub-query evaluator (:mod:`repro.relational.operators`) pays for
its generality with per-literal dispatch, binding dictionaries and dynamic
probe construction.  Code generation removes exactly those costs: each plan
is lowered into a linear sequence of *steps* — loops over one relation copy,
equality checks, negation membership tests, assignments — with logic
variables pinned to Python local names.  The Quotes backend renders these
steps to source text, the Bytecode backend to an ``ast`` tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datalog.literals import Assignment, Atom, Comparison
from repro.datalog.terms import BinaryExpression, Constant, Term, Variable
from repro.relational.operators import JoinPlan
from repro.relational.storage import DatabaseKind

#: An index availability callback: (relation, column) -> bool.
IndexProbe = "Callable[[str, int], bool]"


def _sanitize(name: str) -> str:
    return re.sub(r"[^0-9a-zA-Z_]", "_", name)


@dataclass
class LoopStep:
    """Iterate over (a probe of) one relation copy, binding local variables."""

    relation: str
    kind: DatabaseKind
    relation_local: str
    tuple_local: str
    #: Column used for an index probe, with the term providing the probe value.
    lookup_column: Optional[int] = None
    lookup_term: Optional[Term] = None
    #: (position, term) pairs that must match the tuple (constants / bound vars).
    checks: List[Tuple[int, Term]] = field(default_factory=list)
    #: (earlier position, later position) pairs for repeated variables.
    intra_checks: List[Tuple[int, int]] = field(default_factory=list)
    #: (local name, position) pairs binding new variables.
    bindings: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class NegationStep:
    """Anti-join membership test against the Derived copy of a relation."""

    relation: str
    relation_local: str
    terms: Tuple[Term, ...] = ()


@dataclass
class ConditionStep:
    """A comparison filter over already-bound variables."""

    comparison: Comparison


@dataclass
class AssignStep:
    """Bind a new local (or check equality when the target is already bound)."""

    target_local: str
    expression: Term
    check_only: bool = False


@dataclass
class EmitStep:
    """Project the head tuple and add it to the output set."""

    head_terms: Tuple[Term, ...] = ()


Step = Union[LoopStep, NegationStep, ConditionStep, AssignStep, EmitStep]


@dataclass
class LoweredPlan:
    """The result of lowering: steps plus the variable -> local-name mapping."""

    plan: JoinPlan
    steps: List[Step]
    locals_map: Dict[Variable, str]
    relation_locals: List[Tuple[str, str, DatabaseKind]]

    def loop_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, LoopStep))


def lower_plan(
    plan: JoinPlan,
    index_view=None,
    use_indexes: bool = True,
) -> LoweredPlan:
    """Lower ``plan`` into steps.

    ``index_view(relation, column)`` says whether an index exists; when a
    bound column is indexed (and ``use_indexes``), the loop step probes that
    index instead of scanning.
    """
    locals_map: Dict[Variable, str] = {}
    steps: List[Step] = []
    relation_locals: List[Tuple[str, str, DatabaseKind]] = []

    def local_for(variable: Variable) -> str:
        existing = locals_map.get(variable)
        if existing is not None:
            return existing
        name = f"v_{_sanitize(variable.name)}_{len(locals_map)}"
        locals_map[variable] = name
        return name

    for position_in_plan, source in enumerate(plan.sources):
        literal = source.literal
        if isinstance(literal, Atom) and not literal.negated:
            kind = source.kind or DatabaseKind.DERIVED
            relation_local = f"rel_{position_in_plan}"
            relation_locals.append((relation_local, literal.relation, kind))
            tuple_local = f"t_{position_in_plan}"

            checks: List[Tuple[int, Term]] = []
            intra: List[Tuple[int, int]] = []
            first_position: Dict[Variable, int] = {}
            new_variables: List[Tuple[Variable, int]] = []
            for column, term in enumerate(literal.terms):
                if isinstance(term, Constant):
                    checks.append((column, term))
                elif isinstance(term, Variable):
                    if term in locals_map:
                        checks.append((column, term))
                    elif term in first_position:
                        intra.append((first_position[term], column))
                    else:
                        first_position[term] = column
                        new_variables.append((term, column))
                else:  # pragma: no cover - body atoms hold only vars/constants
                    raise TypeError(f"unexpected term {term!r} in body atom")

            lookup_column: Optional[int] = None
            lookup_term: Optional[Term] = None
            if use_indexes and checks:
                for column, term in checks:
                    indexed = index_view(literal.relation, column) if index_view else False
                    if indexed:
                        lookup_column, lookup_term = column, term
                        break
            if lookup_column is not None:
                checks = [(c, t) for c, t in checks if c != lookup_column]

            bindings: List[Tuple[str, int]] = []
            for variable, column in new_variables:
                bindings.append((local_for(variable), column))

            steps.append(
                LoopStep(
                    relation=literal.relation,
                    kind=kind,
                    relation_local=relation_local,
                    tuple_local=tuple_local,
                    lookup_column=lookup_column,
                    lookup_term=lookup_term,
                    checks=checks,
                    intra_checks=intra,
                    bindings=bindings,
                )
            )
        elif isinstance(literal, Atom) and literal.negated:
            relation_local = f"neg_{position_in_plan}"
            relation_locals.append((relation_local, literal.relation, DatabaseKind.DERIVED))
            steps.append(
                NegationStep(
                    relation=literal.relation,
                    relation_local=relation_local,
                    terms=literal.terms,
                )
            )
        elif isinstance(literal, Comparison):
            steps.append(ConditionStep(literal))
        elif isinstance(literal, Assignment):
            if literal.target in locals_map:
                steps.append(
                    AssignStep(locals_map[literal.target], literal.expression, check_only=True)
                )
            else:
                steps.append(
                    AssignStep(local_for(literal.target), literal.expression, check_only=False)
                )
        else:  # pragma: no cover
            raise TypeError(f"unsupported literal {literal!r}")

    steps.append(EmitStep(plan.head_terms))
    return LoweredPlan(plan=plan, steps=steps, locals_map=locals_map,
                       relation_locals=relation_locals)

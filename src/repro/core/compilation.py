"""Compilation management: synchronous and asynchronous code generation.

Carac can either block on compilation or continue interpreting on the main
thread while a compiler thread produces the artifact, switching over at the
next safe point once it is ready (paper §V-B2, §V-C1).  The manager below
owns that machinery: per-IR-node artifact cache, pending futures, the
cardinality snapshot each artifact was compiled against (for the freshness
test), and a log of compilation events for the profiler and the Fig. 5
code-generation benchmark.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.backends.base import ArtifactFunction, Backend, CompiledArtifact
from repro.relational.operators import JoinPlan
from repro.relational.statistics import CardinalitySnapshot
from repro.relational.storage import StorageManager


@dataclass
class CompilationEvent:
    """One completed compilation, recorded for profiling."""

    node_id: int
    label: str
    backend: str
    mode: str
    seconds: float
    asynchronous: bool
    plan_count: int


@dataclass
class _NodeState:
    artifact: Optional[CompiledArtifact] = None
    snapshot: Optional[CardinalitySnapshot] = None
    future: Optional[Future] = None
    future_snapshot: Optional[CardinalitySnapshot] = None


class CompilationManager:
    """Caches compiled artifacts per IR node and runs async compilations."""

    def __init__(self, backend: Backend, asynchronous: bool = False,
                 max_workers: int = 1) -> None:
        self.backend = backend
        self.asynchronous = asynchronous
        self.events: List[CompilationEvent] = []
        self._states: Dict[int, _NodeState] = {}
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        if asynchronous:
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="carac-compile"
            )

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "CompilationManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- artifact access -------------------------------------------------------

    def _state(self, node_id: int) -> _NodeState:
        state = self._states.get(node_id)
        if state is None:
            state = _NodeState()
            self._states[node_id] = state
        return state

    def current_artifact(self, node_id: int) -> Optional[CompiledArtifact]:
        """The ready artifact for ``node_id``, absorbing a finished future."""
        with self._lock:
            state = self._state(node_id)
            if state.future is not None and state.future.done():
                try:
                    artifact = state.future.result()
                except Exception:
                    state.future = None
                    raise
                state.artifact = artifact
                state.snapshot = state.future_snapshot
                state.future = None
                self._record_event(artifact, asynchronous=True)
            return state.artifact

    def artifact_snapshot(self, node_id: int) -> Optional[CardinalitySnapshot]:
        with self._lock:
            return self._state(node_id).snapshot

    def is_compiling(self, node_id: int) -> bool:
        with self._lock:
            state = self._state(node_id)
            return state.future is not None and not state.future.done()

    def invalidate(self, node_id: int) -> None:
        """Throw away the artifact (and any pending compile) for a node."""
        with self._lock:
            state = self._state(node_id)
            state.artifact = None
            state.snapshot = None
            if state.future is not None and not state.future.done():
                state.future.cancel()
            state.future = None
            state.future_snapshot = None

    # -- compilation -----------------------------------------------------------

    def _record_event(self, artifact: CompiledArtifact, asynchronous: bool) -> None:
        self.events.append(
            CompilationEvent(
                node_id=artifact.node_id if artifact.node_id is not None else -1,
                label=str(artifact.node_id),
                backend=artifact.backend,
                mode=artifact.mode,
                seconds=artifact.compile_seconds,
                asynchronous=asynchronous,
                plan_count=len(artifact.plans),
            )
        )

    def compile_now(
        self,
        node_id: int,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        snapshot: CardinalitySnapshot,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> CompiledArtifact:
        """Blocking compilation: compile, cache and return the artifact."""
        artifact = self.backend.compile_plans(
            plans, storage, use_indexes=use_indexes, mode=mode,
            continuations=continuations, label=label,
        )
        artifact.node_id = node_id
        with self._lock:
            state = self._state(node_id)
            state.artifact = artifact
            state.snapshot = snapshot
            state.future = None
            state.future_snapshot = None
        self._record_event(artifact, asynchronous=False)
        return artifact

    def compile_async(
        self,
        node_id: int,
        plans: Sequence[JoinPlan],
        storage: StorageManager,
        snapshot: CardinalitySnapshot,
        use_indexes: bool = True,
        mode: str = "full",
        continuations: Optional[Sequence[ArtifactFunction]] = None,
        label: str = "node",
    ) -> None:
        """Submit a background compilation unless one is already pending."""
        if self._executor is None:
            # Misconfiguration guard: degrade to blocking compilation.
            self.compile_now(node_id, plans, storage, snapshot, use_indexes,
                             mode, continuations, label)
            return
        with self._lock:
            state = self._state(node_id)
            if state.future is not None and not state.future.done():
                return

            def job() -> CompiledArtifact:
                artifact = self.backend.compile_plans(
                    plans, storage, use_indexes=use_indexes, mode=mode,
                    continuations=continuations, label=label,
                )
                artifact.node_id = node_id
                return artifact

            state.future = self._executor.submit(job)
            state.future_snapshot = snapshot

    def total_compile_seconds(self) -> float:
        return sum(event.seconds for event in self.events)

    def compile_count(self) -> int:
        return len(self.events)

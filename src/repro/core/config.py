"""Execution configuration: mode, backend, granularity, staging options.

One :class:`EngineConfig` value describes every evaluation strategy the paper
compares, from the fully interpreted baselines of Table I through the JIT
configurations of Figs. 6–9 to the ahead-of-time ("macro") configurations of
Fig. 10.  Helper constructors build the named configurations used throughout
the benchmark harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.relational.statistics import SelectivityModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.resilience.faults import FaultRegistry
    from repro.resilience.limits import QueryLimits
    from repro.telemetry.config import TelemetryConfig


class ExecutionMode(str, enum.Enum):
    """Top-level evaluation strategy."""

    #: Interpret the as-written plans; no reordering, no code generation.
    INTERPRETED = "interpreted"
    #: Just-in-time: reorder (and optionally compile) during execution.
    JIT = "jit"
    #: Ahead-of-time ("macro"): reorder plans before execution begins,
    #: optionally also enabling the online IRGenerator re-sorter.
    AOT = "aot"
    #: Naive evaluation (no delta relations); used by baselines and tests.
    NAIVE = "naive"


class CompilationGranularity(str, enum.Enum):
    """At which IROp node the JIT applies optimization + code generation.

    Higher granularity → fewer compilations over stale-er statistics; lower
    granularity → fresher delta cardinalities but more frequent compilation
    (paper §V-B2).
    """

    RELATION = "relation"   # the pink UnionOp*: once per relation per iteration
    RULE = "rule"           # the yellow UnionOp: once per rule per iteration
    JOIN = "join"           # the blue σπ⋈: before every n-way join


class AOTSortMode(str, enum.Enum):
    """What information the ahead-of-time optimizer may use (Fig. 10)."""

    NONE = "none"
    RULES_ONLY = "rules"          # selectivity heuristics only, no cardinalities
    FACTS_AND_RULES = "facts"     # initial EDB cardinalities + selectivity


@dataclass(frozen=True)
class ShardingConfig:
    """Configuration of the shard-parallel evaluation subsystem.

    Orthogonal to :class:`ExecutionMode`: any mode except NAIVE (a baseline
    kept deliberately simple) can be sharded.  ``shards=1`` means sharding
    is disabled — evaluation takes the ordinary single-shard engine path,
    so ``EngineConfig.parallel(shards=1)`` is exactly the standard engine.

    ``pool`` selects the worker pool: ``"auto"`` uses forked processes when
    the machine has enough cores for the requested shard count (shard
    evaluation is pure Python, so threads would contend on the GIL — only
    processes parallelise it) and falls back to serial round-robin
    otherwise (including under pytest/CI, where oversubscription hurts more
    than it helps); ``"serial"``, ``"thread"`` and ``"process"`` force a
    specific pool (``"process"`` requires the fork start method and
    degrades to serial where unavailable).

    ``shard_backend`` controls how workers evaluate their loop plans.  A
    shard's plans are frozen for the whole fixpoint, so — unlike the
    adaptive single-shard JIT, which must keep re-deciding — one compilation
    per shard at setup amortises over every round.  ``"auto"`` compiles with
    the ``bytecode`` backend in interpreted mode, the configured JIT backend
    in JIT mode, and interprets the (pre-reordered) plans in AOT mode;
    ``"none"`` forces pure interpretation inside workers; any backend name
    forces that backend.
    """

    shards: int = 1
    pool: str = "auto"              # "auto" | "serial" | "thread" | "process"
    shard_backend: str = "auto"     # "auto" | "none" | a backend name
    max_rounds: int = 1_000_000

    def with_(self, **changes) -> "ShardingConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)


@dataclass
class EngineConfig:
    """Every knob of one program evaluation."""

    mode: ExecutionMode = ExecutionMode.INTERPRETED
    backend: str = "irgen"
    granularity: CompilationGranularity = CompilationGranularity.RULE
    async_compilation: bool = False
    compile_mode: str = "full"                 # "full" or "snippet"
    use_indexes: bool = True
    evaluator_style: str = "push"              # "push" or "pull"
    #: Physical sub-query executor: ``"pushdown"`` is the tuple-at-a-time
    #: binding recursion (the oracle every other executor is tested
    #: against), ``"vectorized"`` the ColumnarBlock batch executor —
    #: ``EngineConfig.with_(executor="vectorized")`` turns it on over any
    #: configuration.  Orthogonal to mode/backend/sharding: it changes how
    #: interpreted sub-queries run, never what they compute.
    executor: str = "pushdown"                 # "pushdown" or "vectorized"
    #: Dictionary-encoded storage: intern every constant into a dense int
    #: domain at load/insert time and run the whole fixpoint over int
    #: tuples, decoding lazily at the QueryResult boundary.  On by default;
    #: ``interning=False`` keeps raw values end-to-end (the PR-4 behaviour)
    #: and doubles as the differential oracle the encoded engine is tested
    #: against.  Orthogonal to mode/backend/executor/sharding.
    interning: bool = True
    freshness_threshold: float = 0.2
    optimize_seed: bool = True
    max_iterations: int = 1_000_000
    selectivity: SelectivityModel = field(default_factory=SelectivityModel)
    aot_sort: AOTSortMode = AOTSortMode.NONE
    aot_online: bool = False
    collect_profile: bool = True
    sharding: Optional[ShardingConfig] = None
    #: Observability wiring (:class:`repro.telemetry.TelemetryConfig`).
    #: ``None`` (the default) means the zero-overhead no-op tracer and a
    #: private metrics registry — evaluation semantics never depend on it,
    #: so it is excluded from session configuration cache keys.
    telemetry: Optional["TelemetryConfig"] = None
    #: Session-wide default query bounds (:class:`repro.resilience.
    #: QueryLimits`); per-query limits passed to ``query(...)`` override.
    #: ``None`` means unbounded — the executors hold the zero-overhead
    #: ``NOOP_GOVERNOR``.  Like telemetry, limits never change what a
    #: successful evaluation computes, so they are excluded from session
    #: configuration cache keys.
    limits: Optional["QueryLimits"] = None
    #: Fault-injection schedule (:class:`repro.resilience.FaultRegistry` or
    #: an iterable of ``FaultSpec``/spec strings), installed process-wide
    #: when an evaluation is prepared.  ``None`` (the default) keeps every
    #: fault point on the free no-op path.  Test/chaos-only; excluded from
    #: cache keys for the same reason as telemetry.
    faults: Optional["FaultRegistry"] = None
    label: str = ""

    def tracer(self):
        """The tracer this configuration selects (no-op unless enabled)."""
        from repro.telemetry.config import tracer_of

        return tracer_of(self.telemetry)

    def governor(self, limits: Optional["QueryLimits"] = None, token=None):
        """A per-evaluation governor for ``limits`` (or this config's
        default limits), or the shared no-op when nothing is bounded."""
        from repro.resilience.limits import governor_of

        return governor_of(limits if limits is not None else self.limits,
                           token)

    def describe(self) -> str:
        """A short configuration name for result tables.

        Sharded configurations always carry their shard count (an ``xN``
        suffix), including labelled ones — a parallel configuration's name
        round-trips through :meth:`with_` without losing the shard count.
        The suffix is appended unconditionally to labels (no substring
        guessing), so a label must not embed the count itself.
        """
        suffix = "+vec" if self.executor == "vectorized" else ""
        if not self.interning:
            suffix += "+raw"
        if self.sharding is not None and self.sharding.shards > 1:
            suffix += f"x{self.sharding.shards}"
        if self.label:
            return self.label + suffix
        if self.mode == ExecutionMode.INTERPRETED:
            return "interpreted" + ("+idx" if self.use_indexes else "") + suffix
        if self.mode == ExecutionMode.NAIVE:
            return "naive"  # no shard suffix: NAIVE always bypasses sharding
        if self.mode == ExecutionMode.AOT:
            online = "+online" if self.aot_online else ""
            return f"macro-{self.aot_sort.value}{online}{suffix}"
        sync = "async" if self.async_compilation else "blocking"
        return f"jit-{self.backend}-{sync}-{self.granularity.value}{suffix}"

    # -- named configurations used by the benchmark harness --------------------

    @staticmethod
    def interpreted(use_indexes: bool = True) -> "EngineConfig":
        """The "unoptimized"/"hand-optimized" interpreted baseline of Table I."""
        return EngineConfig(mode=ExecutionMode.INTERPRETED, use_indexes=use_indexes)

    @staticmethod
    def naive(use_indexes: bool = True) -> "EngineConfig":
        return EngineConfig(mode=ExecutionMode.NAIVE, use_indexes=use_indexes)

    @staticmethod
    def jit(
        backend: str = "lambda",
        asynchronous: bool = False,
        granularity: CompilationGranularity = CompilationGranularity.RULE,
        use_indexes: bool = True,
        compile_mode: str = "full",
    ) -> "EngineConfig":
        """A JIT configuration (the "JIT <backend> <blocking|async>" bars)."""
        return EngineConfig(
            mode=ExecutionMode.JIT,
            backend=backend,
            async_compilation=asynchronous,
            granularity=granularity,
            use_indexes=use_indexes,
            compile_mode=compile_mode,
        )

    @staticmethod
    def aot(
        sort: AOTSortMode = AOTSortMode.FACTS_AND_RULES,
        online: bool = False,
        use_indexes: bool = True,
    ) -> "EngineConfig":
        """An ahead-of-time ("macro") configuration of Fig. 10."""
        return EngineConfig(
            mode=ExecutionMode.AOT,
            aot_sort=sort,
            aot_online=online,
            use_indexes=use_indexes,
            backend="irgen",
        )

    @staticmethod
    def parallel(
        shards: int = 2,
        base: Optional["EngineConfig"] = None,
        pool: str = "auto",
        shard_backend: str = "auto",
        max_rounds: int = 1_000_000,
        **changes,
    ) -> "EngineConfig":
        """A shard-parallel configuration over any base configuration.

        Sharding composes orthogonally with the execution mode::

            EngineConfig.parallel(shards=4)                          # interpreted base
            EngineConfig.parallel(shards=4, base=EngineConfig.jit()) # sharded JIT
            EngineConfig.parallel(shards=2, mode=ExecutionMode.AOT)  # keyword overrides

        ``shards=1`` disables sharding (the standard single-shard engine
        runs); NAIVE mode always bypasses sharding.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        config = base if base is not None else EngineConfig()
        if changes:
            config = config.with_(**changes)
        return config.with_(
            sharding=ShardingConfig(
                shards=shards,
                pool=pool,
                shard_backend=shard_backend,
                max_rounds=max_rounds,
            )
        )

    #: ``with_`` keys routed into the nested :class:`ShardingConfig`.
    _SHARDING_KEYS = frozenset({"shards", "pool", "shard_backend", "max_rounds"})

    def with_(self, **changes) -> "EngineConfig":
        """A modified copy (dataclasses.replace wrapper).

        Sharding-level knobs (``shards``, ``pool``, ``shard_backend``,
        ``max_rounds``) are routed into the nested :class:`ShardingConfig`,
        so a parallel configuration survives copy-with-changes:
        ``EngineConfig.parallel(shards=4).with_(shards=2)`` re-shards, and
        ``.with_(use_indexes=False)`` keeps the sharding intact.
        """
        shard_changes = {
            key: changes.pop(key)
            for key in list(changes)
            if key in self._SHARDING_KEYS
        }
        config = replace(self, **changes)
        if shard_changes:
            base = config.sharding if config.sharding is not None else ShardingConfig()
            config = replace(config, sharding=replace(base, **shard_changes))
        return config

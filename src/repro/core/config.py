"""Execution configuration: mode, backend, granularity, staging options.

One :class:`EngineConfig` value describes every evaluation strategy the paper
compares, from the fully interpreted baselines of Table I through the JIT
configurations of Figs. 6–9 to the ahead-of-time ("macro") configurations of
Fig. 10.  Helper constructors build the named configurations used throughout
the benchmark harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.relational.statistics import SelectivityModel


class ExecutionMode(str, enum.Enum):
    """Top-level evaluation strategy."""

    #: Interpret the as-written plans; no reordering, no code generation.
    INTERPRETED = "interpreted"
    #: Just-in-time: reorder (and optionally compile) during execution.
    JIT = "jit"
    #: Ahead-of-time ("macro"): reorder plans before execution begins,
    #: optionally also enabling the online IRGenerator re-sorter.
    AOT = "aot"
    #: Naive evaluation (no delta relations); used by baselines and tests.
    NAIVE = "naive"


class CompilationGranularity(str, enum.Enum):
    """At which IROp node the JIT applies optimization + code generation.

    Higher granularity → fewer compilations over stale-er statistics; lower
    granularity → fresher delta cardinalities but more frequent compilation
    (paper §V-B2).
    """

    RELATION = "relation"   # the pink UnionOp*: once per relation per iteration
    RULE = "rule"           # the yellow UnionOp: once per rule per iteration
    JOIN = "join"           # the blue σπ⋈: before every n-way join


class AOTSortMode(str, enum.Enum):
    """What information the ahead-of-time optimizer may use (Fig. 10)."""

    NONE = "none"
    RULES_ONLY = "rules"          # selectivity heuristics only, no cardinalities
    FACTS_AND_RULES = "facts"     # initial EDB cardinalities + selectivity


@dataclass
class EngineConfig:
    """Every knob of one program evaluation."""

    mode: ExecutionMode = ExecutionMode.INTERPRETED
    backend: str = "irgen"
    granularity: CompilationGranularity = CompilationGranularity.RULE
    async_compilation: bool = False
    compile_mode: str = "full"                 # "full" or "snippet"
    use_indexes: bool = True
    evaluator_style: str = "push"              # "push" or "pull"
    freshness_threshold: float = 0.2
    optimize_seed: bool = True
    max_iterations: int = 1_000_000
    selectivity: SelectivityModel = field(default_factory=SelectivityModel)
    aot_sort: AOTSortMode = AOTSortMode.NONE
    aot_online: bool = False
    collect_profile: bool = True
    label: str = ""

    def describe(self) -> str:
        """A short configuration name for result tables."""
        if self.label:
            return self.label
        if self.mode == ExecutionMode.INTERPRETED:
            return "interpreted" + ("+idx" if self.use_indexes else "")
        if self.mode == ExecutionMode.NAIVE:
            return "naive"
        if self.mode == ExecutionMode.AOT:
            online = "+online" if self.aot_online else ""
            return f"macro-{self.aot_sort.value}{online}"
        sync = "async" if self.async_compilation else "blocking"
        return f"jit-{self.backend}-{sync}-{self.granularity.value}"

    # -- named configurations used by the benchmark harness --------------------

    @staticmethod
    def interpreted(use_indexes: bool = True) -> "EngineConfig":
        """The "unoptimized"/"hand-optimized" interpreted baseline of Table I."""
        return EngineConfig(mode=ExecutionMode.INTERPRETED, use_indexes=use_indexes)

    @staticmethod
    def naive(use_indexes: bool = True) -> "EngineConfig":
        return EngineConfig(mode=ExecutionMode.NAIVE, use_indexes=use_indexes)

    @staticmethod
    def jit(
        backend: str = "lambda",
        asynchronous: bool = False,
        granularity: CompilationGranularity = CompilationGranularity.RULE,
        use_indexes: bool = True,
        compile_mode: str = "full",
    ) -> "EngineConfig":
        """A JIT configuration (the "JIT <backend> <blocking|async>" bars)."""
        return EngineConfig(
            mode=ExecutionMode.JIT,
            backend=backend,
            async_compilation=asynchronous,
            granularity=granularity,
            use_indexes=use_indexes,
            compile_mode=compile_mode,
        )

    @staticmethod
    def aot(
        sort: AOTSortMode = AOTSortMode.FACTS_AND_RULES,
        online: bool = False,
        use_indexes: bool = True,
    ) -> "EngineConfig":
        """An ahead-of-time ("macro") configuration of Fig. 10."""
        return EngineConfig(
            mode=ExecutionMode.AOT,
            aot_sort=sort,
            aot_online=online,
            use_indexes=use_indexes,
            backend="irgen",
        )

    def with_(self, **changes) -> "EngineConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)

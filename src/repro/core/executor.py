"""The IROp executor: interpreter, JIT driver and safe-point logic.

This is where the paper's Adaptive Metaprogramming loop actually happens.
The executor walks the IROp tree produced by the plan builder.  In
interpreted mode it simply evaluates each σπ⋈ leaf with the generic
sub-query evaluator in the as-written order.  In JIT mode, whenever execution
reaches a node at the configured compilation granularity, it:

1. re-runs the join-order optimizer over that node's sub-queries using the
   live cardinalities of the Derived and Delta databases,
2. asks the compilation manager for an artifact — compiling synchronously,
   or asynchronously while the interpreter keeps making progress on the
   freshly reordered (but interpreted) plans,
3. applies the freshness test before re-generating code for a node that
   already has an artifact.

Because all state lives in the relational storage layer, every node boundary
is a safe point: execution can switch between interpretation and any
compiled artifact between any two IROps (paper §V-B3).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.backends.base import ArtifactFunction, get_backend
from repro.core.compilation import CompilationManager
from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
)
from repro.core.freshness import FreshnessTest
from repro.core.join_order import (
    JoinOrderOptimizer,
    annotate_block_strategies,
    storage_cardinality_view,
    storage_index_view,
)
from repro.core.profile import RuntimeProfile
from repro.datalog.terms import Aggregate, Variable, evaluate_aggregate
from repro.ir.ops import (
    AggregateOp,
    DoWhileOp,
    InsertOp,
    IROp,
    JoinProjectOp,
    ProgramOp,
    RelationUnionOp,
    ScanOp,
    SequenceOp,
    StratumOp,
    SwapClearOp,
    UnionOp,
)
from repro.relational.operators import JoinPlan, SubqueryEvaluator, evaluate_raw_term
from repro.resilience.limits import NOOP_GOVERNOR
from repro.relational.relation import Row
from repro.relational.statistics import SnapshotCache, StatisticsCollector
from repro.relational.storage import DatabaseKind, StorageManager


class IRExecutor:
    """Executes an IROp tree under one :class:`EngineConfig`."""

    def __init__(self, storage: StorageManager, config: EngineConfig,
                 profile: Optional[RuntimeProfile] = None,
                 tracer=None, trace_strata: bool = True,
                 governor=None) -> None:
        self.storage = storage
        self.config = config
        self.profile = profile if profile is not None else RuntimeProfile()
        #: ``trace_strata=False`` suppresses this executor's own stratum
        #: spans — used when a parallel coordinator already opened one and
        #: runs strata through a nested serial executor.
        self.tracer = tracer if tracer is not None else config.tracer()
        self.trace_strata = trace_strata
        #: Query-lifecycle governance: deadline / row / round limits plus
        #: cooperative cancellation, checked at iteration boundaries (and
        #: per sub-query plan inside the evaluator).  NOOP when unbounded.
        self.governor = governor if governor is not None else config.governor()
        self.evaluator = SubqueryEvaluator(
            storage, config.evaluator_style, executor=config.executor,
            tracer=self.tracer, governor=self.governor,
        )
        self.stats = StatisticsCollector()
        self.freshness = FreshnessTest(config.freshness_threshold, self.stats)

        self._jit_reordering = config.mode == ExecutionMode.JIT or (
            config.mode == ExecutionMode.AOT and config.aot_online
        )
        self.optimizer: Optional[JoinOrderOptimizer] = None
        if self._jit_reordering or config.mode == ExecutionMode.AOT:
            self.optimizer = JoinOrderOptimizer(config.selectivity)

        self.compilation: Optional[CompilationManager] = None
        if config.mode == ExecutionMode.JIT:
            backend = get_backend(config.backend)
            self.compilation = CompilationManager(backend, config.async_compilation)

        self._current_iteration = 0
        # Cardinality snapshots are reused across adaptive nodes within one
        # iteration (Derived/Delta-Known only change at swap/seed
        # boundaries), instead of re-copying every cardinality dict.
        self._snapshots = SnapshotCache()

    # -- public API -------------------------------------------------------------

    def execute(self, program: ProgramOp) -> RuntimeProfile:
        """Run the whole program to fixpoint; returns the runtime profile."""
        started = time.perf_counter()
        try:
            for stratum in program.strata:
                if self.trace_strata:
                    with self.tracer.span("stratum", index=stratum.index):
                        self._execute_stratum(stratum)
                else:
                    self._execute_stratum(stratum)
        finally:
            self.profile.absorb_block_stats(self.evaluator.vectorized_stats)
            self.profile.record_cache_probes(
                self._snapshots.hits, self._snapshots.misses
            )
            if self.compilation is not None:
                self.profile.compile_events = list(self.compilation.events)
                self.compilation.shutdown()
        self.profile.wall_seconds = time.perf_counter() - started
        for name in self.storage.relation_names():
            self.profile.result_sizes[name] = self.storage.cardinality(name)
        self.profile.record_symbol_stats(self.storage.symbols)
        return self.profile

    # -- stratum / loop ----------------------------------------------------------

    def _execute_stratum(self, stratum: StratumOp) -> None:
        self._current_iteration = 0
        if self.governor.active:
            self.governor.check()
        for insert in stratum.seed.children:
            assert isinstance(insert, InsertOp)
            rows = self._rows_for(insert.source, stage="seed")
            self.storage.seed_delta_batch(insert.relation, rows)

        loop = stratum.loop
        if loop is None:
            return

        iteration = 0
        max_iterations = min(loop.max_iterations, self.config.max_iterations)
        while True:
            iteration += 1
            self._current_iteration = iteration
            iteration_start = time.perf_counter()
            span = self.tracer.span(
                "iteration", stratum=stratum.index, iteration=iteration
            )
            snapshot = self.stats.record_snapshot(
                self._snapshots.take(self.storage, iteration)
            )
            promoted = 0
            try:
                for child in loop.body.children:
                    if isinstance(child, SwapClearOp):
                        promoted = self.storage.swap_and_clear(child.relations)
                    elif isinstance(child, InsertOp):
                        rows = self._rows_for(child.source, stage="loop")
                        self.storage.insert_new_batch(child.relation, rows)
                    else:  # pragma: no cover - defensive: builders only emit the above
                        self._rows_for(child, stage="loop")
            finally:
                span.set(promoted=promoted).finish()
            self.profile.record_iteration(
                stratum.index, iteration, promoted, snapshot,
                time.perf_counter() - iteration_start,
            )
            if promoted == 0 or iteration >= max_iterations:
                break
            if self.governor.active:
                self.governor.on_round(promoted)

    # -- node dispatch ------------------------------------------------------------

    def _rows_for(self, node: IROp, stage: str) -> Set[Row]:
        if isinstance(node, ScanOp):
            return set(self.storage.relation(node.relation, node.source).rows())
        if isinstance(node, JoinProjectOp):
            if self._granularity_matches(CompilationGranularity.JOIN, stage):
                return self._adaptive_rows(node, [node], stage)
            return self._interpret_plan(self._maybe_reorder_seed(node, stage))
        if isinstance(node, AggregateOp):
            return self._aggregate_rows(node, stage)
        if isinstance(node, UnionOp):
            if self._granularity_matches(CompilationGranularity.RULE, stage):
                join_children = [c for c in node.children if isinstance(c, JoinProjectOp)]
                if len(join_children) == len(node.children):
                    return self._adaptive_rows(node, join_children, stage)
            return self._union_children(node, stage)
        if isinstance(node, RelationUnionOp):
            if self._granularity_matches(CompilationGranularity.RELATION, stage):
                join_children = self._collect_join_leaves(node)
                if join_children is not None:
                    return self._adaptive_rows(node, join_children, stage)
            return self._union_children(node, stage)
        if isinstance(node, SequenceOp):  # pragma: no cover - not produced under inserts
            result: Set[Row] = set()
            for child in node.children:
                result |= self._rows_for(child, stage)
            return result
        raise TypeError(f"cannot produce rows for {node!r}")

    def _union_children(self, node: IROp, stage: str) -> Set[Row]:
        children = node.children
        if len(children) == 1:  # single-rule/single-subquery: no union copy
            return self._rows_for(children[0], stage)
        result: Set[Row] = set()
        for child in children:
            result |= self._rows_for(child, stage)
        return result

    def _collect_join_leaves(self, node: IROp) -> Optional[List[JoinProjectOp]]:
        """All σπ⋈ leaves below ``node``; None if any leaf is not compilable."""
        leaves: List[JoinProjectOp] = []
        stack: List[IROp] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, JoinProjectOp):
                leaves.append(current)
            elif isinstance(current, (UnionOp, RelationUnionOp, SequenceOp)):
                stack.extend(current.children)
            else:
                return None
        leaves.reverse()
        return leaves

    # -- adaptive path --------------------------------------------------------------

    def _granularity_matches(self, granularity: CompilationGranularity, stage: str) -> bool:
        if not self._jit_reordering:
            return False
        if stage == "seed":
            # Seeding is always optimized (when enabled) at the σπ⋈ level via
            # _maybe_reorder_seed; code generation only starts inside the loop.
            return False
        return self.config.granularity == granularity

    def _maybe_reorder_seed(self, node: JoinProjectOp, stage: str) -> JoinPlan:
        plan = node.plan
        if (
            stage == "seed"
            and self.optimizer is not None
            and self.config.optimize_seed
            and self.config.mode in (ExecutionMode.JIT, ExecutionMode.AOT)
        ):
            optimized, decision = self.optimizer.optimize_plan(
                plan,
                storage_cardinality_view(self.storage),
                storage_index_view(self.storage),
            )
            self.profile.record_reorder(node.node_id, plan.rule_name, "seed", decision)
            return optimized
        return plan

    def _interpret_plan(self, plan: JoinPlan) -> Set[Row]:
        if self.evaluator.executor == "vectorized":
            self.profile.record_vectorized()
        else:
            self.profile.record_interpreted()
        return self.evaluator.evaluate(plan)

    def _interpret_plans(self, plans: Sequence[JoinPlan]) -> Set[Row]:
        result: Set[Row] = set()
        for plan in plans:
            result |= self._interpret_plan(plan)
        return result

    def _reorder_plans(self, nodes: Sequence[JoinProjectOp], stage: str) -> List[JoinPlan]:
        assert self.optimizer is not None
        cardinalities = storage_cardinality_view(self.storage)
        indexes = storage_index_view(self.storage)
        ordered: List[JoinPlan] = []
        vectorized = self.config.executor == "vectorized"
        for node in nodes:
            optimized, decision = self.optimizer.optimize_plan(
                node.plan, cardinalities, indexes
            )
            self.profile.record_reorder(node.node_id, node.plan.rule_name, stage, decision)
            if vectorized:
                # Profile how the batch executor will run the chosen order.
                self.profile.record_block_plan(
                    node.plan.rule_name,
                    annotate_block_strategies(optimized, cardinalities, indexes),
                )
            ordered.append(optimized)
        return ordered

    def _adaptive_rows(self, node: IROp, join_nodes: Sequence[JoinProjectOp],
                       stage: str) -> Set[Row]:
        """The JIT safe-point logic for one node at the configured granularity."""
        if self.optimizer is None:
            return self._interpret_plans([n.plan for n in join_nodes])

        if self.compilation is None:
            # Pure IR regeneration (AOT+online or reorder-only execution).
            return self._interpret_plans(self._reorder_plans(join_nodes, "jit"))

        # The freshness test gates re-optimization: while the artifact's
        # compile-time cardinality snapshot is still representative, neither
        # the reordering algorithm nor the compiler runs again (paper §V-B2).
        current_snapshot = self._snapshots.take(self.storage, self._current_iteration)
        artifact = self.compilation.current_artifact(node.node_id)
        if artifact is not None:
            compiled_at = self.compilation.artifact_snapshot(node.node_id)
            if self.freshness.is_fresh(compiled_at, current_snapshot):
                self.profile.record_compiled()
                return artifact(self.storage)

        ordered_plans = self._reorder_plans(join_nodes, "jit")

        if self.compilation.is_compiling(node.node_id):
            # Asynchronous compilation still running: keep interpreting.
            return self._interpret_plans(ordered_plans)

        continuations: Optional[List[ArtifactFunction]] = None
        if self.config.compile_mode == "snippet":
            style = self.config.evaluator_style
            continuations = [
                _make_continuation(plan, style, self.config.executor)
                for plan in ordered_plans
            ]

        label = getattr(node, "relation", None) or getattr(node, "rule_name", None) or node.kind
        if self.config.async_compilation:
            self.tracer.event(
                "compile-async", node=node.node_id, label=str(label),
                backend=self.config.backend,
            )
            self.compilation.compile_async(
                node.node_id, ordered_plans, self.storage, current_snapshot,
                use_indexes=self.config.use_indexes, mode=self.config.compile_mode,
                continuations=continuations, label=str(label),
            )
            return self._interpret_plans(ordered_plans)

        with self.tracer.span(
            "compile", node=node.node_id, label=str(label),
            backend=self.config.backend,
        ):
            artifact = self.compilation.compile_now(
                node.node_id, ordered_plans, self.storage, current_snapshot,
                use_indexes=self.config.use_indexes, mode=self.config.compile_mode,
                continuations=continuations, label=str(label),
            )
        self.profile.record_compiled()
        return artifact(self.storage)

    # -- aggregation ------------------------------------------------------------------

    def _aggregate_rows(self, node: AggregateOp, stage: str) -> Set[Row]:
        plan = node.plan
        if (
            stage == "seed"
            and self.optimizer is not None
            and self.config.optimize_seed
            and self.config.mode in (ExecutionMode.JIT, ExecutionMode.AOT)
        ):
            plan, decision = self.optimizer.optimize_plan(
                plan,
                storage_cardinality_view(self.storage),
                storage_index_view(self.storage),
            )
            self.profile.record_reorder(node.node_id, plan.rule_name, "seed", decision)

        # The rule AST stays raw; bindings are storage-domain (encoded
        # under interning).  Group keys therefore project through the plan's
        # value domain — variables pass through, raw head constants and
        # computed expressions are interned — while the aggregated values
        # decode to raw for the arithmetic and the result re-interns.
        symbols = self.storage.symbols
        head_terms = node.head_terms
        aggregate_positions: Dict[int, Aggregate] = {
            i: term for i, term in enumerate(head_terms) if isinstance(term, Aggregate)
        }
        key_terms = [
            (i, term) for i, term in enumerate(head_terms)
            if i not in aggregate_positions
        ]
        groups: Dict[Tuple, Dict[int, List]] = {}
        for bindings in self.evaluator.bindings(plan):
            key = tuple(
                bindings[term] if isinstance(term, Variable)
                else symbols.intern(evaluate_raw_term(term, bindings, symbols))
                for _i, term in key_terms
            )
            bucket = groups.setdefault(key, {i: [] for i in aggregate_positions})
            for i, aggregate in aggregate_positions.items():
                bucket[i].append(
                    symbols.resolve(aggregate.target.substitute(bindings))
                )

        self.profile.record_interpreted()
        out: Set[Row] = set()
        for key, collected in groups.items():
            key_iterator = iter(key)
            row: List = []
            for i, term in enumerate(head_terms):
                if i in aggregate_positions:
                    row.append(
                        symbols.intern(
                            evaluate_aggregate(
                                aggregate_positions[i].func, collected[i]
                            )
                        )
                    )
                else:
                    row.append(next(key_iterator))
            out.add(tuple(row))
        return out


def _make_continuation(plan: JoinPlan, style: str,
                       executor: str = "pushdown") -> ArtifactFunction:
    """A continuation that evaluates one plan through the interpreter."""

    def continuation(storage: StorageManager) -> Set[Row]:
        return SubqueryEvaluator(storage, style, executor=executor).evaluate(plan)

    return continuation

"""The freshness test (paper §V-B2).

Re-generating code has a cost, so before recompiling a higher-overhead target
Carac checks whether the relation cardinalities have changed *relative to
each other* by more than a tunable threshold since the plan currently in use
was compiled.  If not, the existing artifact keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.relational.statistics import CardinalitySnapshot, StatisticsCollector


@dataclass
class FreshnessTest:
    """Threshold test over relative cardinality change."""

    threshold: float = 0.2
    collector: Optional[StatisticsCollector] = None

    def is_stale(self, compiled_at: Optional[CardinalitySnapshot],
                 current: CardinalitySnapshot) -> bool:
        """True when the artifact compiled at ``compiled_at`` should be regenerated."""
        if compiled_at is None:
            return True
        collector = self.collector or StatisticsCollector()
        change = collector.relative_change(compiled_at, current)
        return change > self.threshold

    def is_fresh(self, compiled_at: Optional[CardinalitySnapshot],
                 current: CardinalitySnapshot) -> bool:
        return not self.is_stale(compiled_at, current)

"""The runtime join-order optimization (paper §IV).

Given one conjunctive sub-query (a :class:`~repro.relational.operators.JoinPlan`)
and a *live* view of relation cardinalities, the optimizer picks a left-deep
order of the positive atoms greedily:

1. Start with the cheapest atom: smallest cardinality, preferring the delta
   atom when its cardinality is competitive (it is usually the smallest and
   shrinks over time — and when it is empty the whole sub-query is empty, so
   putting it first short-circuits the join, the paper's iteration-7 example).
2. Repeatedly append the atom with the lowest estimated join cost against the
   current intermediate result, where cost combines the atom's cardinality,
   the number of join conditions with already-bound variables (constant
   reduction factor per condition), whether the joined column is indexed, and
   a penalty for Cartesian products (no shared variable).

Built-in literals and negated atoms are re-interleaved afterwards at the
earliest legal position, so the optimizer never produces an unsafe order.

The same algorithm serves every stage: ahead-of-time (only rule schema →
cardinalities all zero, selectivity/Cartesian avoidance decide), query
compile time (EDB cardinalities known) and just-in-time (delta and derived
cardinalities of the current iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Assignment, Atom
from repro.datalog.terms import Constant, Variable
from repro.ir.planning import legalize_literal_order
from repro.relational.columnar import choose_build_strategy
from repro.relational.operators import AtomSource, JoinPlan
from repro.relational.statistics import SelectivityModel
from repro.relational.storage import DatabaseKind, StorageManager

#: A cardinality view: (relation name, database kind) -> row count.
CardinalityView = Callable[[str, DatabaseKind], int]
#: An index view: (relation name, column) -> bool.
IndexView = Callable[[str, int], bool]


def storage_cardinality_view(storage: StorageManager) -> CardinalityView:
    """Cardinality view reading live counts straight from the storage layer."""

    def view(relation: str, kind: DatabaseKind) -> int:
        return storage.cardinality(relation, kind)

    return view


def storage_index_view(storage: StorageManager) -> IndexView:
    """Index view reading the registered indexes of the storage layer."""

    def view(relation: str, column: int) -> bool:
        return column in storage.registered_indexes(relation)

    return view


def zero_cardinality_view(relation: str, kind: DatabaseKind) -> int:
    """The ahead-of-time view when no facts are known yet (rules only)."""
    return 0


def no_index_view(relation: str, column: int) -> bool:
    return False


def annotate_block_strategies(
    plan: JoinPlan,
    cardinalities: CardinalityView,
    indexes: IndexView = no_index_view,
) -> Tuple[str, ...]:
    """Predict the batch executor's physical strategy per positive atom.

    Walks the plan in its (already optimized) order, tracking which
    variables are bound, and asks the same
    :func:`~repro.relational.columnar.choose_build_strategy` policy the
    vectorized hash-join applies at runtime: ``"scan"`` for an unkeyed atom,
    ``"index"`` when the single join column carries an index (the probe side
    is assumed narrower than the stored relation — the actual distinct-key
    count only exists at runtime), ``"build"`` otherwise.  Recorded next to
    each join-order decision so ``explain()`` shows how a reordered plan
    will be executed block-wise.
    """
    bound: Set[Variable] = set()
    strategies: List[str] = []
    for source in plan.sources:
        literal = source.literal
        if isinstance(literal, Assignment):
            bound.add(literal.target)
            continue
        if not isinstance(literal, Atom) or literal.negated:
            continue
        key_positions = [
            position
            for position, term in enumerate(literal.terms)
            if isinstance(term, Variable) and term in bound
        ]
        if not key_positions:
            strategies.append("scan")
        else:
            indexed = len(key_positions) == 1 and indexes(
                literal.relation, key_positions[0]
            )
            rows = cardinalities(literal.relation, source.kind or DatabaseKind.DERIVED)
            strategies.append(choose_build_strategy(0, rows, indexed))
        bound.update(literal.variables())
    return tuple(strategies)


@dataclass(frozen=True)
class OrderingDecision:
    """The outcome of one optimization call, for profiling and tests."""

    original_order: Tuple[str, ...]
    chosen_order: Tuple[str, ...]
    estimated_cost: float
    changed: bool
    #: Estimated intermediate-result cardinality *after* each join position
    #: of ``chosen_order`` (the optimizer's running ``intermediate`` under
    #: the selectivity model).  EXPLAIN ANALYZE compares these predictions
    #: against the actual per-operator row counts recorded in trace spans.
    estimated_rows: Tuple[float, ...] = ()


@dataclass
class JoinOrderOptimizer:
    """Cardinality/selectivity-driven join ordering.

    The optimizer is deliberately cheap — it runs potentially before every
    n-way join when the JIT compiles at the lowest granularity — so it uses
    only the three inputs the paper lists: input relation cardinality, index
    availability and a constant selectivity reduction factor.

    For sub-queries with at most ``exhaustive_limit`` positive atoms every
    left-deep order is costed and the cheapest wins (the factorial is tiny);
    longer rules — the paper mentions a 9-atom rule — fall back to the greedy
    construction.  Assignment literals participate in the cost model: once an
    order binds an assignment's inputs, its target counts as bound for the
    remaining atoms, which is what lets the optimizer turn a relation scan
    into an indexed membership probe (e.g. the Primes composite rule).
    """

    selectivity: SelectivityModel = field(default_factory=SelectivityModel)
    prefer_delta_first: bool = True
    exhaustive_limit: int = 6

    # -- cost helpers ----------------------------------------------------------

    def _atom_cardinality(self, source: AtomSource, cardinalities: CardinalityView) -> int:
        atom = source.literal
        assert isinstance(atom, Atom)
        kind = source.kind or DatabaseKind.DERIVED
        return cardinalities(atom.relation, kind)

    def _bound_conditions(self, atom: Atom, bound: Set[Variable]) -> int:
        """Number of equality conditions usable when joining ``atom`` next."""
        conditions = 0
        seen: Set[Variable] = set()
        for term in atom.terms:
            if isinstance(term, Constant):
                conditions += 1
            elif isinstance(term, Variable):
                if term in bound:
                    conditions += 1
                elif term in seen:
                    conditions += 1  # repeated variable within the atom
                seen.add(term)
        return conditions

    def _has_indexed_bound_column(self, atom: Atom, bound: Set[Variable],
                                  indexes: IndexView) -> bool:
        for position, term in enumerate(atom.terms):
            bound_here = isinstance(term, Constant) or (
                isinstance(term, Variable) and term in bound
            )
            if bound_here and indexes(atom.relation, position):
                return True
        return False

    # -- the algorithm ---------------------------------------------------------

    def _fire_assignments(self, bound: Set[Variable],
                          pending: List[Any]) -> None:
        """Add the targets of assignments whose inputs are bound (to fixpoint)."""
        changed = True
        while changed:
            changed = False
            for assignment in list(pending):
                if assignment.input_variables() <= bound:
                    bound.add(assignment.target)
                    pending.remove(assignment)
                    changed = True

    def _cost_of_order(
        self,
        order: Sequence[AtomSource],
        cardinalities: CardinalityView,
        indexes: IndexView,
        assignments: Sequence[Any],
    ) -> float:
        """Total estimated cost of evaluating ``order`` left to right."""
        bound: Set[Variable] = set()
        pending = list(assignments)
        self._fire_assignments(bound, pending)
        total = 0.0
        intermediate = 1.0
        for source in order:
            atom = source.literal
            assert isinstance(atom, Atom)
            cardinality = self._atom_cardinality(source, cardinalities)
            conditions = self._bound_conditions(atom, bound)
            indexed = self._has_indexed_bound_column(atom, bound, indexes)
            total += self.selectivity.join_cost(intermediate, cardinality, conditions, indexed)
            produced = self.selectivity.output_cardinality(cardinality, conditions)
            intermediate = intermediate * max(produced, 0.0)
            bound.update(atom.variables())
            self._fire_assignments(bound, pending)
        return total

    def _estimated_rows(
        self,
        order: Sequence[AtomSource],
        cardinalities: CardinalityView,
        indexes: IndexView,
        assignments: Sequence[Any],
    ) -> Tuple[float, ...]:
        """Per-position intermediate cardinalities of ``order`` (the same
        running estimate :meth:`_cost_of_order` tracks), recorded into the
        :class:`OrderingDecision` for EXPLAIN ANALYZE."""
        bound: Set[Variable] = set()
        pending = list(assignments)
        self._fire_assignments(bound, pending)
        intermediate = 1.0
        estimates: List[float] = []
        for source in order:
            atom = source.literal
            assert isinstance(atom, Atom)
            cardinality = self._atom_cardinality(source, cardinalities)
            conditions = self._bound_conditions(atom, bound)
            produced = self.selectivity.output_cardinality(cardinality, conditions)
            intermediate = intermediate * max(produced, 0.0)
            estimates.append(intermediate)
            bound.update(atom.variables())
            self._fire_assignments(bound, pending)
        return tuple(estimates)

    def _greedy_order(
        self,
        sources: Sequence[AtomSource],
        cardinalities: CardinalityView,
        indexes: IndexView,
        assignments: Sequence[Any],
    ) -> List[AtomSource]:
        remaining = list(sources)
        ordered: List[AtomSource] = []
        bound: Set[Variable] = set()
        pending = list(assignments)
        self._fire_assignments(bound, pending)
        intermediate = 1.0

        def candidate_key(source: AtomSource) -> Tuple[float, int]:
            atom = source.literal
            assert isinstance(atom, Atom)
            cardinality = self._atom_cardinality(source, cardinalities)
            conditions = self._bound_conditions(atom, bound)
            indexed = self._has_indexed_bound_column(atom, bound, indexes)
            cost = self.selectivity.join_cost(intermediate, cardinality, conditions, indexed)
            delta_preference = 0 if (self.prefer_delta_first and source.is_delta()) else 1
            return (cost, delta_preference)

        while remaining:
            best = min(remaining, key=candidate_key)
            atom = best.literal
            assert isinstance(atom, Atom)
            cardinality = self._atom_cardinality(best, cardinalities)
            conditions = self._bound_conditions(atom, bound)
            produced = self.selectivity.output_cardinality(cardinality, conditions)
            intermediate = intermediate * max(produced, 0.0)
            ordered.append(best)
            remaining.remove(best)
            bound.update(atom.variables())
            self._fire_assignments(bound, pending)
        return ordered

    def order_sources(
        self,
        sources: Sequence[AtomSource],
        cardinalities: CardinalityView,
        indexes: IndexView = no_index_view,
        assignments: Sequence[Any] = (),
    ) -> Tuple[List[AtomSource], float]:
        """Order positive-atom sources; returns (order, estimated cost).

        Exhaustive for small sub-queries, greedy beyond ``exhaustive_limit``.
        """
        sources = list(sources)
        if len(sources) <= 1:
            return sources, 0.0
        if len(sources) <= self.exhaustive_limit:
            import itertools

            best_order: Optional[Tuple[AtomSource, ...]] = None
            best_cost = float("inf")
            for permutation in itertools.permutations(sources):
                cost = self._cost_of_order(permutation, cardinalities, indexes, assignments)
                if cost < best_cost:
                    best_cost = cost
                    best_order = permutation
            assert best_order is not None
            return list(best_order), best_cost
        ordered = self._greedy_order(sources, cardinalities, indexes, assignments)
        return ordered, self._cost_of_order(ordered, cardinalities, indexes, assignments)

    def optimize_plan(
        self,
        plan: JoinPlan,
        cardinalities: CardinalityView,
        indexes: IndexView = no_index_view,
    ) -> Tuple[JoinPlan, OrderingDecision]:
        """Return a re-ordered copy of ``plan`` plus the decision record."""
        positive = [
            s for s in plan.sources
            if isinstance(s.literal, Atom) and not s.literal.negated
        ]
        others = [
            s.literal for s in plan.sources
            if not (isinstance(s.literal, Atom) and not s.literal.negated)
        ]
        if len(positive) <= 1:
            decision = OrderingDecision(
                original_order=tuple(a.literal.relation for a in positive),  # type: ignore[union-attr]
                chosen_order=tuple(a.literal.relation for a in positive),  # type: ignore[union-attr]
                estimated_cost=0.0,
                changed=False,
                estimated_rows=self._estimated_rows(
                    positive, cardinalities, indexes, ()
                ),
            )
            return plan, decision

        from repro.datalog.literals import Assignment

        assignments = [literal for literal in others if isinstance(literal, Assignment)]
        ordered, cost = self.order_sources(positive, cardinalities, indexes, assignments)
        sources = legalize_literal_order(ordered, others)
        new_plan = JoinPlan(
            head_relation=plan.head_relation,
            head_terms=plan.head_terms,
            sources=sources,
            rule_name=plan.rule_name,
        )
        original = tuple(
            s.literal.relation for s in positive  # type: ignore[union-attr]
        )
        chosen = tuple(
            s.literal.relation for s in ordered  # type: ignore[union-attr]
        )
        decision = OrderingDecision(
            original_order=original,
            chosen_order=chosen,
            estimated_cost=cost,
            changed=[s.literal for s in positive] != [s.literal for s in ordered],
            estimated_rows=self._estimated_rows(
                ordered, cardinalities, indexes, assignments
            ),
        )
        return new_plan, decision

    def optimize_with_storage(self, plan: JoinPlan, storage: StorageManager) -> JoinPlan:
        """Convenience: optimize against live storage cardinalities/indexes."""
        optimized, _decision = self.optimize_plan(
            plan,
            storage_cardinality_view(storage),
            storage_index_view(storage),
        )
        return optimized

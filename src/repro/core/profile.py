"""Runtime profiling: what the engine did while evaluating a program.

The profile is both a debugging aid and the raw material of the evaluation
harness: per-stratum iteration counts, per-iteration delta cardinalities,
reorder decisions, compilation events and where each sub-query execution was
served from (interpreter vs compiled artifact).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.join_order import OrderingDecision
from repro.relational.statistics import CardinalitySnapshot


@dataclass
class IterationRecord:
    """One semi-naive iteration of one stratum."""

    stratum: int
    iteration: int
    promoted: int
    delta_cardinalities: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0


@dataclass
class ReorderRecord:
    """One join-order decision taken at runtime (or ahead of time)."""

    node_id: int
    rule_name: str
    stage: str                      # "seed", "jit", "aot"
    decision: OrderingDecision


@dataclass
class ExecutionSource:
    """Counts of how sub-query executions were served."""

    interpreted: int = 0
    compiled: int = 0
    vectorized: int = 0

    def total(self) -> int:
        return self.interpreted + self.compiled + self.vectorized


@dataclass
class RuntimeProfile:
    """Everything observed during one program evaluation."""

    iterations: List[IterationRecord] = field(default_factory=list)
    reorders: List[ReorderRecord] = field(default_factory=list)
    sources: ExecutionSource = field(default_factory=ExecutionSource)
    compile_events: List[object] = field(default_factory=list)
    wall_seconds: float = 0.0
    result_sizes: Dict[str, int] = field(default_factory=dict)
    #: Vectorized-executor counters: evaluated batches and the physical
    #: build strategy each keyed batch join took ("index" probe of an
    #: existing per-column index vs fresh "build" of a hash table).
    block_joins: Dict[str, int] = field(default_factory=dict)
    #: Per-plan strategy predictions taken alongside join-order decisions
    #: (rule name -> one strategy per positive atom, in chosen order).
    block_plans: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    #: Dictionary-encoding counters (interned symbols, rows encoded at the
    #: load/mutation boundary, rows decoded at the result boundary); empty
    #: when the evaluation ran with ``interning=False``.
    symbol_stats: Dict[str, int] = field(default_factory=dict)
    #: Cache probe outcomes ("hit"/"miss" counts) observed during the
    #: evaluation — currently the per-iteration SnapshotCache; folded into
    #: the telemetry registry as ``snapshot_cache_total``.
    cache_probes: Dict[str, int] = field(default_factory=dict)
    #: Times a requested worker pool was substituted for a safer kind
    #: (e.g. process → thread when compiled plans allocate symbols).
    pool_degradations: int = 0
    #: Shard workers that died mid-stratum (each one also counts a pool
    #: degradation: the stratum re-ran on the next-safer pool kind).
    worker_failures: int = 0

    # -- recording -------------------------------------------------------------

    def record_iteration(self, stratum: int, iteration: int, promoted: int,
                         snapshot: Optional[CardinalitySnapshot],
                         seconds: float) -> None:
        self.iterations.append(
            IterationRecord(
                stratum=stratum,
                iteration=iteration,
                promoted=promoted,
                delta_cardinalities=dict(snapshot.delta) if snapshot else {},
                seconds=seconds,
            )
        )

    def record_reorder(self, node_id: int, rule_name: str, stage: str,
                       decision: OrderingDecision) -> None:
        self.reorders.append(ReorderRecord(node_id, rule_name, stage, decision))

    def record_interpreted(self) -> None:
        self.sources.interpreted += 1

    def record_compiled(self) -> None:
        self.sources.compiled += 1

    def record_vectorized(self) -> None:
        self.sources.vectorized += 1

    def record_block_plan(self, rule_name: str,
                          strategies: Tuple[str, ...]) -> None:
        self.block_plans.append((rule_name, strategies))

    def record_symbol_stats(self, symbols) -> None:
        """Snapshot a symbol table's counters into the profile."""
        if symbols is None or getattr(symbols, "identity", True):
            return
        self.symbol_stats = {
            "symbols": len(symbols),
            "rows_encoded": symbols.rows_encoded,
            "rows_decoded": symbols.rows_decoded,
        }

    def absorb_block_stats(self, stats: Optional[Dict[str, int]]) -> None:
        """Fold one evaluator's batch counters into the profile."""
        if not stats:
            return
        for key, value in stats.items():
            self.block_joins[key] = self.block_joins.get(key, 0) + value

    def record_cache_probes(self, hits: int, misses: int) -> None:
        """Fold cache hit/miss counts into the profile."""
        if hits:
            self.cache_probes["hit"] = self.cache_probes.get("hit", 0) + hits
        if misses:
            self.cache_probes["miss"] = self.cache_probes.get("miss", 0) + misses

    # -- summaries -------------------------------------------------------------

    def iteration_count(self) -> int:
        return len(self.iterations)

    def reorder_count(self, changed_only: bool = False) -> int:
        if not changed_only:
            return len(self.reorders)
        return sum(1 for record in self.reorders if record.decision.changed)

    def total_compile_seconds(self) -> float:
        return sum(getattr(event, "seconds", 0.0) for event in self.compile_events)

    def summary(self) -> Dict[str, object]:
        """A compact dictionary used by the benchmark harness and examples."""
        return {
            "wall_seconds": self.wall_seconds,
            "iterations": self.iteration_count(),
            "reorders": self.reorder_count(),
            "reorders_changed": self.reorder_count(changed_only=True),
            "compilations": len(self.compile_events),
            "compile_seconds": self.total_compile_seconds(),
            "subqueries_interpreted": self.sources.interpreted,
            "subqueries_compiled": self.sources.compiled,
            "subqueries_vectorized": self.sources.vectorized,
            "block_joins": dict(self.block_joins),
            "symbol_stats": dict(self.symbol_stats),
            "result_sizes": dict(self.result_sizes),
        }

"""Datalog frontend: terms, atoms, rules, the embedded DSL, parsing and static analysis.

This package is the substrate the Carac reproduction builds on: it models the
abstract syntax of Datalog programs (extended with stratified negation,
aggregation and arithmetic built-ins), provides both an embedded DSL and a
textual parser for constructing programs, and implements the static analyses
every Datalog engine needs before evaluation can start: rule-safety checking,
the predicate dependency (precedence) graph, stratification, and simple
source-level rewrites such as alias elimination.
"""

from repro.datalog.terms import (
    Aggregate,
    BinaryExpression,
    Constant,
    Expression,
    Term,
    Variable,
)
from repro.datalog.literals import Atom, Assignment, Comparison, Literal
from repro.datalog.rules import Fact, Rule
from repro.datalog.program import DatalogProgram, RelationDeclaration
from repro.datalog.dsl import Program, RelationHandle
from repro.datalog.parser import ParseError, parse_program
from repro.datalog.safety import SafetyError, check_rule_safety, check_program_safety
from repro.datalog.stratification import (
    StratificationError,
    Stratifier,
    precedence_graph,
    stratify,
)
from repro.datalog.rewrite import eliminate_aliases, reorder_rule_body

__all__ = [
    "Aggregate",
    "Assignment",
    "Atom",
    "BinaryExpression",
    "Comparison",
    "Constant",
    "DatalogProgram",
    "Expression",
    "Fact",
    "Literal",
    "ParseError",
    "Program",
    "RelationDeclaration",
    "RelationHandle",
    "Rule",
    "SafetyError",
    "StratificationError",
    "Stratifier",
    "Term",
    "Variable",
    "check_program_safety",
    "check_rule_safety",
    "eliminate_aliases",
    "parse_program",
    "precedence_graph",
    "reorder_rule_body",
    "stratify",
]

"""The embedded Datalog DSL: Carac's user-facing API, in Python.

The paper's running example (Fig. 1a) declares relations and variables on a
``Program`` object and writes rules with ``:-``.  The Python equivalent::

    from repro import Program

    program = Program("cspa")
    VaFlow, VAlias, MAlias, Assign, Derefr = program.relations(
        "VaFlow", "VAlias", "MAlias", "Assign", "Derefr", arity=2
    )
    v0, v1, v2, v3 = program.variables("v0", "v1", "v2", "v3")

    VaFlow(v1, v2) <= MAlias(v3, v2) & Assign(v1, v3)
    VaFlow(v1, v2) <= VaFlow(v3, v2) & VaFlow(v1, v3)
    ...
    Assign.add_fact(1, 2)
    result = program.solve("VaFlow")

``head <= body`` registers the rule with the program immediately (rules are
values too, mirroring Carac's first-class constraints: ``program.rule(head,
[a, b, c])`` is the explicit form).  ``&`` chains body literals, ``~atom``
negates, and :func:`repro.datalog.literals.let` / arithmetic on variables
provide the built-ins used by the microbenchmark programs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.literals import (
    Assignment,
    Atom,
    Comparison,
    Conjunction,
    Literal,
    PendingRule,
)
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Fact, Rule
from repro.datalog.terms import Variable


class DSLAtom(Atom):
    """An atom created through the DSL; ``<=`` registers the rule immediately."""

    _program: "Program"

    def __init__(self, program: "Program", relation: str, terms: Tuple[Any, ...],
                 negated: bool = False) -> None:
        super().__init__(relation, terms, negated)
        object.__setattr__(self, "_program", program)

    def negate(self) -> "DSLAtom":
        return DSLAtom(self._program, self.relation, self.terms, not self.negated)

    def __le__(self, body: Any) -> Rule:  # type: ignore[override]
        conjunction = Conjunction.coerce(body)
        return self._program.rule(self, list(conjunction.literals))


class RelationHandle:
    """A named relation bound to a :class:`Program`.

    Calling the handle with terms produces an atom; ``add_fact`` inserts a
    ground tuple into the program's extensional data for this relation.
    """

    def __init__(self, program: "Program", name: str, arity: Optional[int] = None) -> None:
        self._program = program
        self.name = name
        self.arity = arity

    def __call__(self, *terms: Any) -> DSLAtom:
        if self.arity is None:
            self.arity = len(terms)
            self._program.datalog.declare_relation(self.name, self.arity)
        elif len(terms) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, got {len(terms)} terms"
            )
        return DSLAtom(self._program, self.name, tuple(terms))

    def add_fact(self, *values: Any) -> Fact:
        """Add a single ground fact to this relation."""
        if self.arity is None:
            self.arity = len(values)
        return self._program.datalog.add_fact(self.name, values)

    def add_facts(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-add ground facts; returns the number inserted."""
        count = 0
        for row in rows:
            self.add_fact(*row)
            count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RelationHandle({self.name!r}, arity={self.arity})"


class Program:
    """User-facing Datalog program builder (and, lazily, runner).

    The class intentionally mixes declaration and execution convenience:
    ``solve()`` instantiates an execution engine from :mod:`repro.engine`
    with the supplied (or default) configuration, evaluates the program to
    fixpoint, and returns the requested relation.  All heavy lifting lives in
    the engine; this object only holds the AST.
    """

    def __init__(self, name: str = "program") -> None:
        self.datalog = DatalogProgram(name)
        self._relation_handles: Dict[str, RelationHandle] = {}
        self._variable_counter = 0

    # -- declaration ----------------------------------------------------------

    def relation(self, name: str, arity: Optional[int] = None) -> RelationHandle:
        """Declare (or fetch) a relation handle by name."""
        handle = self._relation_handles.get(name)
        if handle is None:
            handle = RelationHandle(self, name, arity)
            if arity is not None:
                self.datalog.declare_relation(name, arity)
            self._relation_handles[name] = handle
        elif arity is not None and handle.arity is None:
            handle.arity = arity
            self.datalog.declare_relation(name, arity)
        return handle

    def relations(self, *names: str, arity: Optional[int] = None) -> List[RelationHandle]:
        """Declare several relations at once (all with the same arity)."""
        return [self.relation(name, arity) for name in names]

    def variable(self, name: Optional[str] = None) -> Variable:
        """Create a fresh logic variable."""
        if name is None:
            self._variable_counter += 1
            name = f"_v{self._variable_counter}"
        return Variable(name)

    def variables(self, *names: str) -> List[Variable]:
        return [self.variable(name) for name in names]

    def rule(self, head: Atom, body: Sequence[Literal], name: str = "") -> Rule:
        """Register a rule explicitly (the ``<=`` operator calls this)."""
        plain_head = Atom(head.relation, head.terms)
        plain_body: List[Literal] = []
        for literal in body:
            if isinstance(literal, DSLAtom):
                plain_body.append(Atom(literal.relation, literal.terms, literal.negated))
            else:
                plain_body.append(literal)
        return self.datalog.add_rule(plain_head, plain_body, name)

    def fact(self, relation: str, *values: Any) -> Fact:
        """Add a ground fact by relation name."""
        return self.datalog.add_fact(relation, values)

    # -- execution (lazy import of the engine to avoid layering cycles) -------

    def solve(self, relation: Optional[str] = None, config: Any = None) -> Any:
        """Evaluate the program to fixpoint.

        Returns the set of tuples of ``relation`` if given, otherwise a dict
        of every IDB relation to its tuples.  ``config`` is an optional
        :class:`repro.engine.EngineConfig`.
        """
        from repro.engine import EngineConfig, ExecutionEngine

        engine = ExecutionEngine(self.datalog, config or EngineConfig())
        result = engine.run()
        if relation is None:
            return result
        return result.get(relation, set())

    def engine(self, config: Any = None) -> Any:
        """Build (but do not run) an execution engine for this program."""
        from repro.engine import EngineConfig, ExecutionEngine

        return ExecutionEngine(self.datalog, config or EngineConfig())

    def session(self, config: Any = None) -> Any:
        """Build a long-lived :class:`repro.incremental.IncrementalSession`.

        The session snapshots the program as currently declared; facts added
        through the DSL afterwards do not reach it — use the session's
        ``insert_facts`` / ``retract_facts`` instead.
        """
        from repro.engine import EngineConfig
        from repro.incremental import IncrementalSession

        return IncrementalSession(self.datalog, config or EngineConfig())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Program({self.datalog!r})"

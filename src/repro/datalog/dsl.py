"""The embedded Datalog DSL: Carac's user-facing API, in Python.

The paper's running example (Fig. 1a) declares relations and variables on a
``Program`` object and writes rules with ``:-``.  The Python equivalent::

    from repro import Program

    program = Program("cspa")
    VaFlow, VAlias, MAlias, Assign, Derefr = program.relations(
        "VaFlow", "VAlias", "MAlias", "Assign", "Derefr", arity=2
    )
    v0, v1, v2, v3 = program.variables("v0", "v1", "v2", "v3")

    VaFlow(v1, v2) <= MAlias(v3, v2) & Assign(v1, v3)
    VaFlow(v1, v2) <= VaFlow(v3, v2) & VaFlow(v1, v3)
    ...
    Assign.add_fact(1, 2)
    result = program.database().query("VaFlow")   # a QueryResult

``head <= body`` registers the rule with the program immediately (rules are
values too, mirroring Carac's first-class constraints: ``program.rule(head,
[a, b, c])`` is the explicit form).  ``&`` chains body literals, ``~atom``
negates, and :func:`repro.datalog.literals.let` / arithmetic on variables
provide the built-ins used by the microbenchmark programs.
"""

from __future__ import annotations

import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    overload,
)

if TYPE_CHECKING:  # execution layers sit above the DSL; import only for types
    from repro.api.database import Database
    from repro.core.config import EngineConfig
    from repro.engine.engine import ExecutionEngine
    from repro.incremental.session import IncrementalSession
    from repro.relational.relation import Row

from repro.datalog.literals import (
    Assignment,
    Atom,
    Comparison,
    Conjunction,
    Literal,
    PendingRule,
)
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Fact, Rule
from repro.datalog.terms import Variable


class DSLAtom(Atom):
    """An atom created through the DSL; ``<=`` registers the rule immediately."""

    _program: "Program"

    def __init__(self, program: "Program", relation: str, terms: Tuple[Any, ...],
                 negated: bool = False) -> None:
        super().__init__(relation, terms, negated)
        object.__setattr__(self, "_program", program)

    def negate(self) -> "DSLAtom":
        return DSLAtom(self._program, self.relation, self.terms, not self.negated)

    def __le__(self, body: Any) -> Rule:  # type: ignore[override]
        conjunction = Conjunction.coerce(body)
        return self._program.rule(self, list(conjunction.literals))


class RelationHandle:
    """A named relation bound to a :class:`Program`.

    Calling the handle with terms produces an atom; ``add_fact`` inserts a
    ground tuple into the program's extensional data for this relation.
    """

    def __init__(self, program: "Program", name: str, arity: Optional[int] = None,
                 columns: Optional[Sequence[str]] = None) -> None:
        self._program = program
        self.name = name
        if columns is not None:
            columns = tuple(columns)
            if arity is None:
                arity = len(columns)
        self.arity = arity
        self.columns = columns

    def __call__(self, *terms: Any) -> DSLAtom:
        if self.arity is None:
            self.arity = len(terms)
            self._program.datalog.declare_relation(self.name, self.arity)
        elif len(terms) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, got {len(terms)} terms"
            )
        return DSLAtom(self._program, self.name, tuple(terms))

    def add_fact(self, *values: Any) -> Fact:
        """Add a single ground fact to this relation."""
        if self.arity is None:
            self.arity = len(values)
        return self._program.datalog.add_fact(self.name, values)

    def add_facts(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-add ground facts; returns the number inserted."""
        count = 0
        for row in rows:
            self.add_fact(*row)
            count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RelationHandle({self.name!r}, arity={self.arity})"


class Program:
    """User-facing Datalog program builder (and, lazily, runner).

    The class intentionally mixes declaration and execution convenience:
    ``solve()`` instantiates an execution engine from :mod:`repro.engine`
    with the supplied (or default) configuration, evaluates the program to
    fixpoint, and returns the requested relation.  All heavy lifting lives in
    the engine; this object only holds the AST.
    """

    def __init__(self, name: str = "program") -> None:
        self.datalog = DatalogProgram(name)
        self._relation_handles: Dict[str, RelationHandle] = {}
        self._variable_counter = 0

    # -- declaration ----------------------------------------------------------

    def relation(self, name: str, arity: Optional[int] = None,
                 columns: Optional[Sequence[str]] = None) -> RelationHandle:
        """Declare (or fetch) a relation handle by name.

        ``columns`` optionally names the relation's columns (implying the
        arity); the names flow into every ``QueryResult`` schema for this
        relation (``.to_dicts()`` / ``.to_columns()`` keys).
        """
        handle = self._relation_handles.get(name)
        if handle is None:
            handle = RelationHandle(self, name, arity, columns)
            if handle.arity is not None:
                self.datalog.declare_relation(name, handle.arity, handle.columns)
            self._relation_handles[name] = handle
        else:
            if arity is not None and handle.arity is None:
                handle.arity = arity
                self.datalog.declare_relation(name, arity)
            if columns is not None:
                handle.columns = tuple(columns)
                if handle.arity is None:
                    handle.arity = len(handle.columns)
                self.datalog.declare_relation(
                    name, handle.arity, handle.columns
                )
        return handle

    def relations(self, *names: str, arity: Optional[int] = None) -> List[RelationHandle]:
        """Declare several relations at once (all with the same arity)."""
        return [self.relation(name, arity) for name in names]

    def variable(self, name: Optional[str] = None) -> Variable:
        """Create a fresh logic variable."""
        if name is None:
            self._variable_counter += 1
            name = f"_v{self._variable_counter}"
        return Variable(name)

    def variables(self, *names: str) -> List[Variable]:
        return [self.variable(name) for name in names]

    def rule(self, head: Atom, body: Sequence[Literal], name: str = "") -> Rule:
        """Register a rule explicitly (the ``<=`` operator calls this)."""
        plain_head = Atom(head.relation, head.terms)
        plain_body: List[Literal] = []
        for literal in body:
            if isinstance(literal, DSLAtom):
                plain_body.append(Atom(literal.relation, literal.terms, literal.negated))
            else:
                plain_body.append(literal)
        return self.datalog.add_rule(plain_head, plain_body, name)

    def fact(self, relation: str, *values: Any) -> Fact:
        """Add a ground fact by relation name."""
        return self.datalog.add_fact(relation, values)

    # -- execution (lazy import of the engine to avoid layering cycles) -------

    def database(self, config: Optional["EngineConfig"] = None) -> "Database":
        """Open a :class:`repro.Database` over this program.

        The single entry point of the public API: ``program.database()``,
        then ``.connect()`` for stateful connections or ``.query()`` for
        one-shot reads returning :class:`~repro.api.result.QueryResult`
        objects.
        """
        from repro.api.database import Database

        return Database(self.datalog, config)

    @overload
    def solve(self, relation: str,
              config: Optional["EngineConfig"] = None) -> "Set[Row]": ...

    @overload
    def solve(self, relation: None = None,
              config: Optional["EngineConfig"] = None) -> "Dict[str, Set[Row]]": ...

    def solve(self, relation: Optional[str] = None,
              config: Optional["EngineConfig"] = None):
        """Deprecated: use ``program.database(config).query(relation)``.

        Evaluates the program to fixpoint through the :class:`repro.Database`
        API and returns the legacy shapes: the set of tuples of ``relation``
        when given (empty set when the relation is unknown *or extensional*,
        exactly as before — the legacy dict covered IDB relations only),
        otherwise a dict of every IDB relation to its tuples — the same
        relations in every execution mode.
        """
        warnings.warn(
            "Program.solve() is deprecated; use program.database(config)"
            ".query(relation), which returns QueryResult objects",
            DeprecationWarning,
            stacklevel=2,
        )
        database = self.database(config)
        if relation is None:
            return database.query().to_sets()
        if relation not in self.datalog.idb_relations():
            return set()
        return database.query(relation).to_set()

    def engine(self, config: Optional["EngineConfig"] = None) -> "ExecutionEngine":
        """Build (but do not run) an execution engine for this program."""
        from repro.engine import ExecutionEngine

        return ExecutionEngine(self.datalog, config)

    def session(self, config: Optional["EngineConfig"] = None) -> "IncrementalSession":
        """Build a long-lived :class:`repro.incremental.IncrementalSession`.

        The session snapshots the program as currently declared; facts added
        through the DSL afterwards do not reach it — use the session's
        ``insert_facts`` / ``retract_facts`` instead.  Most callers want
        :meth:`database` and ``connect()`` instead, whose connections wrap a
        session and return :class:`~repro.api.result.QueryResult` objects.
        """
        from repro.incremental import IncrementalSession

        return IncrementalSession(self.datalog, config)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Program({self.datalog!r})"

"""Stable structural fingerprints of Datalog programs.

The incremental subsystem caches query results across many fixpoint runs of
one long-lived session, and those caches must never survive a change to the
*logic* of the program (its declarations and rules).  ``repr`` of the AST is
unsuitable as a cache key: it is a debug aid with no stability contract, and
Python's per-process hash randomisation rules out ``hash``.  This module
canonicalises the AST into a deterministic byte string and hashes it with
SHA-256, so the fingerprint is stable across processes and Python versions.

Facts are *not* part of the default fingerprint — the whole point of an
incremental session is that the fact base changes while the program stands
still; fact-dependent invalidation is handled by the storage layer's
per-relation generation counters (:meth:`repro.relational.storage.StorageManager.generation`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, List

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Fact, Rule
from repro.datalog.terms import (
    Aggregate,
    BinaryExpression,
    Constant,
    Term,
    Variable,
)


def _canonical_value(value: Any) -> str:
    """A type-tagged rendering of a constant value (1 != "1" != 1.0)."""
    if isinstance(value, bool):  # bool before int: True is an int
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{value!r}"
    if isinstance(value, tuple):
        return "t:(" + ",".join(_canonical_value(v) for v in value) + ")"
    return f"o:{type(value).__name__}:{value!r}"


def _canonical_term(term: Term) -> str:
    if isinstance(term, Variable):
        return f"V({term.name})"
    if isinstance(term, Constant):
        return f"C({_canonical_value(term.value)})"
    if isinstance(term, BinaryExpression):
        return (
            f"E({term.op},{_canonical_term(term.left)},{_canonical_term(term.right)})"
        )
    if isinstance(term, Aggregate):
        return f"G({term.func},{_canonical_term(term.target)})"
    raise TypeError(f"cannot fingerprint term {term!r}")


def _canonical_literal(literal: Literal) -> str:
    if isinstance(literal, Atom):
        sign = "!" if literal.negated else ""
        args = ",".join(_canonical_term(t) for t in literal.terms)
        return f"{sign}{literal.relation}({args})"
    if isinstance(literal, Comparison):
        return (
            f"cmp({literal.op},{_canonical_term(literal.left)},"
            f"{_canonical_term(literal.right)})"
        )
    if isinstance(literal, Assignment):
        return (
            f"asn({_canonical_term(literal.target)},"
            f"{_canonical_term(literal.expression)})"
        )
    raise TypeError(f"cannot fingerprint literal {literal!r}")


def canonical_rule(rule: Rule) -> str:
    """A deterministic one-line rendering of one rule (order-preserving)."""
    body = ",".join(_canonical_literal(l) for l in rule.body)
    return f"{_canonical_literal(rule.head)}:-{body}"


def canonical_fact(fact: Fact) -> str:
    values = ",".join(_canonical_value(v) for v in fact.values)
    return f"{fact.relation}({values})"


def canonical_program(program: DatalogProgram, include_facts: bool = False) -> str:
    """The canonical text the fingerprint hashes.

    Rule order is preserved (it is semantically irrelevant but performance
    relevant, and the session's AOT decisions depend on it); declarations are
    sorted by name so dict insertion order cannot leak into the key.
    """
    lines: List[str] = [f"program:{program.name}"]
    for name in sorted(program.relations):
        decl = program.relations[name]
        lines.append(f"rel:{name}/{decl.arity}")
    for rule in program.rules:
        lines.append("rule:" + canonical_rule(rule))
    if include_facts:
        for fact in sorted(canonical_fact(f) for f in program.facts):
            lines.append("fact:" + fact)
    return "\n".join(lines)


def fingerprint_program(program: DatalogProgram, include_facts: bool = False) -> str:
    """SHA-256 hex digest of the program's canonical form."""
    text = canonical_program(program, include_facts=include_facts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_rules(rules: Iterable[Rule]) -> str:
    """Fingerprint of a bare rule sequence (used by plan-level caches)."""
    text = "\n".join(canonical_rule(rule) for rule in rules)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

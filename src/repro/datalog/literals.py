"""Literals: the elements of a rule body (and rule heads, which are atoms).

Three kinds of literal exist:

* :class:`Atom` — a (possibly negated) reference to a relation with a list of
  argument terms.  Positive atoms generate joins, negated atoms generate
  anti-joins against a lower stratum.
* :class:`Comparison` — a built-in filter such as ``X < Y + 1``.
* :class:`Assignment` — a built-in binding such as ``Z := X + Y`` that extends
  the current variable bindings with a computed value.

The planner treats comparisons and assignments as zero-cardinality atoms that
must be placed after the atoms binding their input variables; the join-order
optimizer therefore never has to special-case them beyond a dependency check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Mapping, Sequence, Tuple, Union

from repro.datalog.terms import (
    Aggregate,
    BinaryExpression,
    Constant,
    Term,
    Variable,
    as_term,
)


class Literal:
    """Base class of all rule-body literals."""

    __slots__ = ()

    def variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    def is_relational(self) -> bool:
        """True for atoms (positive or negated), False for built-ins."""
        return False


@dataclass(frozen=True)
class Atom(Literal):
    """A relational atom ``R(t1, ..., tk)``, optionally negated.

    ``relation`` is the relation *name*; resolution of names to storage
    happens later, in the relational layer, so the AST stays independent of
    any particular engine instance.
    """

    relation: str
    terms: Tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(as_term(t) for t in self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def is_relational(self) -> bool:
        return True

    def variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for term in self.terms:
            result = result | term.variables()
        return result

    def constant_positions(self) -> Tuple[int, ...]:
        """Positions of the atom's arguments that are constants."""
        return tuple(
            i for i, term in enumerate(self.terms) if isinstance(term, Constant)
        )

    def variable_positions(self) -> dict[Variable, list[int]]:
        """Map each variable to the (possibly repeated) positions it occupies."""
        positions: dict[Variable, list[int]] = {}
        for i, term in enumerate(self.terms):
            if isinstance(term, Variable):
                positions.setdefault(term, []).append(i)
        return positions

    def negate(self) -> "Atom":
        """Return the same atom with the negation flag flipped."""
        return Atom(self.relation, self.terms, negated=not self.negated)

    def __invert__(self) -> "Atom":
        return self.negate()

    def __and__(self, other: Union["Atom", "Comparison", "Assignment", "Conjunction"]) -> "Conjunction":
        return Conjunction((self,)) & other

    def __le__(self, body: Any) -> "PendingRule":
        """DSL sugar: ``head(...) <= body`` builds a rule (resolved by the DSL)."""
        return PendingRule(self, Conjunction.coerce(body))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        prefix = "!" if self.negated else ""
        args = ", ".join(repr(t) for t in self.terms)
        return f"{prefix}{self.relation}({args})"


_COMPARISON_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class Comparison(Literal):
    """A built-in comparison filter, e.g. ``X < Y``.

    Both sides are expressions; all their variables must be bound by earlier
    literals in the chosen evaluation order (rule safety guarantees at least
    one such order exists).
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPERATORS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")
        object.__setattr__(self, "left", as_term(self.left))
        object.__setattr__(self, "right", as_term(self.right))

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, bindings: Mapping[Variable, Any]) -> bool:
        """Evaluate the comparison under complete bindings."""
        func = _COMPARISON_OPERATORS[self.op]
        return bool(func(self.left.substitute(bindings), self.right.substitute(bindings)))

    def __and__(self, other: Any) -> "Conjunction":
        return Conjunction((self,)) & other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Assignment(Literal):
    """A built-in binding literal ``target := expression``.

    The expression's variables must be bound before the assignment executes;
    the target variable becomes bound afterwards.  Re-binding an already bound
    variable degenerates to an equality filter.
    """

    target: Variable
    expression: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "expression", as_term(self.expression))

    def variables(self) -> FrozenSet[Variable]:
        return frozenset((self.target,)) | self.expression.variables()

    def input_variables(self) -> FrozenSet[Variable]:
        """Variables that must be bound before this assignment can run."""
        return self.expression.variables()

    def evaluate(self, bindings: Mapping[Variable, Any]) -> Any:
        return self.expression.substitute(bindings)

    def __and__(self, other: Any) -> "Conjunction":
        return Conjunction((self,)) & other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.target!r} := {self.expression!r}"


def comparison_operator(op: str) -> Callable[[Any, Any], bool]:
    """The Python callable behind one comparison operator symbol.

    Public so batch evaluators can compile filters once per block instead of
    re-dispatching through :meth:`Comparison.evaluate` per row.
    """
    return _COMPARISON_OPERATORS[op]


def let(target: Variable, expression: Any) -> Assignment:
    """Convenience constructor for an :class:`Assignment` literal."""
    return Assignment(target, as_term(expression))


def compare(op: str, left: Any, right: Any) -> Comparison:
    """Convenience constructor for a :class:`Comparison` literal."""
    return Comparison(op, as_term(left), as_term(right))


@dataclass(frozen=True)
class Conjunction:
    """An ordered conjunction of body literals, built by the DSL's ``&``."""

    literals: Tuple[Literal, ...] = field(default_factory=tuple)

    @staticmethod
    def coerce(value: Any) -> "Conjunction":
        if isinstance(value, Conjunction):
            return value
        if isinstance(value, Literal):
            return Conjunction((value,))
        if isinstance(value, (tuple, list)):
            literals: list[Literal] = []
            for item in value:
                literals.extend(Conjunction.coerce(item).literals)
            return Conjunction(tuple(literals))
        raise TypeError(f"cannot use {value!r} as a rule body")

    def __and__(self, other: Any) -> "Conjunction":
        return Conjunction(self.literals + Conjunction.coerce(other).literals)

    def __iter__(self):
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)


@dataclass(frozen=True)
class PendingRule:
    """The result of ``head <= body`` in the DSL, awaiting registration.

    The DSL's :class:`~repro.datalog.dsl.Program` registers pending rules as
    soon as they are produced; keeping them as a value also allows writing
    rules in plain data structures and registering them explicitly.
    """

    head: Atom
    body: Conjunction

"""A textual Datalog parser.

The grammar is a small superset of classic Datalog, close to what the
benchmark programs in the paper use (Soufflé-style surface syntax without the
type system):

.. code-block:: none

    % line comment                      // also a comment
    .decl edge(2)                       (optional arity declaration)
    edge(1, 2).                         ground fact
    path(X, Y) :- edge(X, Y).           rule
    path(X, Z) :- path(X, Y), edge(Y, Z).
    prime(X)   :- number(X), !composite(X).         stratified negation
    fib(N2, S) :- fib(N, A), fib(N1, B),
                  N1 = N + 1, N2 = N + 2, S = A + B, N2 <= 25.
    total(K, sum(V)) :- sales(K, V).                aggregation

Tokens starting with an upper-case letter or ``_`` are variables; numbers and
quoted strings are constants; lower-case bare identifiers in argument
position are string constants (as in Prolog/Datalog tradition).
``Var = expression`` binds (assignment); ``==``, ``!=``, ``<``, ``<=``, ``>``
and ``>=`` are comparisons.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import (
    Aggregate,
    BinaryExpression,
    Constant,
    Term,
    Variable,
)

_AGGREGATE_NAMES = {"count", "sum", "min", "max", "mean"}


class ParseError(ValueError):
    """Raised on any syntax error, with line/column information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    line: int
    column: int


_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("COMMENT", r"(%|//)[^\n]*"),
    ("DECL", r"\.decl\b"),
    ("NUMBER", r"\d+(\.\d+)?"),
    ("STRING", r"\"[^\"]*\"|'[^']*'"),
    ("IMPLIES", r":-"),
    ("ASSIGN", r":="),
    ("LE", r"<="),
    ("GE", r">="),
    ("EQ", r"=="),
    ("NE", r"!="),
    ("LT", r"<"),
    ("GT", r">"),
    ("EQUALS", r"="),
    ("NOT", r"!|~"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("PERCENT", r"%"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {text[position]!r}", line, column)
        kind = match.lastgroup or ""
        value = match.group()
        column = position - line_start + 1
        position = match.end()
        if kind == "NEWLINE":
            line += 1
            line_start = position
            continue
        if kind in ("WS", "COMMENT"):
            continue
        yield _Token(kind, value, line, column)
    yield _Token("EOF", "", line, position - line_start + 1)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, program_name: str) -> None:
        self.tokens: List[_Token] = list(_tokenize(text))
        self.position = 0
        self.program = DatalogProgram(program_name)

    # -- token utilities -------------------------------------------------------

    def _peek(self) -> _Token:
        return self.tokens[self.position]

    def _advance(self) -> _Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, got {token.kind} ({token.value!r})",
                             token.line, token.column)
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> DatalogProgram:
        while self._peek().kind != "EOF":
            if self._peek().kind == "DECL":
                self._parse_declaration()
            else:
                self._parse_clause()
        return self.program

    def _parse_declaration(self) -> None:
        self._expect("DECL")
        name = self._expect("IDENT").value
        self._expect("LPAREN")
        arity_token = self._expect("NUMBER")
        self._expect("RPAREN")
        self.program.declare_relation(name, int(arity_token.value))

    def _parse_clause(self) -> None:
        head = self._parse_atom(allow_aggregates=True)
        token = self._peek()
        if token.kind == "DOT":
            self._advance()
            values = []
            for term in head.terms:
                if isinstance(term, Constant):
                    values.append(term.value)
                elif not term.variables():
                    # Constant arithmetic such as ``edge(0 - 1, 2).``
                    values.append(term.substitute({}))
                else:
                    raise ParseError(
                        f"fact {head.relation!r} must be ground", token.line, token.column
                    )
            self.program.add_fact(head.relation, values)
            return
        if token.kind == "IMPLIES":
            self._advance()
            body = self._parse_body()
            self._expect("DOT")
            self.program.add_rule(head, body)
            return
        raise self._error("expected '.' or ':-' after atom")

    def _parse_body(self) -> List[Literal]:
        literals = [self._parse_literal()]
        while self._peek().kind == "COMMA":
            self._advance()
            literals.append(self._parse_literal())
        return literals

    def _parse_literal(self) -> Literal:
        token = self._peek()
        if token.kind == "NOT":
            self._advance()
            atom = self._parse_atom()
            return atom.negate()
        if token.kind == "IDENT" and self.tokens[self.position + 1].kind == "LPAREN":
            # Could still be a comparison whose left side is an aggregate-like
            # call; plain Datalog does not allow that, so treat as an atom.
            saved = self.position
            atom = self._parse_atom()
            if self._peek().kind in ("LE", "GE", "EQ", "NE", "LT", "GT", "EQUALS", "ASSIGN"):
                # e.g. f(X) = Y is not supported; rewind and parse as expression.
                self.position = saved
            else:
                return atom
        return self._parse_builtin()

    def _parse_builtin(self) -> Literal:
        left = self._parse_expression()
        token = self._peek()
        operators = {
            "LE": "<=", "GE": ">=", "EQ": "==", "NE": "!=", "LT": "<", "GT": ">",
        }
        if token.kind in operators:
            self._advance()
            right = self._parse_expression()
            return Comparison(operators[token.kind], left, right)
        if token.kind in ("EQUALS", "ASSIGN"):
            self._advance()
            right = self._parse_expression()
            if isinstance(left, Variable):
                return Assignment(left, right)
            return Comparison("==", left, right)
        raise self._error("expected a comparison or assignment operator")

    def _parse_atom(self, allow_aggregates: bool = False) -> Atom:
        name = self._expect("IDENT").value
        self._expect("LPAREN")
        terms: List[Term] = []
        if self._peek().kind != "RPAREN":
            terms.append(self._parse_argument(allow_aggregates))
            while self._peek().kind == "COMMA":
                self._advance()
                terms.append(self._parse_argument(allow_aggregates))
        self._expect("RPAREN")
        return Atom(name, tuple(terms))

    def _parse_argument(self, allow_aggregates: bool) -> Term:
        token = self._peek()
        if (
            allow_aggregates
            and token.kind == "IDENT"
            and token.value in _AGGREGATE_NAMES
            and self.tokens[self.position + 1].kind == "LPAREN"
        ):
            self._advance()
            self._expect("LPAREN")
            inner = self._expect("IDENT")
            self._expect("RPAREN")
            return Aggregate(token.value, Variable(inner.value))
        return self._parse_expression()

    # Expressions: term (+|-) term (*|/|%) ... with usual precedence.
    def _parse_expression(self) -> Term:
        left = self._parse_multiplicative()
        while self._peek().kind in ("PLUS", "MINUS"):
            op = "+" if self._advance().kind == "PLUS" else "-"
            right = self._parse_multiplicative()
            left = BinaryExpression(op, left, right)
        return left

    def _parse_multiplicative(self) -> Term:
        left = self._parse_primary()
        while self._peek().kind in ("STAR", "SLASH", "PERCENT"):
            kind = self._advance().kind
            op = {"STAR": "*", "SLASH": "//", "PERCENT": "%"}[kind]
            right = self._parse_primary()
            left = BinaryExpression(op, left, right)
        return left

    def _parse_primary(self) -> Term:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value: Any = float(token.value) if "." in token.value else int(token.value)
            return Constant(value)
        if token.kind == "STRING":
            self._advance()
            return Constant(token.value[1:-1])
        if token.kind == "IDENT":
            self._advance()
            if token.value[0].isupper() or token.value[0] == "_":
                return Variable(token.value)
            return Constant(token.value)
        if token.kind == "LPAREN":
            self._advance()
            inner = self._parse_expression()
            self._expect("RPAREN")
            return inner
        if token.kind == "MINUS":
            self._advance()
            inner = self._parse_primary()
            return BinaryExpression("-", Constant(0), inner)
        raise self._error(f"unexpected token {token.value!r} in expression")


def parse_program(text: str, name: str = "parsed") -> DatalogProgram:
    """Parse Datalog source ``text`` into a :class:`DatalogProgram`."""
    return _Parser(text, name).parse()

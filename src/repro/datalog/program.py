"""The program container: declarations, facts and rules, engine-independent.

:class:`DatalogProgram` is the pure-AST representation of a Datalog program.
It knows nothing about storage or evaluation; the execution engine
(:mod:`repro.engine`) consumes it.  The user-facing embedded DSL in
:mod:`repro.datalog.dsl` is a thin convenience layer that populates one of
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.literals import Atom, Literal
from repro.datalog.rules import Fact, Rule
from repro.datalog.terms import Constant, Variable


@dataclass
class RelationDeclaration:
    """Schema metadata for a single relation.

    ``arity`` is fixed at first use.  ``is_edb`` is derived: a relation is
    extensional if it has facts and no rules, intensional if it has at least
    one rule.  Relations that have both facts and rules are treated as IDB
    relations whose facts seed the derived database (this mirrors Carac,
    where facts may be added to any relation at runtime).

    ``columns`` optionally names the columns (``None`` means positional
    ``c0..c{n-1}`` names are generated); the names surface in the schema of
    every :class:`~repro.api.result.QueryResult` for this relation.
    """

    name: str
    arity: int
    fact_count: int = 0
    rule_count: int = 0
    columns: Optional[Tuple[str, ...]] = None

    @property
    def is_edb(self) -> bool:
        return self.rule_count == 0

    @property
    def is_idb(self) -> bool:
        return self.rule_count > 0


class DatalogProgram:
    """A set of relation declarations, facts and rules.

    The program preserves rule definition order and, within each rule, the
    as-written atom order.  Both are inputs to the evaluation experiments:
    the paper compares "hand-optimized" and "unoptimized" atom orders of the
    same logical program.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.relations: Dict[str, RelationDeclaration] = {}
        self.facts: List[Fact] = []
        self.rules: List[Rule] = []
        self._rule_counter = 0

    # -- declaration ----------------------------------------------------------

    def declare_relation(self, name: str, arity: int,
                         columns: Optional[Sequence[str]] = None) -> RelationDeclaration:
        """Declare (or fetch) a relation, validating arity consistency."""
        if columns is not None:
            columns = tuple(columns)
            if len(columns) != arity:
                raise ValueError(
                    f"relation {name!r} declared with arity {arity} but "
                    f"{len(columns)} column names {columns!r}"
                )
        existing = self.relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise ValueError(
                    f"relation {name!r} redeclared with arity {arity}, "
                    f"previously {existing.arity}"
                )
            if columns is not None:
                existing.columns = columns
            return existing
        declaration = RelationDeclaration(name=name, arity=arity, columns=columns)
        self.relations[name] = declaration
        return declaration

    def add_fact(self, relation: str, values: Sequence[Any]) -> Fact:
        """Add a ground fact, declaring the relation on first use."""
        fact = Fact(relation, tuple(values))
        declaration = self.declare_relation(relation, fact.arity)
        declaration.fact_count += 1
        self.facts.append(fact)
        return fact

    def add_facts(self, relation: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-add facts; returns the number added.

        One declaration lookup for the whole batch (not one per row);
        per-row arity validation stays, with the same error
        :meth:`declare_relation` raises on a redeclaration.
        """
        facts = [Fact(relation, tuple(row)) for row in rows]
        if not facts:
            return 0
        declaration = self.declare_relation(relation, facts[0].arity)
        arity = declaration.arity
        for fact in facts:
            if len(fact.values) != arity:
                raise ValueError(
                    f"relation {relation!r} redeclared with arity "
                    f"{len(fact.values)}, previously {arity}"
                )
        self.facts.extend(facts)
        declaration.fact_count += len(facts)
        return len(facts)

    def add_rule(self, head: Atom, body: Sequence[Literal], name: str = "") -> Rule:
        """Add a rule, declaring the head and body relations on first use."""
        self._rule_counter += 1
        rule_name = name or f"{head.relation}#{self._rule_counter}"
        rule = Rule(head, tuple(body), rule_name)
        head_decl = self.declare_relation(head.relation, head.arity)
        head_decl.rule_count += 1
        for atom in rule.body_atoms():
            self.declare_relation(atom.relation, atom.arity)
        self.rules.append(rule)
        return rule

    # -- queries over the program ---------------------------------------------

    def edb_relations(self) -> List[str]:
        """Names of extensional relations (facts only, no rules)."""
        return [name for name, decl in self.relations.items() if decl.is_edb]

    def idb_relations(self) -> List[str]:
        """Names of intensional relations (defined by at least one rule)."""
        return [name for name, decl in self.relations.items() if decl.is_idb]

    def rules_for(self, relation: str) -> List[Rule]:
        """All rules whose head is ``relation``, in definition order."""
        return [rule for rule in self.rules if rule.head_relation == relation]

    def facts_for(self, relation: str) -> List[Fact]:
        return [fact for fact in self.facts if fact.relation == relation]

    def arity_of(self, relation: str) -> int:
        try:
            return self.relations[relation].arity
        except KeyError:
            raise KeyError(f"unknown relation {relation!r}") from None

    def relation_names(self) -> List[str]:
        return list(self.relations)

    # -- transformation -------------------------------------------------------

    def copy(self) -> "DatalogProgram":
        """Deep-enough copy: rules/facts are immutable, so share them."""
        clone = DatalogProgram(self.name)
        for name, decl in self.relations.items():
            clone.relations[name] = RelationDeclaration(
                name=decl.name,
                arity=decl.arity,
                fact_count=decl.fact_count,
                rule_count=decl.rule_count,
                columns=decl.columns,
            )
        clone.facts = list(self.facts)
        clone.rules = list(self.rules)
        clone._rule_counter = self._rule_counter
        return clone

    def with_rules(self, rules: Sequence[Rule]) -> "DatalogProgram":
        """Return a copy of this program with ``rules`` replacing the rule set.

        Fact declarations are preserved; rule counts are recomputed.  Used by
        source-level rewrites (alias elimination, body reordering).
        """
        clone = DatalogProgram(self.name)
        clone.facts = list(self.facts)
        for fact in clone.facts:
            decl = clone.declare_relation(fact.relation, fact.arity)
            decl.fact_count += 1
        for rule in rules:
            clone.add_rule(rule.head, rule.body, rule.name)
        for name, decl in self.relations.items():
            replacement = clone.relations.get(name)
            if replacement is not None and decl.columns is not None:
                replacement.columns = decl.columns
        return clone

    def validate_arities(self) -> None:
        """Check that every atom use matches its declared arity."""
        for rule in self.rules:
            atoms = (rule.head,) + rule.body_atoms()
            for atom in atoms:
                declared = self.relations.get(atom.relation)
                if declared is not None and declared.arity != atom.arity:
                    raise ValueError(
                        f"atom {atom!r} in rule {rule.name!r} has arity "
                        f"{atom.arity}, relation declared with {declared.arity}"
                    )
        for fact in self.facts:
            declared = self.relations.get(fact.relation)
            if declared is not None and declared.arity != fact.arity:
                raise ValueError(
                    f"fact {fact!r} has arity {fact.arity}, relation declared "
                    f"with {declared.arity}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DatalogProgram({self.name!r}, relations={len(self.relations)}, "
            f"facts={len(self.facts)}, rules={len(self.rules)})"
        )

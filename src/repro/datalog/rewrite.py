"""Static, source-level rewrites applied before planning.

The paper mentions one such rewrite explicitly (§V-A): alias elimination —
rules of the form ``A(x, y) :- B(x, y)`` where ``A`` has no other definition
simply rename ``B`` and would otherwise force an extra materialisation.  We
also provide a deterministic body-reordering helper used to build the
"unoptimized" (worst-case) and "hand-optimized" variants of the benchmark
programs, mirroring the two formulations evaluated in §VI-B.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable


def _is_alias_rule(rule: Rule, program: DatalogProgram) -> bool:
    """True when ``rule`` is ``A(v1..vk) :- B(v1..vk)`` and A has only this rule."""
    if len(rule.body) != 1:
        return False
    body = rule.body[0]
    if not isinstance(body, Atom) or body.negated:
        return False
    head = rule.head
    if head.relation == body.relation:
        return False
    if len(program.rules_for(head.relation)) != 1:
        return False
    if head.arity != body.arity:
        return False
    head_vars = [t for t in head.terms]
    body_vars = [t for t in body.terms]
    if head_vars != body_vars:
        return False
    return all(isinstance(t, Variable) for t in head_vars) and len(set(head_vars)) == len(head_vars)


def eliminate_aliases(program: DatalogProgram) -> DatalogProgram:
    """Remove pure alias rules by renaming the alias to its target everywhere.

    Returns a new program; the input is left untouched.  Facts asserted on the
    alias relation are re-targeted as well, so the rewrite is semantics
    preserving for every downstream consumer of the alias name *except* that
    queries must use the canonical relation name afterwards (the mapping is
    recorded on the returned program as ``alias_map``).
    """
    alias_map: Dict[str, str] = {}
    for rule in program.rules:
        if _is_alias_rule(rule, program):
            alias_map[rule.head_relation] = rule.body[0].relation  # type: ignore[union-attr]

    # Resolve chains alias -> alias -> target.
    def resolve(name: str) -> str:
        seen = set()
        while name in alias_map and name not in seen:
            seen.add(name)
            name = alias_map[name]
        return name

    if not alias_map:
        clone = program.copy()
        clone.alias_map = {}  # type: ignore[attr-defined]
        return clone

    def rewrite_atom(atom: Atom) -> Atom:
        return Atom(resolve(atom.relation), atom.terms, atom.negated)

    new_rules: List[Rule] = []
    for rule in program.rules:
        if _is_alias_rule(rule, program):
            continue
        new_body: List[Literal] = []
        for literal in rule.body:
            if isinstance(literal, Atom):
                new_body.append(rewrite_atom(literal))
            else:
                new_body.append(literal)
        new_rules.append(Rule(rewrite_atom(rule.head), tuple(new_body), rule.name))

    rewritten = DatalogProgram(program.name)
    for fact in program.facts:
        rewritten.add_fact(resolve(fact.relation), fact.values)
    for rule in new_rules:
        rewritten.add_rule(rule.head, rule.body, rule.name)
    rewritten.alias_map = {a: resolve(a) for a in alias_map}  # type: ignore[attr-defined]
    return rewritten


def reorder_rule_body(rule: Rule, order: Sequence[int]) -> Rule:
    """Reorder the relational atoms of ``rule`` according to ``order``.

    ``order`` is a permutation over the positive+negated atoms of the body;
    built-in literals keep their relative position *after* the atoms that bind
    their variables (they are appended at the end, where the planner will
    hoist them as early as legal).  Used to construct the hand-optimized and
    worst-case program variants.
    """
    atoms = [l for l in rule.body if isinstance(l, Atom)]
    builtins = [l for l in rule.body if not isinstance(l, Atom)]
    if sorted(order) != list(range(len(atoms))):
        raise ValueError(
            f"order {order!r} is not a permutation of 0..{len(atoms) - 1}"
        )
    new_body: List[Literal] = [atoms[i] for i in order]
    new_body.extend(builtins)
    return rule.with_body(new_body)


def reverse_rule_bodies(program: DatalogProgram) -> DatalogProgram:
    """Reverse the atom order of every rule (a deterministic 'bad luck' order).

    The paper evaluates an "unoptimized" formulation chosen to be inefficient;
    reversing a hand-optimized body is the canonical way to obtain one
    deterministically.
    """
    new_rules = []
    for rule in program.rules:
        atoms = [l for l in rule.body if isinstance(l, Atom)]
        order = list(reversed(range(len(atoms))))
        new_rules.append(reorder_rule_body(rule, order))
    return program.with_rules(new_rules)

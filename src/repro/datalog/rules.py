"""Rules and facts: the statements of a Datalog program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Sequence, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.terms import Aggregate, Constant, Term, Variable


@dataclass(frozen=True)
class Fact:
    """A ground fact ``R(c1, ..., ck)`` stored in the extensional database."""

    relation: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if type(self.values) is not tuple:
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def as_atom(self) -> Atom:
        return Atom(self.relation, tuple(Constant(v) for v in self.values))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        args = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({args})."


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``.

    The body keeps the *as-written* literal order: the whole point of the
    reproduced optimization is that this order is semantically irrelevant but
    performance-critical, so the frontend must not silently canonicalise it.
    """

    head: Atom
    body: Tuple[Literal, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise ValueError("rule heads cannot be negated")

    # -- structural accessors -------------------------------------------------

    @property
    def head_relation(self) -> str:
        return self.head.relation

    def body_atoms(self) -> Tuple[Atom, ...]:
        """All relational atoms (positive and negated) in the body."""
        return tuple(l for l in self.body if isinstance(l, Atom))

    def positive_atoms(self) -> Tuple[Atom, ...]:
        return tuple(l for l in self.body if isinstance(l, Atom) and not l.negated)

    def negated_atoms(self) -> Tuple[Atom, ...]:
        return tuple(l for l in self.body if isinstance(l, Atom) and l.negated)

    def builtins(self) -> Tuple[Literal, ...]:
        return tuple(l for l in self.body if isinstance(l, (Comparison, Assignment)))

    def body_relations(self) -> FrozenSet[str]:
        return frozenset(a.relation for a in self.body_atoms())

    def head_variables(self) -> FrozenSet[Variable]:
        return self.head.variables()

    def body_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for literal in self.body:
            result = result | literal.variables()
        return result

    def has_aggregation(self) -> bool:
        return any(isinstance(t, Aggregate) for t in self.head.terms)

    def aggregate_terms(self) -> Tuple[Tuple[int, Aggregate], ...]:
        """Positions and aggregate terms appearing in the head."""
        return tuple(
            (i, t) for i, t in enumerate(self.head.terms) if isinstance(t, Aggregate)
        )

    def is_recursive_with(self, relations: Iterable[str]) -> bool:
        """True if any positive body atom refers to one of ``relations``."""
        targets = set(relations)
        return any(a.relation in targets for a in self.positive_atoms())

    def with_body(self, body: Sequence[Literal], name: str | None = None) -> "Rule":
        """Return a copy of this rule with a different (reordered) body."""
        return Rule(self.head, tuple(body), name if name is not None else self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(repr(l) for l in self.body)
        return f"{self.head!r} :- {body}."

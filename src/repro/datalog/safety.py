"""Rule-safety checking.

A rule is *safe* when every variable appearing in its head, in a negated
atom, or in a comparison is bound by a positive relational atom or by an
assignment whose inputs are (transitively) bound.  Unsafe rules would produce
infinite relations under bottom-up evaluation, so the engine rejects them
before planning.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate, Variable


class SafetyError(ValueError):
    """Raised when a rule (or program) fails the safety check."""


#: Relations starting with this prefix belong to the engine's system
#: catalog (``repro.introspect``).  Rules may *read* them — the catalog
#: materializes their rows as ordinary EDB facts — but user programs can
#: neither define rules over them nor assert facts into them.  The check is
#: purely textual (prefix match), so this layer needs no knowledge of the
#: catalog's actual schema; arity validation against the catalog happens at
#: evaluation setup, where a catalog is attached.
RESERVED_RELATION_PREFIX = "sys_"


def check_reserved_namespace(program: DatalogProgram) -> None:
    """Reject rule heads and facts in the reserved ``sys_`` namespace."""
    for rule in program.rules:
        if rule.head_relation.startswith(RESERVED_RELATION_PREFIX):
            raise SafetyError(
                f"rule {rule.name or rule!r}: relation "
                f"{rule.head_relation!r} is in the reserved system-catalog "
                f"namespace ({RESERVED_RELATION_PREFIX!r}); sys_ relations "
                "may only appear in rule bodies"
            )
    for fact in program.facts:
        if fact.relation.startswith(RESERVED_RELATION_PREFIX):
            raise SafetyError(
                f"fact over {fact.relation!r}: the "
                f"{RESERVED_RELATION_PREFIX!r} namespace is reserved for the "
                "system catalog; its rows are materialized by the engine"
            )


def _bound_variables(body: Iterable[Literal]) -> Set[Variable]:
    """Compute the set of variables bound by positive atoms and assignments.

    Assignments are applied to a fixpoint because an assignment's output can
    feed another assignment's input regardless of their textual order (the
    planner will order them correctly later).
    """
    bound: Set[Variable] = set()
    for literal in body:
        if isinstance(literal, Atom) and not literal.negated:
            bound |= literal.variables()

    assignments = [l for l in body if isinstance(l, Assignment)]
    changed = True
    while changed:
        changed = False
        for assignment in assignments:
            if assignment.target in bound:
                continue
            if assignment.input_variables() <= bound:
                bound.add(assignment.target)
                changed = True
    return bound


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` if ``rule`` is unsafe."""
    bound = _bound_variables(rule.body)

    head_variables: Set[Variable] = set()
    for term in rule.head.terms:
        if isinstance(term, Aggregate):
            head_variables |= term.variables()
        else:
            head_variables |= term.variables()
    unbound_head = head_variables - bound
    if unbound_head:
        names = ", ".join(sorted(v.name for v in unbound_head))
        raise SafetyError(
            f"rule {rule.name or rule!r}: head variable(s) {names} not bound by "
            "a positive body atom or assignment"
        )

    for literal in rule.body:
        if isinstance(literal, Atom) and literal.negated:
            unbound = literal.variables() - bound
            if unbound:
                names = ", ".join(sorted(v.name for v in unbound))
                raise SafetyError(
                    f"rule {rule.name or rule!r}: negated atom {literal!r} uses "
                    f"unbound variable(s) {names}"
                )
        elif isinstance(literal, Comparison):
            unbound = literal.variables() - bound
            if unbound:
                names = ", ".join(sorted(v.name for v in unbound))
                raise SafetyError(
                    f"rule {rule.name or rule!r}: comparison {literal!r} uses "
                    f"unbound variable(s) {names}"
                )
        elif isinstance(literal, Assignment):
            unbound = literal.input_variables() - bound
            if unbound:
                names = ", ".join(sorted(v.name for v in unbound))
                raise SafetyError(
                    f"rule {rule.name or rule!r}: assignment {literal!r} reads "
                    f"unbound variable(s) {names}"
                )

    if not rule.positive_atoms() and rule.head_variables():
        raise SafetyError(
            f"rule {rule.name or rule!r}: a rule with head variables needs at "
            "least one positive body atom"
        )


def check_program_safety(program: DatalogProgram) -> List[Rule]:
    """Check every rule in ``program``; returns the list of checked rules."""
    program.validate_arities()
    check_reserved_namespace(program)
    for rule in program.rules:
        check_rule_safety(rule)
    return list(program.rules)

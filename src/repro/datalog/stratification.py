"""Precedence graph and stratification.

Bottom-up evaluation with negation or aggregation requires the program to be
*stratified*: the predicate dependency graph must contain no cycle through a
negated edge (or through an aggregation, which behaves like negation for this
purpose).  The stratifier also produces the evaluation order used by the plan
builder: strata are evaluated lowest-first, and within a stratum all mutually
recursive predicates reach fixpoint together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Rule


class StratificationError(ValueError):
    """Raised when a program cannot be stratified (negative/aggregate cycle)."""


@dataclass(frozen=True)
class DependencyEdge:
    """An edge ``source -> target`` meaning ``target``'s rules read ``source``."""

    source: str
    target: str
    negative: bool = False


@dataclass
class PrecedenceGraph:
    """The predicate dependency graph of a program."""

    nodes: Set[str] = field(default_factory=set)
    edges: List[DependencyEdge] = field(default_factory=list)

    def successors(self, node: str) -> List[Tuple[str, bool]]:
        return [(e.target, e.negative) for e in self.edges if e.source == node]

    def predecessors(self, node: str) -> List[Tuple[str, bool]]:
        return [(e.source, e.negative) for e in self.edges if e.target == node]

    def adjacency(self) -> Dict[str, List[Tuple[str, bool]]]:
        adj: Dict[str, List[Tuple[str, bool]]] = {n: [] for n in self.nodes}
        for edge in self.edges:
            adj[edge.source].append((edge.target, edge.negative))
        return adj


def precedence_graph(program: DatalogProgram) -> PrecedenceGraph:
    """Build the precedence graph: body relation -> head relation edges."""
    graph = PrecedenceGraph()
    graph.nodes.update(program.relation_names())
    seen: Set[Tuple[str, str, bool]] = set()
    for rule in program.rules:
        head = rule.head_relation
        negative_through_aggregation = rule.has_aggregation()
        for atom in rule.body_atoms():
            negative = atom.negated or negative_through_aggregation
            key = (atom.relation, head, negative)
            if key in seen:
                continue
            seen.add(key)
            graph.edges.append(DependencyEdge(atom.relation, head, negative))
    return graph


@dataclass
class Stratum:
    """One stratum: a set of mutually-dependent IDB relations and their rules."""

    index: int
    relations: Tuple[str, ...]
    rules: Tuple[Rule, ...]

    def recursive_relations(self) -> FrozenSet[str]:
        """Relations in this stratum that appear in a body of a stratum rule."""
        in_bodies: Set[str] = set()
        for rule in self.rules:
            for atom in rule.positive_atoms():
                if atom.relation in self.relations:
                    in_bodies.add(atom.relation)
        return frozenset(in_bodies)

    def is_recursive(self) -> bool:
        return bool(self.recursive_relations())


def _strongly_connected_components(
    nodes: Sequence[str], adjacency: Dict[str, List[Tuple[str, bool]]]
) -> List[List[str]]:
    """Tarjan's algorithm, iterative to cope with deep dependency chains."""
    index_counter = 0
    indices: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []

    for root in nodes:
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = adjacency.get(node, [])
            while child_index < len(successors):
                successor, _negative = successors[child_index]
                child_index += 1
                if successor not in indices:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


class Stratifier:
    """Computes a stratification of a Datalog program.

    The algorithm condenses the precedence graph into strongly connected
    components, rejects components containing a negative (or aggregate) edge,
    and then topologically sorts components into strata.  EDB-only components
    are dropped (they need no evaluation).
    """

    def __init__(self, program: DatalogProgram) -> None:
        self.program = program
        self.graph = precedence_graph(program)

    def stratify(self) -> List[Stratum]:
        adjacency = self.graph.adjacency()
        nodes = sorted(self.graph.nodes)
        components = _strongly_connected_components(nodes, adjacency)

        component_of: Dict[str, int] = {}
        for i, component in enumerate(components):
            for node in component:
                component_of[node] = i

        # Reject negative edges inside a component (unstratifiable programs).
        for edge in self.graph.edges:
            if edge.negative and component_of[edge.source] == component_of[edge.target]:
                raise StratificationError(
                    f"negation/aggregation cycle through {edge.source!r} -> "
                    f"{edge.target!r}; the program is not stratifiable"
                )

        # Topological order of the component DAG (Kahn).
        dependencies: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
        for edge in self.graph.edges:
            source_component = component_of[edge.source]
            target_component = component_of[edge.target]
            if source_component != target_component:
                dependencies[target_component].add(source_component)

        remaining = set(range(len(components)))
        ordered: List[int] = []
        while remaining:
            ready = sorted(
                c for c in remaining if not (dependencies[c] & remaining)
            )
            if not ready:
                raise StratificationError("cycle detected in component DAG")
            ordered.extend(ready)
            remaining -= set(ready)

        idb = set(self.program.idb_relations())
        strata: List[Stratum] = []
        for component_index in ordered:
            component_relations = [
                r for r in components[component_index] if r in idb
            ]
            if not component_relations:
                continue
            rules = tuple(
                rule
                for rule in self.program.rules
                if rule.head_relation in component_relations
            )
            strata.append(
                Stratum(
                    index=len(strata),
                    relations=tuple(sorted(component_relations)),
                    rules=rules,
                )
            )
        return strata


def stratify(program: DatalogProgram) -> List[Stratum]:
    """Convenience wrapper over :class:`Stratifier`."""
    return Stratifier(program).stratify()

"""Terms: the leaves of the Datalog abstract syntax tree.

A term is either a :class:`Variable`, a :class:`Constant`, an arithmetic
:class:`Expression` over terms, or (in rule heads only) an :class:`Aggregate`
over a variable.  Terms are immutable and hashable so they can be used as
dictionary keys by the planner and the evaluator.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Mapping, Union


class Term:
    """Base class for all Datalog terms."""

    __slots__ = ()

    def variables(self) -> FrozenSet["Variable"]:
        """Return the set of variables occurring in this term."""
        raise NotImplementedError

    def substitute(self, bindings: Mapping["Variable", Any]) -> Any:
        """Evaluate this term under ``bindings`` (variable -> Python value)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Variable(Term):
    """A logic variable, identified by name.

    Two variables with the same name are the same variable within a rule.
    """

    name: str

    def variables(self) -> FrozenSet["Variable"]:
        return frozenset((self,))

    def substitute(self, bindings: Mapping["Variable", Any]) -> Any:
        if self not in bindings:
            raise KeyError(f"unbound variable {self.name!r}")
        return bindings[self]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.name

    # Arithmetic sugar so the DSL can write ``n + 1`` inside rule bodies.
    def __add__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("+", self, _as_term(other))

    def __radd__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("+", _as_term(other), self)

    def __sub__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("-", self, _as_term(other))

    def __rsub__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("-", _as_term(other), self)

    def __mul__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("*", self, _as_term(other))

    def __rmul__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("*", _as_term(other), self)

    def __floordiv__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("//", self, _as_term(other))

    def __mod__(self, other: Any) -> "BinaryExpression":
        return BinaryExpression("%", self, _as_term(other))


@dataclass(frozen=True)
class Constant(Term):
    """A ground constant (int, string, float, bool or tuple of those)."""

    value: Any

    def variables(self) -> FrozenSet[Variable]:
        return frozenset()

    def substitute(self, bindings: Mapping[Variable, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(self.value)


_BINARY_OPERATORS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "//": operator.floordiv,
    "/": operator.truediv,
    "%": operator.mod,
    "min": min,
    "max": max,
}


@dataclass(frozen=True)
class BinaryExpression(Term):
    """An arithmetic expression combining two terms with an operator.

    Expressions appear inside :class:`~repro.datalog.literals.Assignment` and
    :class:`~repro.datalog.literals.Comparison` literals, and (after parsing)
    directly in rule heads, e.g. ``fib(N + 1, A + B)``.
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPERATORS:
            raise ValueError(f"unsupported arithmetic operator {self.op!r}")

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def substitute(self, bindings: Mapping[Variable, Any]) -> Any:
        func = _BINARY_OPERATORS[self.op]
        return func(self.left.substitute(bindings), self.right.substitute(bindings))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.left!r} {self.op} {self.right!r})"


def binary_operator(op: str) -> Callable[[Any, Any], Any]:
    """The Python callable behind one arithmetic operator symbol.

    Public so batch evaluators can compile expressions once per block
    instead of re-dispatching through :meth:`BinaryExpression.substitute`
    per row.
    """
    return _BINARY_OPERATORS[op]


#: Alias used in type hints: any term that evaluates to a value.
Expression = Union[Variable, Constant, BinaryExpression]

_AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "mean")


@dataclass(frozen=True)
class Aggregate(Term):
    """An aggregate term, allowed only in rule heads.

    ``Aggregate("count", x)`` corresponds to ``count(x)`` in textual syntax.
    The remaining head variables form the group-by key.  Aggregation is
    evaluated after the fixpoint of the stratum containing the rule body, so
    aggregate rules may not be recursive through the aggregated predicate
    (enforced by stratification).
    """

    func: str
    target: Variable

    def __post_init__(self) -> None:
        if self.func not in _AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"unsupported aggregate {self.func!r}; expected one of {_AGGREGATE_FUNCTIONS}"
            )

    def variables(self) -> FrozenSet[Variable]:
        return self.target.variables()

    def substitute(self, bindings: Mapping[Variable, Any]) -> Any:
        # The aggregate itself is computed by the evaluator over groups; at the
        # tuple level we simply project the target variable.
        return self.target.substitute(bindings)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.func}({self.target!r})"


def _as_term(value: Any) -> Term:
    """Coerce a Python value or term into a :class:`Term`."""
    if isinstance(value, Term):
        return value
    return Constant(value)


def as_term(value: Any) -> Term:
    """Public coercion helper: wrap plain Python values as :class:`Constant`."""
    return _as_term(value)


def evaluate_aggregate(func: str, values: list[Any]) -> Any:
    """Evaluate aggregate ``func`` over ``values`` (used by the evaluator)."""
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "mean":
        return sum(values) / len(values)
    raise ValueError(f"unsupported aggregate {func!r}")

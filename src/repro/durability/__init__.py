"""Durable storage: write-ahead logging, checkpoints and warm restart.

The serving layer (PR 8) made the engine a long-lived process; this package
makes its state survive that process.  Three cooperating pieces:

* :mod:`repro.durability.wal` — an append-only log of encoded mutation
  batches.  Each record is length-prefixed and CRC-checksummed (the same
  framing discipline as the server's wire protocol) and carries the
  :class:`~repro.relational.symbols.SymbolTable` delta the batch allocated,
  so replay reproduces the exact id assignment of the original process.
* :mod:`repro.durability.checkpoint` — atomic full-state snapshots: the
  per-relation row sets dumped as packed ``array('q')`` machine-word
  columns (near-zero serialization cost under dictionary encoding) plus
  the symbol value list, written temp-then-rename so a crash can never
  expose a half-written checkpoint.
* :mod:`repro.durability.recover` — warm restart: install the latest valid
  checkpoint, replay the WAL tail through the ordinary incremental-session
  mutation path, and tolerate a torn final record (truncate at the first
  checksum/length failure, never past it).

Wired through ``Database(durability=DurabilityConfig(dir=...))``: the first
connection becomes the durable writer — it recovers on open, logs every
mutation batch before the batch's snapshot is published, and checkpoints
when the WAL crosses the configured thresholds (and on clean close, so the
next open restarts warm).
"""

from repro.durability.config import DurabilityConfig
from repro.durability.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.durability.manager import DurabilityManager
from repro.durability.recover import RecoveryError, RecoveryReport, recover
from repro.durability.wal import WalError, WalRecord, WriteAheadLog, read_wal

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DurabilityConfig",
    "DurabilityManager",
    "RecoveryError",
    "RecoveryReport",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_wal",
    "recover",
]

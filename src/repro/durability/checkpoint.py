"""Checkpoints: atomic full-state snapshots with packed machine-word columns.

File layout
-----------

::

    +--------------------------+   8-byte magic, 8-byte BE header length,
    | RCKPT..1 | hdr_len | hdr |   pickled header (symbol value list,
    +--------------------------+   per-relation column directory, CRC)
    |      packed section      |   concatenated ``array('q')`` columns,
    +--------------------------+   column-major per relation

Under dictionary encoding (PR 5) every stored row is a tuple of dense
symbol ids — machine words — so a relation dumps as ``arity`` packed
``int64`` columns at ``memcpy`` speed and loads back the same way,
optionally through ``mmap`` so a large checkpoint pages lazily instead of
being read through userspace buffers.  Identity-codec storage (rows hold
arbitrary Python values) falls back to pickling the row list into the
header, relation by relation, so both codecs checkpoint through one format.

Atomicity is by rename: the file is written to ``<name>.tmp``, fsynced,
then renamed over the final name (and the directory fsynced), so a crash
mid-write leaves at most a ``.tmp`` straggler that the store ignores and
prunes.  Validity is belt-and-braces: the rename guarantees completeness,
and a CRC-32 over the packed section plus a length check guard against
bit rot; an invalid newest checkpoint falls back to the one before it.
"""

from __future__ import annotations

import mmap
import os
import pickle
import re
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.resilience import faults
from repro.resilience.errors import DurabilityError

try:  # optional: ~2x faster column decode on the warm-restart path
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less interpreter
    _np = None

Row = Tuple[Any, ...]

MAGIC = b"RCKPT\x00\x01\n"
_FORMAT = 1
_NAME_RE = re.compile(r"^checkpoint-(\d{12})\.ckpt$")


class CheckpointError(Exception):
    """A checkpoint that cannot be written or fails validation on load."""


def _pack_rows(rows: List[Row], arity: int) -> Optional[bytes]:
    """The rows as column-major int64 bytes, or None when not packable."""
    if arity == 0:
        return None
    try:
        columns = [
            array("q", (row[i] for row in rows)).tobytes()
            for i in range(arity)
        ]
    except (TypeError, OverflowError):
        return None
    return b"".join(columns)


def _unpack_rows(view: memoryview, arity: int, count: int) -> Set[Row]:
    """Rebuild a row set from one relation's column-major int64 bytes.

    Every sub-view is released before returning so an mmap-backed caller
    can close its map — a memoryview with exported children refuses.
    """
    if count == 0:
        return set()
    if _np is not None:
        # ndarray.tolist() materialises each column as plain ints at C
        # speed; the interpreter only pays for the final zip-into-tuples.
        # The ndarray holds its own buffer reference and dies with this
        # frame, so the caller's view.release() still succeeds.
        flat = _np.frombuffer(view, dtype=_np.int64)
        return set(zip(*(
            flat[i * count:(i + 1) * count].tolist() for i in range(arity)
        )))
    columns = [
        view[i * count * 8:(i + 1) * count * 8].cast("q")
        for i in range(arity)
    ]
    try:
        return set(zip(*columns))
    finally:
        for column in columns:
            column.release()


@dataclass
class Checkpoint:
    """One loaded (or about-to-be-written) full-state snapshot."""

    #: Program fingerprint guard: recovery refuses to install a checkpoint
    #: written by a different program.
    program: str
    #: Total WAL records this snapshot covers (recovery replays the rest).
    wal_records: int
    #: The full symbol value list, id order; None for identity storage.
    symbols: Optional[List[Any]]
    #: name -> (derived rows, base rows), both in the storage value domain.
    relations: Dict[str, Tuple[Set[Row], Set[Row]]] = field(default_factory=dict)
    arities: Dict[str, int] = field(default_factory=dict)
    path: Optional[str] = None

    def row_count(self) -> int:
        return sum(len(derived) for derived, _ in self.relations.values())


def write_checkpoint(path: str, checkpoint: Checkpoint) -> int:
    """Serialize ``checkpoint`` to ``path`` atomically; returns bytes written."""
    directory: Dict[str, Dict[str, Any]] = {}
    packed = bytearray()
    for name, (derived, base) in checkpoint.relations.items():
        arity = checkpoint.arities[name]
        entry: Dict[str, Any] = {"arity": arity}
        for part, rows in (("derived", derived), ("base", base)):
            ordered = list(rows)
            blob = _pack_rows(ordered, arity)
            if blob is None:
                entry[part] = {"packed": False, "rows": ordered}
            else:
                entry[part] = {
                    "packed": True, "offset": len(packed), "rows": len(ordered),
                }
                packed += blob
        directory[name] = entry
    header = pickle.dumps(
        {
            "format": _FORMAT,
            "program": checkpoint.program,
            "wal_records": checkpoint.wal_records,
            "symbols": checkpoint.symbols,
            "relations": directory,
            "packed_bytes": len(packed),
            "packed_crc": zlib.crc32(bytes(packed)),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(len(header).to_bytes(8, "big"))
        handle.write(header)
        handle.write(packed)
        handle.flush()
        os.fsync(handle.fileno())
        written = handle.tell()
    faults.fire("checkpoint.rename", DurabilityError)
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(path) or ".")
    return written


def load_checkpoint(path: str, use_mmap: bool = True) -> Checkpoint:
    """Load and validate one checkpoint file.

    Raises :class:`CheckpointError` on any structural problem — the store
    treats that as "try the previous checkpoint", never as partial data.
    """
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + 8)
        if len(prefix) < len(MAGIC) + 8 or prefix[: len(MAGIC)] != MAGIC:
            raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
        header_len = int.from_bytes(prefix[len(MAGIC):], "big")
        try:
            header = pickle.loads(handle.read(header_len))
        except Exception as exc:
            raise CheckpointError(f"{path}: unreadable header: {exc}") from None
        if header.get("format") != _FORMAT:
            raise CheckpointError(
                f"{path}: unsupported checkpoint format {header.get('format')!r}"
            )
        packed_start = len(MAGIC) + 8 + header_len
        packed_bytes = header["packed_bytes"]
        expected_length = packed_start + packed_bytes
        if os.fstat(handle.fileno()).st_size != expected_length:
            raise CheckpointError(f"{path}: truncated packed section")
        mapped = None
        if use_mmap and packed_bytes:
            try:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (OSError, ValueError):  # pragma: no cover - mmap-less fs
                mapped = None
        try:
            if mapped is not None:
                packed = memoryview(mapped)[packed_start:expected_length]
            else:
                handle.seek(packed_start)
                packed = memoryview(handle.read(packed_bytes))
            if zlib.crc32(packed) != header["packed_crc"]:
                raise CheckpointError(f"{path}: packed-section CRC mismatch")
            relations: Dict[str, Tuple[Set[Row], Set[Row]]] = {}
            arities: Dict[str, int] = {}
            for name, entry in header["relations"].items():
                arity = entry["arity"]
                parts = []
                for part in ("derived", "base"):
                    spec = entry[part]
                    if spec["packed"]:
                        width = spec["rows"] * arity * 8
                        view = packed[spec["offset"]:spec["offset"] + width]
                        try:
                            parts.append(
                                _unpack_rows(view, arity, spec["rows"])
                            )
                        finally:
                            view.release()
                    else:
                        parts.append({tuple(row) for row in spec["rows"]})
                relations[name] = (parts[0], parts[1])
                arities[name] = arity
        finally:
            packed.release()
            if mapped is not None:
                mapped.close()
    return Checkpoint(
        program=header["program"],
        wal_records=header["wal_records"],
        symbols=header["symbols"],
        relations=relations,
        arities=arities,
        path=path,
    )


def _fsync_directory(directory: str) -> None:
    """Make a rename durable (POSIX requires the directory be synced too)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """The rotating checkpoint set inside one durability directory."""

    def __init__(self, directory: str, keep: int = 2,
                 use_mmap: bool = True) -> None:
        self.directory = directory
        self.keep = keep
        self.use_mmap = use_mmap

    def _path_for(self, wal_records: int) -> str:
        return os.path.join(
            self.directory, f"checkpoint-{wal_records:012d}.ckpt"
        )

    def list(self) -> List[Tuple[int, str]]:
        """Every checkpoint present, ``(wal_records, path)``, newest first."""
        found: List[Tuple[int, str]] = []
        if not os.path.isdir(self.directory):
            return found
        for entry in os.listdir(self.directory):
            match = _NAME_RE.match(entry)
            if match is not None:
                found.append(
                    (int(match.group(1)), os.path.join(self.directory, entry))
                )
        found.sort(reverse=True)
        return found

    def write(self, checkpoint: Checkpoint) -> int:
        """Persist ``checkpoint`` atomically and prune older generations."""
        written = write_checkpoint(
            self._path_for(checkpoint.wal_records), checkpoint
        )
        self.prune()
        return written

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that validates, or None.

        An unreadable newest file (bit rot; a ``.tmp`` never appears here
        because :meth:`list` only matches final names) falls back to the
        next older one rather than failing recovery outright.
        """
        for _, path in self.list():
            try:
                return load_checkpoint(path, use_mmap=self.use_mmap)
            except (CheckpointError, OSError):
                continue
        return None

    def prune(self) -> List[str]:
        """Drop all but the ``keep`` newest checkpoints and any strays."""
        removed: List[str] = []
        for _, path in self.list()[self.keep:]:
            try:
                os.remove(path)
                removed.append(path)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        if os.path.isdir(self.directory):
            for entry in os.listdir(self.directory):
                if entry.endswith(".ckpt.tmp"):
                    try:
                        os.remove(os.path.join(self.directory, entry))
                        removed.append(entry)
                    except OSError:  # pragma: no cover
                        pass
        return removed

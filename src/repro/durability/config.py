"""Durability configuration: where state lives and how hard it is synced."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

#: Valid ``fsync`` policies, weakest to strongest guarantee.
FSYNC_POLICIES = ("off", "batch", "always")


@dataclass(frozen=True)
class DurabilityConfig:
    """How one :class:`~repro.api.database.Database` persists its state.

    Parameters
    ----------
    dir:
        The durability directory.  Holds one WAL (``wal.log``) and the
        rotating checkpoints (``checkpoint-<n>.ckpt``); created on first
        use.  One directory belongs to one program — recovery refuses a
        checkpoint written by a different program fingerprint.
    fsync:
        When WAL appends reach stable storage:

        * ``"always"`` — fsync after every record; a batch's mutation
          future resolves only once its record survives power loss.
        * ``"batch"`` — records are flushed to the OS per append but
          fsynced at group-commit points (the server's writer syncs once
          per drained queue batch) and on checkpoint/close.  The default:
          bounded loss window, near-``off`` throughput.
        * ``"off"`` — never fsync; durability against process crash only.
    checkpoint_every_bytes / checkpoint_every_records:
        Write a checkpoint (and rotate the WAL) when the live WAL tail
        crosses either threshold.  ``0`` disables that trigger.
    checkpoint_on_close:
        Checkpoint on clean close, so the next open restarts warm without
        replaying the tail.
    mmap_checkpoints:
        Load checkpoint column data through ``mmap`` so large checkpoints
        page lazily instead of being read through userspace buffers.
    keep_checkpoints:
        How many most-recent checkpoints to retain (older ones are pruned
        after a successful write).
    """

    dir: str
    fsync: str = "batch"
    checkpoint_every_bytes: int = 16 * 1024 * 1024
    checkpoint_every_records: int = 1024
    checkpoint_on_close: bool = True
    mmap_checkpoints: bool = True
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be at least 1")

    def with_(self, **changes) -> "DurabilityConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.dir, "wal.log")

    def describe(self) -> str:
        return (
            f"durability(dir={self.dir!r}, fsync={self.fsync}, "
            f"checkpoint@{self.checkpoint_every_records}rec/"
            f"{self.checkpoint_every_bytes}B)"
        )

"""The durability manager: one session's WAL + checkpoint lifecycle.

One :class:`DurabilityManager` owns one durability directory on behalf of
one :class:`~repro.incremental.session.IncrementalSession` — the durable
*writer* (the API layer attaches it to the first connection a durable
database opens; the server funnels every mutation through that one
connection anyway).  Lifecycle::

    manager = DurabilityManager(config, session)
    manager.open()       # recover, truncate any torn tail, start appending
    ...                  # session.apply() now logs each batch via
    ...                  # record_batch() before its snapshot publishes
    manager.sync()       # group-commit point under fsync="batch"
    manager.checkpoint() # explicit checkpoint + WAL rotation
    manager.close()      # final checkpoint (configurable) and shutdown

``record_batch`` runs inside the session's write lock (it is called from
``apply`` itself), so records land in the log in exactly commit order and
the symbol suffix each record carries is contiguous with the previous
record's — :attr:`_symbols_logged` tracks the high-water mark, so even
entries allocated *outside* a batch (the initial fixpoint of a fresh
directory) ride along in the next record's delta.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.durability.checkpoint import Checkpoint, CheckpointStore
from repro.durability.config import DurabilityConfig
from repro.durability.recover import RecoveryReport, recover
from repro.durability.wal import WalRecord, WriteAheadLog


class DurabilityManager:
    """WAL + checkpoint orchestration for one durable session."""

    def __init__(self, config: DurabilityConfig, session) -> None:
        self.config = config
        self.session = session
        os.makedirs(config.dir, exist_ok=True)
        self.store = CheckpointStore(
            config.dir, keep=config.keep_checkpoints,
            use_mmap=config.mmap_checkpoints,
        )
        self.wal: Optional[WriteAheadLog] = None
        self.last_recovery: Optional[RecoveryReport] = None
        self.checkpoints_written = 0
        self.records_appended = 0
        self._symbols_logged = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def open(self) -> RecoveryReport:
        """Recover from the directory, then attach to the session."""
        report, scan = recover(self.session, self.config.wal_path, self.store)
        self.last_recovery = report
        if scan is None:
            self.wal = WriteAheadLog(self.config.wal_path, fsync=self.config.fsync)
        else:
            self.wal = WriteAheadLog.resume(
                self.config.wal_path, scan, fsync=self.config.fsync
            )
        symbols = self.session.storage.symbols
        self._symbols_logged = 0 if symbols.identity else len(symbols)
        self.session.attach_durability(self)
        return report

    def close(self) -> None:
        """Detach, optionally checkpoint the tail away, and close the log.

        Idempotent.  With ``checkpoint_on_close`` (the default) a clean
        shutdown collapses the whole WAL into a checkpoint, so the next
        open is a pure warm start with nothing to replay.
        """
        if self._closed:
            return
        self._closed = True
        self.session.detach_durability(self)
        if self.wal is not None:
            if (
                self.config.checkpoint_on_close
                and self.wal.record_count > 0
                and self.session._evaluated
            ):
                with self.session._write_lock:
                    self._checkpoint_locked()
            self.wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- the write path (called from session.apply, under its write lock) --------

    def record_batch(self, inserts, retracts) -> int:
        """Log one just-committed mutation batch; returns its sequence number.

        The record carries the symbol suffix allocated since the last
        record (normalisation *and* fixpoint allocations), so replay can
        reproduce this process's id assignment exactly.  Durable per the
        fsync policy when this returns — the caller publishes the batch's
        snapshot (and resolves client futures) only afterwards.
        """
        symbols = self.session.storage.symbols
        if symbols.identity:
            base, entries = 0, []
        else:
            base = self._symbols_logged
            entries = symbols.entries_since(base)
        record = WalRecord(
            seq=self.wal.next_seq, sym_base=base, sym_entries=entries,
            inserts=inserts, retracts=retracts,
        )
        started = time.perf_counter()
        with self.session.tracer.span("wal:append") as span:
            written = self.wal.append(record)
            span.set(seq=record.seq, bytes=written,
                     symbols=len(entries), fsync=self.wal.fsync)
        self._symbols_logged = base + len(entries)
        self.records_appended += 1
        metrics = self.session.metrics
        metrics.counter("wal_records_total").inc()
        metrics.counter("wal_bytes_total").inc(written)
        metrics.histogram("wal_append_seconds").observe(
            time.perf_counter() - started
        )
        if self._checkpoint_due():
            self._checkpoint_locked()
        return record.seq

    def _checkpoint_due(self) -> bool:
        bytes_limit = self.config.checkpoint_every_bytes
        records_limit = self.config.checkpoint_every_records
        return bool(
            (bytes_limit and self.wal.size >= bytes_limit)
            or (records_limit and self.wal.record_count >= records_limit)
        )

    # -- group commit ------------------------------------------------------------

    def sync(self) -> int:
        """Make every appended record durable (fsync per policy).

        The server's writer loop calls this once per drained queue batch
        under ``fsync="batch"``: one fsync amortized over the whole group,
        after which all the group's futures resolve.
        """
        if self.wal is None:
            return 0
        synced = self.wal.sync()
        if synced:
            self.session.metrics.counter("wal_syncs_total").inc()
        return synced

    # -- checkpoints -------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a checkpoint of the current fixpoint; returns bytes written.

        Takes the session's write lock (mutations and checkpoints are
        serialized) and forces the initial evaluation if it has not run.
        """
        with self.session._write_lock:
            self.session._ensure_evaluated()
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        """Checkpoint + WAL rotation; caller holds the session write lock."""
        session = self.session
        storage = session.storage
        symbols = storage.symbols
        started = time.perf_counter()
        with session.tracer.span("checkpoint:write") as span:
            names = storage.relation_names()
            checkpoint = Checkpoint(
                program=session.program_fingerprint,
                wal_records=self.wal.next_seq,
                symbols=None if symbols.identity else list(symbols.values()),
                relations={
                    name: (storage.tuples(name), storage.base_rows(name))
                    for name in names
                },
                arities={name: storage.arity_of(name) for name in names},
            )
            written = self.store.write(checkpoint)
            # The checkpoint file is durable (fsync + rename + dir fsync)
            # and covers every record, so the log can restart empty.
            self.wal.rotate(checkpoint.wal_records)
            span.set(bytes=written, rows=checkpoint.row_count(),
                     wal_records=checkpoint.wal_records)
        self.checkpoints_written += 1
        metrics = session.metrics
        metrics.counter("checkpoints_total").inc()
        metrics.counter("checkpoint_bytes_total").inc(written)
        metrics.histogram("checkpoint_seconds").observe(
            time.perf_counter() - started
        )
        return written

    # -- introspection -----------------------------------------------------------

    def stat_row(self) -> tuple:
        """The single ``sys_durability`` catalog row."""
        recovery = self.last_recovery
        return (
            self.config.dir,
            self.config.fsync,
            self.wal.next_seq if self.wal is not None else 0,
            self.wal.size if self.wal is not None else 0,
            self.checkpoints_written,
            recovery.replayed_records if recovery is not None else 0,
            recovery.checkpoint_rows if recovery is not None else 0,
            round(recovery.seconds, 6) if recovery is not None else 0.0,
        )

    def stats(self) -> dict:
        """WAL/checkpoint state for the server's ``stats`` surface."""
        recovery = self.last_recovery
        return {
            "dir": self.config.dir,
            "fsync": self.config.fsync,
            "wal_records": self.wal.next_seq if self.wal is not None else 0,
            "wal_bytes": self.wal.size if self.wal is not None else 0,
            "checkpoints_written": self.checkpoints_written,
            "recovered_records": (
                recovery.replayed_records if recovery is not None else 0
            ),
            "recovered_rows": (
                recovery.checkpoint_rows if recovery is not None else 0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (
            f"DurabilityManager({self.config.dir!r}, "
            f"records={self.records_appended}, "
            f"checkpoints={self.checkpoints_written}, {state})"
        )

"""Warm restart: checkpoint install + WAL tail replay.

Recovery is deliberately boring: the checkpoint's row sets are installed
wholesale as the session's evaluated fixpoint (no re-evaluation), and the
WAL tail is replayed through the *ordinary* incremental mutation path —
``IncrementalSession.apply`` — after extending the symbol table with each
record's delta.  Replaying through the public path means recovery
exercises exactly the code every live mutation exercises, and the
replayed fixpoint repair re-derives the IDB consequences the checkpoint
did not capture.

Symbol alignment is the subtle part.  Ids must come out identical to the
crashed process's or every encoded row in the checkpoint and the WAL means
something else.  Two facts make it work:

* The table prefix a fresh session allocates before any mutation — program
  fact loading and IR constant encoding — is deterministic (list/tree
  traversal order), so it matches the crashed process's prefix.
* Everything after that prefix is *not* deterministic (set iteration order
  is hash-seed-dependent), so each WAL record carries the exact table
  suffix its batch allocated — including entries the batch's *fixpoint*
  allocated (arithmetic head terms) — and replay ``extend``s that suffix
  before re-applying.  Interning then finds every value already bound, so
  replay allocates nothing on its own; ``extend``'s validation turns any
  divergence into a hard :class:`RecoveryError` instead of silent remap.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.durability.checkpoint import Checkpoint, CheckpointStore
from repro.durability.wal import WalError, WalScan, read_wal


class RecoveryError(Exception):
    """Durable state that cannot be reconciled with this session."""


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    checkpoint_records: int = 0    #: WAL records the installed checkpoint covered
    checkpoint_rows: int = 0       #: derived rows restored from the checkpoint
    replayed_records: int = 0      #: WAL tail records re-applied
    truncated_bytes: int = 0       #: torn-tail bytes discarded
    torn: bool = False
    symbols_restored: int = 0
    seconds: float = 0.0

    @property
    def warm(self) -> bool:
        """Whether a checkpoint made this a warm (no cold fixpoint) start."""
        return self.checkpoint_records > 0 or self.checkpoint_rows > 0


def _install_checkpoint(session, checkpoint: Checkpoint) -> int:
    """Align symbols and install the checkpoint's rows as the fixpoint."""
    if checkpoint.program != session.program_fingerprint:
        raise RecoveryError(
            "checkpoint belongs to a different program "
            f"(checkpoint {checkpoint.program[:12]}, "
            f"session {session.program_fingerprint[:12]})"
        )
    symbols = session.storage.symbols
    if (checkpoint.symbols is None) != bool(symbols.identity):
        raise RecoveryError(
            "checkpoint and session disagree on dictionary encoding "
            "(EngineConfig.interning changed since the checkpoint was written)"
        )
    restored = 0
    if checkpoint.symbols is not None:
        current = list(symbols.values())
        saved = checkpoint.symbols
        if saved[: len(current)] != current:
            raise RecoveryError(
                "symbol table divergence: the session's deterministic prefix "
                "does not match the checkpoint's — the program or its facts "
                "changed since the checkpoint was written"
            )
        try:
            restored = symbols.extend(saved[len(current):], base=len(current))
        except ValueError as exc:  # pragma: no cover - prefix check covers this
            raise RecoveryError(str(exc)) from None
    unknown = set(checkpoint.relations) - set(session.storage.relation_names())
    if unknown:
        raise RecoveryError(
            f"checkpoint holds relations the program lacks: {sorted(unknown)}"
        )
    session.restore_fixpoint(checkpoint.relations)
    return restored


def _replay_record(session, record) -> None:
    symbols = session.storage.symbols
    if record.sym_entries:
        try:
            symbols.extend(record.sym_entries, base=record.sym_base)
        except (ValueError, TypeError) as exc:
            raise RecoveryError(
                f"WAL record {record.seq}: symbol delta rejected: {exc}"
            ) from None
    session.apply(record.inserts, record.retracts)


def recover(
    session,
    wal_path: str,
    store: CheckpointStore,
) -> Tuple[RecoveryReport, Optional[WalScan]]:
    """Bring ``session`` up to the last durable state of its directory.

    Returns the report plus the WAL scan (None when no WAL exists yet),
    which the caller reuses to resume appending after the valid prefix.
    Must run before the session evaluates or accepts mutations, and before
    a :class:`~repro.durability.manager.DurabilityManager` attaches — the
    replayed batches are already in the log and must not be re-appended.
    """
    started = time.perf_counter()
    report = RecoveryReport()
    with session.tracer.span("recover:replay", root=True) as span:
        checkpoint = store.latest()
        if checkpoint is not None:
            report.symbols_restored = _install_checkpoint(session, checkpoint)
            report.checkpoint_records = checkpoint.wal_records
            report.checkpoint_rows = checkpoint.row_count()

        scan: Optional[WalScan] = None
        if os.path.exists(wal_path):
            try:
                scan = read_wal(wal_path)
            except WalError as exc:
                raise RecoveryError(f"unreadable WAL {wal_path!r}: {exc}") from None
            if scan.torn:
                report.torn = True
                report.truncated_bytes = scan.file_length - scan.valid_length
            covered = report.checkpoint_records
            if scan.base_seq > covered:
                raise RecoveryError(
                    f"WAL starts at record {scan.base_seq} but the best "
                    f"checkpoint covers only {covered}: committed records "
                    "are missing from the durability directory"
                )
            skip = covered - scan.base_seq
            for record in scan.records[skip:]:
                _replay_record(session, record)
                report.replayed_records += 1
        report.seconds = time.perf_counter() - started
        span.set(
            replayed=report.replayed_records,
            checkpoint_rows=report.checkpoint_rows,
            truncated_bytes=report.truncated_bytes,
        )
    session.metrics.counter("recovery_runs_total").inc()
    session.metrics.counter("recovery_records_replayed_total").inc(
        report.replayed_records
    )
    session.metrics.histogram("recovery_seconds").observe(report.seconds)
    return report, scan

"""The write-ahead log: length-prefixed, checksummed mutation records.

File layout
-----------

::

    +----------------------+      header: 8-byte magic + 8-byte big-endian
    | REPROWAL1  base_seq  |      base sequence number (records committed
    +----------------------+      in earlier, checkpoint-covered epochs)
    | len | crc | payload  |      one record per committed mutation batch:
    +----------------------+      4-byte BE payload length, 4-byte BE
    | len | crc | payload  |      CRC-32 of the payload, pickled payload
    +----------------------+

The record framing follows the server's wire protocol (a big-endian length
prefix guarding a bounded payload) with a CRC-32 added, because unlike a
socket the filesystem *can* hand back a torn suffix after a crash.  The
payload is a pickle, not JSON: rows may hold arbitrary Python values under
the identity codec, and the checkpoint/WAL pair never crosses a trust
boundary — it lives in the database's own durability directory.

Each record carries the :class:`~repro.relational.symbols.SymbolTable`
delta its batch allocated (``sym_base``/``sym_entries``, the table's
``mark``/``entries_since``/``extend`` protocol).  Symbol allocation order
is *not* deterministic across processes — ``PYTHONHASHSEED`` perturbs the
set-iteration order inside the session's normalisation and fixpoint — so
replay must :meth:`~repro.relational.symbols.SymbolTable.extend` the delta
before re-applying the batch; interning then finds every id already
assigned and the recovered store is id-identical to the crashed one.

Torn tails: :func:`read_wal` scans from the header and stops at the first
record whose length prefix is implausible, whose payload is short, or
whose CRC fails — returning everything before the failure and the byte
offset of the last valid record boundary, never anything past it.
"""

from __future__ import annotations

import io
import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience import faults
from repro.resilience.errors import DurabilityError

MAGIC = b"REPROWAL"
_HEADER_LEN = len(MAGIC) + 8          # magic + 8-byte BE base sequence
_PREFIX_LEN = 8                       # 4-byte BE length + 4-byte BE crc32

#: Largest record payload the log will write or believe while scanning.
#: Generous (a mutation batch is bounded by the server's 16 MiB frame cap
#: well before this), but small enough that a corrupt length prefix cannot
#: make the scanner swallow gigabytes of garbage as one "record".
MAX_RECORD = (1 << 30) - 1


class WalError(Exception):
    """A WAL file that cannot be written or is structurally invalid."""


@dataclass
class WalRecord:
    """One committed mutation batch, as logged and as replayed."""

    seq: int
    #: Symbol delta: the table suffix this batch allocated, starting at id
    #: ``sym_base``.  Empty under the identity codec.
    sym_base: int = 0
    sym_entries: List[Any] = field(default_factory=list)
    #: Raw-domain row batches, exactly as the session's ``apply`` saw them.
    inserts: Dict[str, List[Tuple[Any, ...]]] = field(default_factory=dict)
    retracts: Dict[str, List[Tuple[Any, ...]]] = field(default_factory=dict)

    def payload(self) -> bytes:
        return pickle.dumps(
            {
                "seq": self.seq,
                "sym_base": self.sym_base,
                "sym_entries": self.sym_entries,
                "inserts": self.inserts,
                "retracts": self.retracts,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_payload(cls, data: bytes) -> "WalRecord":
        fields = pickle.loads(data)
        return cls(
            seq=fields["seq"],
            sym_base=fields["sym_base"],
            sym_entries=fields["sym_entries"],
            inserts=fields["inserts"],
            retracts=fields["retracts"],
        )


def _encode_header(base_seq: int) -> bytes:
    return MAGIC + base_seq.to_bytes(8, "big")


def _decode_header(data: bytes) -> int:
    """The base sequence number, or raise on a foreign/corrupt header."""
    if len(data) < _HEADER_LEN or data[: len(MAGIC)] != MAGIC:
        raise WalError("not a repro WAL file (bad magic)")
    return int.from_bytes(data[len(MAGIC):_HEADER_LEN], "big")


def frame_record(payload: bytes) -> bytes:
    """One record as bytes: length prefix, CRC-32, payload."""
    if len(payload) > MAX_RECORD:
        raise WalError(
            f"record of {len(payload)} bytes exceeds MAX_RECORD ({MAX_RECORD})"
        )
    return (
        len(payload).to_bytes(4, "big")
        + zlib.crc32(payload).to_bytes(4, "big")
        + payload
    )


@dataclass
class WalScan:
    """What :func:`read_wal` found in one log file."""

    base_seq: int                 #: records committed before this file
    records: List[WalRecord]      #: every intact record, in commit order
    valid_length: int             #: byte offset of the last intact boundary
    torn: bool = False            #: a torn/corrupt tail was truncated away
    file_length: int = 0


def read_wal(path: str) -> WalScan:
    """Scan a WAL file, tolerating (and reporting) a torn tail.

    Stops at the first length/checksum failure and **never** reads past
    it: a record after a torn one was never acknowledged in commit order,
    so replaying it would resurrect a batch the crashed process itself
    would not have recovered.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    base_seq = _decode_header(data)        # raises WalError on bad magic
    records: List[WalRecord] = []
    offset = _HEADER_LEN
    torn = False
    while offset < len(data):
        header = data[offset:offset + _PREFIX_LEN]
        if len(header) < _PREFIX_LEN:
            torn = True
            break
        length = int.from_bytes(header[:4], "big")
        crc = int.from_bytes(header[4:], "big")
        if length == 0 or length > MAX_RECORD:
            torn = True
            break
        payload = data[offset + _PREFIX_LEN:offset + _PREFIX_LEN + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            records.append(WalRecord.from_payload(payload))
        except Exception:
            # The CRC held but the pickle did not decode — treat it like
            # any other torn record: truncate here, keep the prefix.
            torn = True
            break
        offset += _PREFIX_LEN + length
    return WalScan(
        base_seq=base_seq,
        records=records,
        valid_length=offset,
        torn=torn,
        file_length=len(data),
    )


class WriteAheadLog:
    """Appender over one WAL file (see the module docstring for layout).

    ``fsync`` is the policy from :class:`~repro.durability.config.
    DurabilityConfig`: ``"always"`` syncs per append, ``"batch"`` leaves
    syncing to explicit :meth:`sync` calls at group-commit points, and
    ``"off"`` never syncs.  Every append is flushed to the OS regardless,
    so under ``"batch"``/``"off"`` only machine (not process) failure can
    lose acknowledged records.
    """

    def __init__(self, path: str, fsync: str = "batch",
                 truncate_at: Optional[int] = None) -> None:
        self.path = path
        self.fsync = fsync
        self._file: Optional[io.BufferedWriter] = None
        self._unsynced = 0
        if os.path.exists(path):
            with open(path, "rb") as handle:
                self.base_seq = _decode_header(handle.read(_HEADER_LEN))
            if truncate_at is not None:
                if truncate_at < _HEADER_LEN:
                    raise WalError("cannot truncate into the WAL header")
                with open(path, "r+b") as handle:
                    handle.truncate(truncate_at)
            self._file = open(path, "ab")
        else:
            self.base_seq = 0
            self._file = open(path, "wb")
            self._file.write(_encode_header(0))
            self._file.flush()
        self.size = self._file.tell()
        #: Records in *this* file (the live epoch); the next record gets
        #: sequence number ``base_seq + record_count``.
        self.record_count = 0

    @classmethod
    def resume(cls, path: str, scan: WalScan, fsync: str) -> "WriteAheadLog":
        """Open for append after recovery, truncating the torn tail."""
        wal = cls(path, fsync=fsync,
                  truncate_at=scan.valid_length if scan.torn else None)
        wal.size = scan.valid_length
        wal.record_count = len(scan.records)
        return wal

    @property
    def next_seq(self) -> int:
        return self.base_seq + self.record_count

    def append(self, record: WalRecord) -> int:
        """Append one record; returns the bytes written.

        When this returns, the record is durable per the configured fsync
        policy — callers resolving client futures do so only afterwards.
        """
        if self._file is None:
            raise WalError("write-ahead log is closed")
        faults.fire("wal.append", DurabilityError)
        frame = frame_record(record.payload())
        self._file.write(frame)
        self._file.flush()
        if self.fsync == "always":
            faults.fire("wal.fsync", DurabilityError)
            os.fsync(self._file.fileno())
        else:
            self._unsynced += 1
        self.size += len(frame)
        self.record_count += 1
        return len(frame)

    def sync(self) -> int:
        """Force appended records to stable storage (group-commit point).

        Returns how many appends this call made durable.  A no-op under
        ``fsync="off"`` (flushes reach the OS on every append already).
        """
        if self._file is None or self.fsync == "off":
            drained, self._unsynced = self._unsynced, 0
            return drained
        faults.fire("wal.fsync", DurabilityError)
        os.fsync(self._file.fileno())
        drained, self._unsynced = self._unsynced, 0
        return drained

    def rotate(self, base_seq: int) -> None:
        """Start a fresh epoch: truncate to an empty log at ``base_seq``.

        Called right after a checkpoint covering every record so far; the
        checkpoint *must* be durable first — rotation destroys the only
        other copy of those records.  Crash-safe on either side: before
        the rotation the checkpoint simply skips the still-present
        records, after it the header's ``base_seq`` says they are gone.
        """
        if self._file is None:
            raise WalError("write-ahead log is closed")
        self._file.close()
        with open(self.path, "wb") as handle:
            handle.write(_encode_header(base_seq))
            handle.flush()
            os.fsync(handle.fileno())
        self._file = open(self.path, "ab")
        self.base_seq = base_seq
        self.size = _HEADER_LEN
        self.record_count = 0
        self._unsynced = 0

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync != "off":
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadLog({self.path!r}, records={self.record_count}, "
            f"bytes={self.size}, fsync={self.fsync})"
        )

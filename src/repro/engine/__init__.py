"""The execution engine: the user-facing entry point for running programs.

:class:`ExecutionEngine` wires the substrates together: it loads a
:class:`~repro.datalog.program.DatalogProgram` into the relational storage
layer, performs automatic index selection from the rule schema, lowers the
program to the IROp tree, optionally applies ahead-of-time optimization, and
runs the :class:`~repro.core.executor.IRExecutor` under one
:class:`~repro.core.config.EngineConfig`.
"""

from repro.core.config import (
    AOTSortMode,
    CompilationGranularity,
    EngineConfig,
    ExecutionMode,
    ShardingConfig,
)
from repro.core.profile import RuntimeProfile
from repro.engine.engine import ExecutionEngine
from repro.engine.indexing import select_indexes

__all__ = [
    "AOTSortMode",
    "CompilationGranularity",
    "EngineConfig",
    "ExecutionEngine",
    "ExecutionMode",
    "ShardingConfig",
    "RuntimeProfile",
    "select_indexes",
]

"""The execution engine façade."""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from repro.core.aot import apply_aot_optimization
from repro.core.config import AOTSortMode, EngineConfig, ExecutionMode
from repro.core.executor import IRExecutor
from repro.core.join_order import JoinOrderOptimizer
from repro.core.profile import RuntimeProfile
from repro.datalog.program import DatalogProgram
from repro.ir.builder import build_naive_ir, build_program_ir
from repro.ir.printer import explain
from repro.relational.relation import Row
from repro.relational.storage import StorageManager
from repro.engine.indexing import select_indexes


class ExecutionEngine:
    """Evaluates one Datalog program under one configuration.

    The engine is single-shot: construct, :meth:`run`, read results.  This
    mirrors how the paper benchmarks Carac (each measurement is a fresh
    evaluation over freshly loaded facts) and keeps the storage lifecycle
    unambiguous.
    """

    def __init__(self, program: DatalogProgram, config: Optional[EngineConfig] = None) -> None:
        self.program = program
        self.config = config or EngineConfig()
        self.profile = RuntimeProfile()

        setup_start = time.perf_counter()
        self.storage = StorageManager(program)
        if self.config.use_indexes:
            for relation, column in sorted(select_indexes(program)):
                self.storage.register_index(relation, column)

        if self.config.mode == ExecutionMode.NAIVE:
            self.tree = build_naive_ir(program)
        else:
            self.tree = build_program_ir(program)

        if self.config.mode == ExecutionMode.AOT and self.config.aot_sort != AOTSortMode.NONE:
            apply_aot_optimization(
                self.tree,
                JoinOrderOptimizer(self.config.selectivity),
                self.storage,
                self.config.aot_sort,
                use_indexes=self.config.use_indexes,
                profile=self.profile,
            )
        self.setup_seconds = time.perf_counter() - setup_start
        self._ran = False

    # -- execution --------------------------------------------------------------

    def run(self) -> Dict[str, Set[Row]]:
        """Evaluate to fixpoint; returns every IDB relation's tuples."""
        if self._ran:
            raise RuntimeError(
                "this engine has already run; build a new ExecutionEngine to re-evaluate"
            )
        executor = IRExecutor(self.storage, self.config, self.profile)
        executor.execute(self.tree)
        self._ran = True
        return {
            relation: self.storage.tuples(relation)
            for relation in self.program.idb_relations()
        }

    def relation(self, name: str) -> Set[Row]:
        """Tuples of one relation (IDB or EDB) after :meth:`run`."""
        return self.storage.tuples(name)

    def execution_seconds(self) -> float:
        """Wall-clock time of the :meth:`run` call (excludes engine setup)."""
        return self.profile.wall_seconds

    def explain(self) -> str:
        """The current IROp tree, including any plans rewritten by AOT/JIT."""
        return explain(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionEngine({self.program.name!r}, config={self.config.describe()!r})"
        )

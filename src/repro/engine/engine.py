"""The execution engine façade."""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

if TYPE_CHECKING:  # repro.api sits above this layer; import only for types
    from repro.api.result import QueryResult, ResultSet

from repro.core.aot import apply_aot_optimization
from repro.core.config import AOTSortMode, EngineConfig, ExecutionMode
from repro.core.executor import IRExecutor
from repro.core.join_order import JoinOrderOptimizer
from repro.core.profile import RuntimeProfile
from repro.datalog.program import DatalogProgram
from repro.ir.builder import build_naive_ir, build_program_ir
from repro.ir.encoding import encode_tree
from repro.ir.ops import ProgramOp
from repro.ir.printer import explain
from repro.relational.operators import EXECUTORS
from repro.relational.relation import Row
from repro.relational.storage import StorageManager
from repro.relational.symbols import SymbolTable
from repro.engine.indexing import select_indexes


def prepare_evaluation(
    program: DatalogProgram,
    config: EngineConfig,
    profile: Optional[RuntimeProfile] = None,
    catalog=None,
) -> Tuple[StorageManager, ProgramOp]:
    """Build the storage and IR tree for one evaluation of ``program``.

    Shared between the single-shot :class:`ExecutionEngine` and the
    long-lived :class:`repro.incremental.IncrementalSession`: declares every
    relation, loads the EDB facts (interning them into the storage's
    :class:`~repro.relational.symbols.SymbolTable` under the default
    ``config.interning``), registers the schema-selected indexes, lowers
    the program to IR, rewrites every plan constant into the symbol domain
    (:func:`repro.ir.encoding.encode_tree`) and (in AOT mode) applies the
    ahead-of-time join-order optimization to the tree in place.

    ``catalog`` is an optional system catalog (duck-typed — this layer
    never imports :mod:`repro.introspect`): when the program references
    ``sys_`` relations, ``catalog.install(storage, program)`` materializes
    their current rows as ordinary interned EDB facts, so catalog relations
    evaluate exactly like user relations.  Without a catalog, referenced
    ``sys_`` relations stay empty.
    """
    if config.executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {config.executor!r}; expected one of {EXECUTORS}"
        )
    if config.faults is not None:
        # Fault points are physical, process-wide sites, so activating a
        # configured schedule installs it process-wide (last install wins).
        from repro.resilience import faults as fault_registry

        fault_registry.install(config.faults)
    symbols = SymbolTable() if config.interning else None
    storage = StorageManager(program, symbols=symbols)
    if config.use_indexes:
        for relation, column in sorted(select_indexes(program)):
            storage.register_index(relation, column)
    if config.mode == ExecutionMode.NAIVE:
        tree = build_naive_ir(program)
    else:
        tree = build_program_ir(program)
    # After the IR build so safety errors (clearer messages for reserved-
    # namespace misuse) surface before catalog schema validation.
    if catalog is not None:
        catalog.install(storage, program)
    encode_tree(tree, storage.symbols)

    apply_aot_if_configured(tree, config, storage, profile)
    return storage, tree


def apply_aot_if_configured(
    tree: ProgramOp,
    config: EngineConfig,
    storage: StorageManager,
    profile: Optional[RuntimeProfile] = None,
) -> None:
    """Run the ahead-of-time join-order optimization when the config asks.

    Shared by :func:`prepare_evaluation` and the incremental session (which
    also optimizes its update tree once at construction).
    """
    if config.mode == ExecutionMode.AOT and config.aot_sort != AOTSortMode.NONE:
        apply_aot_optimization(
            tree,
            JoinOrderOptimizer(config.selectivity),
            storage,
            config.aot_sort,
            use_indexes=config.use_indexes,
            profile=profile,
        )


def sharding_active(config: EngineConfig) -> bool:
    """Whether this configuration evaluates through the parallel subsystem.

    ``shards=1`` is the standard single-shard engine by definition, and the
    NAIVE mode — a deliberately simple baseline — always bypasses sharding.
    """
    return (
        config.sharding is not None
        and config.sharding.shards > 1
        and config.mode != ExecutionMode.NAIVE
    )


class ExecutionEngine:
    """Evaluates one Datalog program under one configuration.

    The engine is single-shot: construct, :meth:`run`, read results.  This
    mirrors how the paper benchmarks Carac (each measurement is a fresh
    evaluation over freshly loaded facts) and keeps the storage lifecycle
    unambiguous.
    """

    def __init__(
        self,
        program: DatalogProgram,
        config: Optional[EngineConfig] = None,
        catalog=None,
    ) -> None:
        self.program = program
        self.config = config or EngineConfig()
        self.profile = RuntimeProfile()

        setup_start = time.perf_counter()
        self.storage, self.tree = prepare_evaluation(
            program, self.config, self.profile, catalog=catalog
        )
        self.setup_seconds = time.perf_counter() - setup_start
        self._ran = False
        #: Set by :meth:`run` when the shard-parallel evaluator was used.
        self.parallel_report = None
        # Telemetry: the registry of the configured TelemetryConfig, else a
        # private one; the API layer folds the profile in after evaluation.
        from repro.telemetry.config import metrics_of

        self.metrics = metrics_of(self.config.telemetry)
        #: Thunk resolving to the trace of this evaluation (set by the API
        #: layer when it opens a root span around :meth:`evaluate`).
        self._trace_source = None

    # -- execution --------------------------------------------------------------

    def _execute_once(self) -> None:
        """Run the fixpoint computation (idempotent)."""
        if self._ran:
            return
        if sharding_active(self.config):
            # Lazy import: repro.parallel sits above the engine layer.
            from repro.parallel.executor import ParallelEvaluator

            evaluator = ParallelEvaluator(
                self.program, self.config, self.storage, self.tree, self.profile
            )
            self.parallel_report = evaluator.run()
        else:
            executor = IRExecutor(self.storage, self.config, self.profile)
            executor.execute(self.tree)
        self._ran = True
        self.metrics.absorb_profile(self.profile)

    def evaluate(self) -> "ResultSet":
        """Evaluate to fixpoint; every IDB relation as a :class:`QueryResult`.

        The canonical way to read a single-shot evaluation.  Idempotent: the
        fixpoint runs once, later calls return fresh views of the same state.
        """
        from repro.api.result import ResultSet

        self._execute_once()
        results = {
            relation: self.result(relation)
            for relation in self.program.idb_relations()
        }
        return ResultSet(
            results, explain=self._render_explain, trace=self._trace_source
        )

    def result(self, name: str) -> "QueryResult":
        """One relation (IDB or EDB) as a :class:`QueryResult`."""
        from repro.api.database import schema_for
        from repro.api.result import QueryResult

        self._execute_once()
        schema = schema_for(self.program, name)

        def explain() -> str:
            return self._render_explain(relation=name)

        # The engine is single-shot, so storage is stable after the fixpoint:
        # rows may be fetched lazily, on first access.  Rows stay in the
        # storage (symbol) domain; the result decodes at its boundary.
        return QueryResult(
            schema, lambda: self.storage.tuples(name), explain=explain,
            symbols=self.storage.symbols, trace=self._trace_source,
        )

    def run(self) -> Dict[str, Set[Row]]:
        """Deprecated: use :meth:`evaluate` (or :class:`repro.Database`).

        Evaluates to fixpoint and returns the legacy ``{relation: set(rows)}``
        dictionary over every IDB relation.
        """
        warnings.warn(
            "ExecutionEngine.run() is deprecated; use ExecutionEngine.evaluate() "
            "or the repro.Database API, which return QueryResult objects",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._ran:
            raise RuntimeError(
                "this engine has already run; build a new ExecutionEngine to re-evaluate"
            )
        self._execute_once()
        return {
            relation: self.storage.decoded_tuples(relation)
            for relation in self.program.idb_relations()
        }

    def relation(self, name: str) -> Set[Row]:
        """Tuples of one relation (IDB or EDB) after evaluation, decoded."""
        return self.storage.decoded_tuples(name)

    def _render_explain(self, relation: Optional[str] = None) -> str:
        from repro.api.explain import render_explain

        row_count = None
        if relation is not None and self._ran:
            row_count = self.storage.cardinality(relation)
        return render_explain(
            title=f"evaluation of {self.program.name!r}",
            config=self.config,
            tree=self.tree,
            profile=self.profile if self._ran else None,
            relation=relation,
            row_count=row_count,
            symbols=self.storage.symbols,
            trace=self._trace_source() if self._trace_source is not None else None,
        )

    def execution_seconds(self) -> float:
        """Wall-clock time of the :meth:`run` call (excludes engine setup)."""
        return self.profile.wall_seconds

    def explain(self) -> str:
        """The current IROp tree, including any plans rewritten by AOT/JIT."""
        return explain(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionEngine({self.program.name!r}, config={self.config.describe()!r})"
        )

"""Automatic index selection from the rule schema (paper §IV).

As each rule is defined, Carac knows which columns participate in joins
(shared variables) or filters (constants), and builds one index per such
column so the index can be maintained incrementally before execution begins.
This module computes that set of (relation, column) pairs from a program.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Constant, Variable


def select_indexes(program: DatalogProgram) -> Set[Tuple[str, int]]:
    """The (relation, column) pairs that should carry a hash index.

    A column is indexed when, in any rule body, it holds a constant (filter
    predicate) or a variable that also occurs in *another* body atom of the
    same rule (join predicate).  Negated atoms participate too: their
    membership probes benefit from bound columns the same way.
    """
    indexes: Set[Tuple[str, int]] = set()
    for rule in program.rules:
        atoms = list(rule.body_atoms())
        occurrences: Dict[Variable, int] = {}
        for atom in atoms:
            for variable in atom.variables():
                occurrences[variable] = occurrences.get(variable, 0) + 1
        for atom in atoms:
            for column, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    indexes.add((atom.relation, column))
                elif isinstance(term, Variable):
                    appears_elsewhere = any(
                        term in other.variables() for other in atoms if other is not atom
                    )
                    if appears_elsewhere:
                        indexes.add((atom.relation, column))
    return indexes

"""Automatic index selection and maintenance (paper §IV).

As each rule is defined, Carac knows which columns participate in joins
(shared variables) or filters (constants), and builds one index per such
column so the index can be maintained incrementally before execution begins.
This module computes that set of (relation, column) pairs from a program,
and — for the incremental subsystem, where rows are also *removed* — provides
the retraction-side maintenance helpers: hash indexes are updated in place on
:meth:`~repro.relational.relation.Relation.discard`, and
:func:`verify_indexes` audits that every index still mirrors its relation
exactly (used by session integrity checks and the retraction tests).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.literals import Atom
from repro.datalog.program import DatalogProgram
from repro.datalog.terms import Constant, Variable
from repro.relational.storage import DatabaseKind, StorageManager


def select_indexes(program: DatalogProgram) -> Set[Tuple[str, int]]:
    """The (relation, column) pairs that should carry a hash index.

    A column is indexed when, in any rule body, it holds a constant (filter
    predicate) or a variable that also occurs in *another* body atom of the
    same rule (join predicate).  Negated atoms participate too: their
    membership probes benefit from bound columns the same way.
    """
    indexes: Set[Tuple[str, int]] = set()
    for rule in program.rules:
        atoms = list(rule.body_atoms())
        occurrences: Dict[Variable, int] = {}
        for atom in atoms:
            for variable in atom.variables():
                occurrences[variable] = occurrences.get(variable, 0) + 1
        for atom in atoms:
            for column, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    indexes.add((atom.relation, column))
                elif isinstance(term, Variable):
                    appears_elsewhere = any(
                        term in other.variables() for other in atoms if other is not atom
                    )
                    if appears_elsewhere:
                        indexes.add((atom.relation, column))
    return indexes


def select_retraction_indexes(program: DatalogProgram) -> Set[Tuple[str, int]]:
    """Extra (relation, column) indexes that make DRed re-derivation cheap.

    Targeted re-derivation pins a rule's *head* variables to one deleted row
    and then probes the body.  That turns body-atom columns holding head
    variables into filter predicates — columns the forward-evaluation policy
    of :func:`select_indexes` never indexes (a head variable need not occur
    in two body atoms).  Without these indexes every derivability probe
    degenerates into a full scan of the body's leading relation, and a
    retraction batch can cost more than the recompute it is meant to avoid.
    """
    indexes: Set[Tuple[str, int]] = set()
    for rule in program.rules:
        head_variables = {
            term for term in rule.head.terms if isinstance(term, Variable)
        }
        for atom in rule.positive_atoms():
            for column, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term in head_variables:
                    indexes.add((atom.relation, column))
    return indexes


def verify_indexes(storage: StorageManager) -> List[str]:
    """Audit every registered index against its relation's row set.

    Returns a list of human-readable inconsistency descriptions (empty when
    everything is consistent).  Insertion keeps indexes valid by construction;
    retraction removes rows from index buckets in place, and this check is the
    cheap way for tests and the incremental session to prove no bucket leaked
    a retracted row or lost a surviving one.
    """
    problems: List[str] = []
    for name in storage.relation_names():
        for kind in DatabaseKind:
            relation = storage.relation(name, kind)
            rows = relation.rows()
            for column in relation.indexed_columns():
                index = relation.build_index(column)  # fetches the existing index
                if len(index) != len(rows):
                    problems.append(
                        f"{relation.name}[{column}]: index holds {len(index)} rows, "
                        f"relation holds {len(rows)}"
                    )
                missing = [row for row in rows if row not in index.lookup(row[column])]
                if missing:
                    problems.append(
                        f"{relation.name}[{column}]: {len(missing)} rows missing "
                        f"from index (e.g. {missing[0]!r})"
                    )
    return problems


def rebuild_indexes(storage: StorageManager, relation: str) -> None:
    """Drop and rebuild every index of one relation from its current rows.

    The recovery path when an index audit fails: retraction-heavy sessions can
    call this instead of tearing down the whole session.  Registered columns
    are preserved.
    """
    columns = storage.registered_indexes(relation)
    for kind in DatabaseKind:
        rel = storage.relation(relation, kind)
        rel.drop_indexes()
        for column in columns:
            rel.build_index(column)

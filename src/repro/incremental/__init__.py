"""Incremental evaluation: long-lived sessions over a changing fact base.

The single-shot :class:`~repro.engine.engine.ExecutionEngine` mirrors how the
paper benchmarks Carac: load facts, run to fixpoint, read results, throw the
engine away.  A production deployment looks different — the same program is
queried over and over while facts arrive and expire.  This package provides
that service shape:

* :class:`IncrementalSession` — owns one :class:`~repro.relational.storage.StorageManager`
  across many fixpoints; ``insert_facts`` / ``retract_facts`` mutate the fact
  base in batches and repair the fixpoint incrementally instead of
  recomputing it.
* Insertions propagate by semi-naive **delta propagation** seeded from the
  new rows (reusing the Delta-Known/Delta-New machinery of §V-B1/§V-D).
* Retractions use **delete-and-rederive** (DRed): over-delete the entire
  derivation cone of the retracted rows, then re-derive every over-deleted
  fact that still has a derivation from the surviving database.
* :class:`ResultCache` — memoizes per-relation query results, keyed by a
  stable program/config fingerprint and invalidated per relation through the
  storage layer's generation counters.

Programs with negation or aggregation fall back to transparent full
recomputation inside the same session API (incremental maintenance under
stratified negation needs support counts we do not track); every positive
program — including all of the paper's macro benchmarks — takes the true
incremental path in every :class:`~repro.core.config.ExecutionMode`.
"""

from repro.incremental.cache import CacheStats, ResultCache
from repro.incremental.dred import DeletionCone, over_delete, rederivation_seeds
from repro.incremental.session import IncrementalSession, UpdateReport

__all__ = [
    "CacheStats",
    "DeletionCone",
    "IncrementalSession",
    "ResultCache",
    "UpdateReport",
    "over_delete",
    "rederivation_seeds",
]

"""The session result cache: fingerprint-keyed, generation-invalidated.

A cache entry memoizes the tuple set of one relation as of one *validity
snapshot*: for every relation the queried relation transitively depends on,
a token pairing the storage layer's generation counter with the session's
per-relation mutation digest.  A mutation bumps the counter and advances the
digest of each relation it touches, so entries are invalidated exactly
per-relation — inserting into ``edge`` invalidates ``path`` (which depends
on it) but not an unrelated relation's cached result.

Keys embed the program's fingerprint (rules *and* initial facts) and the
configuration description, so one cache instance may be shared freely:
sessions share an entry exactly when the queried relation's whole dependency
cone has identical mutation history (true replicas, or sessions that only
diverged in unrelated relations); any divergence inside the cone changes a
token and the lookup rejects the entry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.relational.relation import Row

CacheKey = Tuple[str, str, str]  # (program fingerprint, config key, relation)


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    generations: Dict[str, object]   # opaque per-relation validity tokens
    rows: FrozenSet[Row]


class ResultCache:
    """Query-result memoization for incremental sessions.

    ``max_entries`` bounds memory: insertion past the bound evicts the oldest
    entry (FIFO — entries are tiny compared to the result sets they point to,
    and the workloads' query mix is stable enough that recency tracking is
    not worth the bookkeeping).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: Dict[CacheKey, _Entry] = {}
        # One Database-level cache is shared across every connection, so the
        # server probes it from reader threads while the writer stores into
        # it; lookup's stale-entry delete and store's FIFO eviction both
        # mutate the dict, so every access goes through this lock (entries
        # point at immutable frozensets — only bookkeeping is guarded).
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self,
        key: CacheKey,
        current_generations: Mapping[str, object],
    ) -> Optional[FrozenSet[Row]]:
        """The cached rows, or None on miss / stale generations.

        A stale entry (any dependency's generation moved) is dropped and
        counted as an invalidation plus a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if any(
                current_generations.get(name) != generation
                for name, generation in entry.generations.items()
            ):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return entry.rows

    def store(
        self,
        key: CacheKey,
        generations: Mapping[str, object],
        rows: FrozenSet[Row],
    ) -> None:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = _Entry(dict(generations), rows)

    def invalidate_relation(self, relation: str) -> int:
        """Explicitly drop every entry whose *queried* relation is ``relation``.

        Generation checking already handles dependency-based invalidation;
        this hook exists for callers that mutate storage behind the session's
        back and want to be explicit about it.  Returns the number dropped.
        """
        with self._lock:
            stale = [key for key in self._entries if key[2] == relation]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache(entries={len(self._entries)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )

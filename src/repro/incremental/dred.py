"""Delete-and-rederive (DRed) for positive Datalog programs.

Retraction is the hard half of incremental maintenance: a derived fact must
disappear only when its *last* derivation does, and naive deletion cannot see
alternative derivations.  DRed (Gupta, Mumick & Subrahmanian, SIGMOD '93)
splits the problem:

1. **Over-delete** — compute the entire derivation cone of the retracted
   rows: any fact derivable *through* a deleted fact is provisionally
   deleted, to a fixpoint.  This over-approximates (a fact with an
   independent derivation lands in the cone too) but is cheap and sound.
2. **Re-derive** — a provisionally deleted fact survives if it is still an
   asserted base row, or some rule re-derives it from the post-deletion
   database.  Survivors are seeded back as deltas and ordinary semi-naive
   insertion propagation restores everything downstream of them.

Both phases reuse the existing sub-query machinery: over-deletion evaluates
the same per-position delta plans as incremental insertion
(:func:`repro.ir.planning.update_subqueries`), with Delta-Known temporarily
holding the *deleted* frontier instead of the new one, so join ordering and
index usage behave exactly as in forward evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.ir.planning import seed_plan, update_subqueries
from repro.relational.operators import Bindings, JoinPlan, SubqueryEvaluator
from repro.relational.relation import Row
from repro.relational.storage import DatabaseKind, StorageManager
from repro.relational.symbols import IDENTITY


@dataclass
class DeletionCone:
    """The over-deletion result: per relation, the provisionally deleted rows."""

    deleted: Dict[str, Set[Row]] = field(default_factory=dict)
    rounds: int = 0

    def rows(self, relation: str) -> Set[Row]:
        return self.deleted.get(relation, set())

    def total(self) -> int:
        return sum(len(rows) for rows in self.deleted.values())

    def relations(self) -> List[str]:
        return [name for name, rows in self.deleted.items() if rows]


DeltaPlans = Dict[str, List[Tuple[str, JoinPlan]]]
SeedPlans = List[Tuple[Rule, JoinPlan]]


def update_plans_by_delta(program: DatalogProgram) -> DeltaPlans:
    """Map each relation to the (head, plan) pairs whose delta choice reads it.

    Plans depend only on the (immutable) program, so long-lived sessions
    compute this once and pass it into every :func:`over_delete` call.
    """
    by_delta: DeltaPlans = {}
    for rule in program.rules:
        for plan in update_subqueries(rule):
            delta_relation = plan.delta_relation()
            if delta_relation is not None:
                by_delta.setdefault(delta_relation, []).append(
                    (rule.head_relation, plan)
                )
    return by_delta


def rule_seed_plans(program: DatalogProgram) -> SeedPlans:
    """The all-Derived seed plan of every rule (precomputable, immutable)."""
    return [(rule, seed_plan(rule)) for rule in program.rules]


def over_delete(
    program: DatalogProgram,
    storage: StorageManager,
    retracted: Dict[str, Set[Row]],
    evaluator: SubqueryEvaluator,
    plans_by_delta: Optional[DeltaPlans] = None,
) -> DeletionCone:
    """Phase 1: the derivation cone of ``retracted``, without touching Derived.

    Runs the per-position delta plans with Delta-Known holding the deleted
    frontier.  The Derived database stays intact throughout (the plans' other
    atoms read it), which is precisely DRed's over-approximation: facts that
    also have derivations avoiding the deleted rows still join the cone and
    are rescued by re-derivation.  Deltas are scrubbed on exit.
    """
    if plans_by_delta is None:
        plans_by_delta = update_plans_by_delta(program)
    cone = DeletionCone()
    frontier: Dict[str, Set[Row]] = {}
    for name, rows in retracted.items():
        present = {row for row in rows if row in storage.derived(name)}
        if present:
            cone.deleted.setdefault(name, set()).update(present)
            frontier[name] = set(present)

    all_names = storage.relation_names()
    storage.clear_deltas(all_names)
    try:
        while frontier:
            cone.rounds += 1
            for name, rows in frontier.items():
                delta = storage.relation(name, DatabaseKind.DELTA_KNOWN)
                for row in rows:
                    delta.insert(row)

            next_frontier: Dict[str, Set[Row]] = {}
            for name in frontier:
                for head, plan in plans_by_delta.get(name, ()):
                    derived_head = storage.derived(head)
                    already = cone.deleted.setdefault(head, set())
                    for row in evaluator.evaluate(plan):
                        if row in derived_head and row not in already:
                            already.add(row)
                            next_frontier.setdefault(head, set()).add(row)

            for name in frontier:
                storage.relation(name, DatabaseKind.DELTA_KNOWN).clear()
            frontier = next_frontier
    finally:
        storage.clear_deltas(all_names)
    return cone


def rederivation_seeds(
    program: DatalogProgram,
    storage: StorageManager,
    cone: DeletionCone,
    evaluator: SubqueryEvaluator,
    seed_plans: Optional[SeedPlans] = None,
    symbols=IDENTITY,
) -> Dict[str, Set[Row]]:
    """Phase 2 seeds: over-deleted rows that survive against the pruned database.

    Must be called *after* the cone has been physically removed from Derived.
    A row survives when it is still an asserted base row, or any rule for its
    relation re-derives it from the remaining facts.  Rows that only become
    derivable again once a survivor is restored are *not* found here — the
    caller propagates the seeds semi-naively, which re-derives those
    cascades.

    The derivability check is *targeted*: each deleted row pre-binds the
    rule's head variables, so the body join degenerates into indexed probes
    around that one fact and exits on the first witness — the cone is usually
    tiny relative to the database, and evaluating whole rule bodies here
    would cost as much as a naive iteration.  Rules whose head terms are
    expressions (not invertible from a row) fall back to one full body
    evaluation intersected with the cone.
    """
    survivors: Dict[str, Set[Row]] = {}
    for name, rows in cone.deleted.items():
        base_survivors = {row for row in rows if storage.is_base_row(name, row)}
        if base_survivors:
            survivors.setdefault(name, set()).update(base_survivors)

    if seed_plans is None:
        seed_plans = rule_seed_plans(program)
    for rule, plan in seed_plans:
        head = rule.head_relation
        deleted_here = cone.deleted.get(head)
        if not deleted_here:
            continue
        found = survivors.setdefault(head, set())
        pending = deleted_here - found
        if not pending:
            continue
        if all(isinstance(t, (Variable, Constant)) for t in rule.head.terms):
            for row in pending:
                bindings = _head_bindings(rule, row, symbols)
                if bindings is not None and evaluator.satisfiable(plan, bindings):
                    found.add(row)
        else:
            found.update(evaluator.evaluate(plan) & pending)
    return survivors


def _head_bindings(rule: Rule, row: Row, symbols=IDENTITY) -> Optional[Bindings]:
    """Bindings that pin the rule's head to ``row``; None when incompatible.

    ``row`` is a storage-domain (encoded) tuple while the rule AST is raw,
    so head constants are translated through the symbol table for the
    comparison: a constant the table never interned cannot match any stored
    row.  The produced bindings stay encoded — they pre-bind an encoded
    plan.
    """
    bindings: Bindings = {}
    for term, value in zip(rule.head.terms, row):
        if isinstance(term, Constant):
            if symbols.lookup(term.value) != value:
                return None
        elif isinstance(term, Variable):
            if bindings.setdefault(term, value) != value:
                return None
        else:  # pragma: no cover - caller checks head invertibility first
            raise TypeError(f"cannot invert head term {term!r}")
    return bindings

"""The long-lived incremental evaluation session.

:class:`IncrementalSession` converts the engine from single-shot to
service-shaped: one session owns its storage across arbitrarily many
fixpoints, accepts batched fact mutations, repairs the fixpoint
incrementally, and memoizes query results until a mutation actually touches
a dependency.  The IR tree, the schema-selected indexes and (in AOT mode)
the ahead-of-time join-order decisions are all built once at session start
and reused by every update.

Update strategies
-----------------

* **Insertions** seed Delta-Known with the genuinely new rows and run the
  update IR (:func:`repro.ir.builder.build_update_ir`) — a single semi-naive
  loop whose delta choice ranges over every positive atom, so a change to any
  relation propagates through recursive and non-recursive rules alike.
* **Retractions** run delete-and-rederive (:mod:`repro.incremental.dred`):
  over-delete the derivation cone, physically remove it (hash indexes are
  maintained row-by-row), re-seed the survivors, and propagate.
* Programs with negation or aggregation are maintained by transparent
  **full recomputation** over the session's base facts — same API, same
  results, no incremental speedup.  ``report.strategy`` says which path ran.

Every :class:`~repro.core.config.ExecutionMode` is supported; updates are
executed through the ordinary :class:`~repro.core.executor.IRExecutor`, so
JIT configurations keep compiling per-update and AOT configurations reuse
their frozen plans.
"""

from __future__ import annotations

import hashlib
import threading
import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # repro.api sits above this layer; import only for types
    from repro.api.result import ResultSet

from repro.core.config import EngineConfig
from repro.core.executor import IRExecutor
from repro.core.profile import RuntimeProfile
from repro.relational.storage import DatabaseKind
from repro.datalog.fingerprint import fingerprint_program
from repro.datalog.program import DatalogProgram
from repro.engine.engine import (
    ExecutionEngine,
    apply_aot_if_configured,
    prepare_evaluation,
)
from repro.engine.indexing import select_retraction_indexes
from repro.incremental.cache import ResultCache
from repro.incremental.dred import (
    over_delete,
    rederivation_seeds,
    rule_seed_plans,
    update_plans_by_delta,
)
from repro.ir.builder import build_update_ir
from repro.ir.encoding import encode_plan, encode_tree
from repro.ir.ops import ProgramOp
from repro.relational.columnar import ColumnarBlock
from repro.relational.operators import SubqueryEvaluator
from repro.relational.relation import Row
from repro.resilience.errors import ResilienceError, WorkerFailed
from repro.resilience.limits import NOOP_GOVERNOR

RowBatch = Iterable[Sequence[object]]


@dataclass
class _SessionShardState:
    """The session's persistent shard-parallel propagation machinery."""

    spec: "object"      # repro.parallel.partition.PartitionSpec
    sharded: "object"   # repro.parallel.sharded_storage.ShardedStorage
    pool: "object"      # repro.parallel.executor.WorkerPool
    #: Workers interpret through the vectorized executor (no compiled
    #: backend), so their batch counters must be drained into the profile.
    vectorized: bool = False


@dataclass
class UpdateReport:
    """What one mutation batch did to the session's fixpoint."""

    strategy: str = "incremental"          # "incremental[-sharded]" or "recompute"
    inserted: int = 0                      # genuinely new rows asserted
    retracted: int = 0                     # base rows actually retracted
    over_deleted: int = 0                  # size of the DRed deletion cone
    rederived: int = 0                     # cone rows that survived re-derivation
    propagated: int = 0                    # facts promoted by delta propagation
    seconds: float = 0.0


def _config_cache_key(config: EngineConfig) -> str:
    """A deterministic cache-key component covering every semantics-relevant knob."""
    return "|".join(
        str(part)
        for part in (
            config.mode.value,
            config.backend,
            config.granularity.value,
            config.async_compilation,
            config.compile_mode,
            config.use_indexes,
            config.evaluator_style,
            config.executor,
            config.optimize_seed,
            config.aot_sort.value,
            config.aot_online,
            config.interning,
        )
    )


def _dependency_closure(program: DatalogProgram) -> Dict[str, FrozenSet[str]]:
    """Map each relation to every relation its contents can depend on."""
    direct: Dict[str, Set[str]] = {name: {name} for name in program.relation_names()}
    for rule in program.rules:
        direct.setdefault(rule.head_relation, {rule.head_relation}).update(
            atom.relation for atom in rule.body_atoms()
        )
    changed = True
    while changed:
        changed = False
        for name, deps in direct.items():
            expanded: Set[str] = set(deps)
            for dep in deps:
                expanded |= direct.get(dep, set())
            if expanded != deps:
                direct[name] = expanded
                changed = True
    return {name: frozenset(deps) for name, deps in direct.items()}


class IncrementalSession:
    """A long-lived evaluation of one program over a changing fact base.

    Parameters
    ----------
    program:
        The Datalog program.  The session copies it, so later mutations of
        the caller's object cannot desynchronise the session's IR.
    config:
        Any :class:`EngineConfig`; defaults to the interpreted configuration.
    cache:
        Optional shared :class:`ResultCache`.  Entries are keyed by program
        fingerprint (including initial facts) and configuration, and guarded
        by per-relation validity tokens (generation counter + mutation
        digest over the queried relation's dependency cone), so sharing is
        always safe: sessions share an entry exactly when that cone's
        mutation history is identical.  By default each session gets a
        private cache.
    metrics:
        Optional shared :class:`~repro.telemetry.MetricsRegistry`; a
        :class:`~repro.api.database.Database` passes its own so totals
        aggregate across every connection.  Defaults to the configured
        telemetry's registry (or a private one).
    catalog:
        Optional system catalog (duck-typed; see :mod:`repro.introspect`).
        When the program's rules read ``sys_`` relations, the catalog
        materializes their rows as ordinary base facts at setup and
        re-snapshots them before each query, so introspection data joins
        with user relations like any other EDB.  Programs reading the
        catalog always take the recompute update path — catalog contents
        change outside the mutation API, so incremental maintenance
        cannot track them.
    """

    def __init__(
        self,
        program: DatalogProgram,
        config: Optional[EngineConfig] = None,
        cache: Optional[ResultCache] = None,
        metrics=None,
        catalog=None,
    ) -> None:
        self.program = program.copy()
        self.config = config or EngineConfig()
        self.profile = RuntimeProfile()
        from repro.telemetry.config import metrics_of

        self.metrics = metrics if metrics is not None else metrics_of(
            self.config.telemetry
        )
        self.tracer = self.config.tracer()
        #: The trace of the most recent traced mutation/evaluation (None
        #: when tracing is off); surfaced through ``Connection.explain()``.
        self.last_trace = None

        self._catalog = catalog
        self._catalog_names: Tuple[str, ...] = (
            tuple(catalog.names_in(self.program)) if catalog is not None else ()
        )
        self._catalog_frozen = False

        setup_start = time.perf_counter()
        self.storage, self.tree = prepare_evaluation(
            self.program, self.config, self.profile, catalog=catalog
        )
        # Catalog-reading programs fall back to recompute: sys_ rows change
        # outside the mutation API (every query/span moves them), so the
        # delta/DRed machinery cannot maintain them.
        self.incremental_capable = not self._catalog_names and not any(
            rule.negated_atoms() or rule.has_aggregation()
            for rule in self.program.rules
        )
        self._update_tree: Optional[ProgramOp] = None
        if self.incremental_capable:
            if self.config.use_indexes:
                for relation, column in sorted(select_retraction_indexes(self.program)):
                    self.storage.register_index(relation, column)
            self._update_tree = build_update_ir(self.program, check_safety=False)
            encode_tree(self._update_tree, self.storage.symbols)
            # DRed plans depend only on the immutable program: build once
            # (constants pre-encoded into the session's symbol domain),
            # reuse for every retraction batch.
            symbols = self.storage.symbols
            self._dred_delta_plans = {
                name: [(head, encode_plan(plan, symbols)) for head, plan in pairs]
                for name, pairs in update_plans_by_delta(self.program).items()
            }
            self._dred_seed_plans = [
                (rule, encode_plan(plan, symbols))
                for rule, plan in rule_seed_plans(self.program)
            ]
            apply_aot_if_configured(
                self._update_tree, self.config, self.storage, self.profile
            )
        self.setup_seconds = time.perf_counter() - setup_start

        self.cache = cache if cache is not None else ResultCache()
        self.program_fingerprint = fingerprint_program(self.program)
        # Cache keys embed the *initial* facts too: two sessions whose
        # programs differ only in their EDB could otherwise collide on key
        # and generation vector alike.  The ResultCache is in-process, so
        # an order-independent builtin hash of the fact set is enough (and
        # ~10x cheaper than canonicalising a 10k-fact EDB to text); the
        # canonical-text digest remains the fallback for unhashable facts.
        try:
            edb_token: object = hash(frozenset(self.program.facts))
        except TypeError:
            edb_token = fingerprint_program(self.program, include_facts=True)
        self._cache_fingerprint = (self.program_fingerprint, edb_token)
        # Per-relation rolling digests of the mutations applied to each
        # relation.  Generation counters alone cannot distinguish *diverged*
        # sessions sharing a cache (different mutations advance them
        # identically), so cache validity tokens pair the counter with the
        # relation's mutation digest: sessions share an entry exactly when
        # the queried relation's whole dependency cone has identical history.
        self._mutation_digests: Dict[str, str] = {
            name: "0" for name in self.program.relation_names()
        }
        # Catalog relations: the digest of the snapshot materialized at
        # setup, advanced by _refresh_catalog whenever the snapshot changes
        # — so cache validity tokens diverge exactly when catalog state does.
        if self._catalog is not None:
            self._mutation_digests.update(
                self._catalog.digests(self._catalog_names)
            )
        self._config_key = _config_cache_key(self.config)
        self._dependencies = _dependency_closure(self.program)
        self._evaluated = False
        # Decoded-result memo for :meth:`fetch`: relation -> (encoded
        # frozenset, decoded frozenset).  Validity is by *identity* of the
        # encoded set — the ResultCache returns the same object while the
        # entry is valid, so a storage mutation (new encoded set) misses
        # here automatically and repeat fetches skip the O(n) decode.
        self._decoded_results: Dict[str, Tuple[FrozenSet[Row], FrozenSet[Row]]] = {}
        self.updates_applied = 0
        self.last_report: Optional[UpdateReport] = None
        # Shard-parallel update propagation (see _propagate_parallel): the
        # per-shard replicas and their worker pool are built lazily on the
        # first batch that needs them and then kept in sync across batches.
        self._shard_state = None
        # MVCC snapshot publication (opt-in; see enable_snapshots).  The
        # write lock serializes apply() so concurrent callers — the server
        # funnels all mutations through one worker thread, but embedded
        # callers may not — never interleave two fixpoint repairs.
        self._write_lock = threading.Lock()
        self.snapshots = None  # Optional[SnapshotManager]
        # Durable-writer hook (see repro.durability): when a manager is
        # attached, every apply() logs its batch to the WAL before the
        # batch's snapshot publishes.  None for non-durable sessions.
        self._durability = None  # Optional[DurabilityManager]
        # Resilience accounting surfaced through ``sys_resilience``:
        # taxonomy-code -> count of queries aborted by governance, plus
        # shard-propagation rebuild events.
        self.resilience_events: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release pooled resources (idempotent; only needed when sharded)."""
        if self._shard_state is not None:
            self._shard_state.pool.close()
            self._shard_state = None

    def __enter__(self) -> "IncrementalSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation -------------------------------------------------------------

    def _execute(self, tree: ProgramOp, governor=None) -> RuntimeProfile:
        profile = RuntimeProfile()
        from repro.engine.engine import sharding_active

        if tree is self.tree and sharding_active(self.config):
            # The initial fixpoint (and any full rebuild) takes the same
            # shard-parallel path a sharded ExecutionEngine would.
            from repro.parallel.executor import ParallelEvaluator

            ParallelEvaluator(
                self.program, self.config, self.storage, tree, profile,
                governor=governor,
            ).run()
        else:
            executor = IRExecutor(
                self.storage, self.config, profile, governor=governor
            )
            executor.execute(tree)
        self._absorb_profile(profile)
        return profile

    def _absorb_profile(self, profile: RuntimeProfile) -> None:
        """Fold one execution's profile into the session-lifetime profile.

        ``self.profile`` accumulates every fixpoint and update the session
        ran, so ``Connection.explain()`` can surface the adaptive join-order
        and code-generation decisions taken across the session's lifetime.
        """
        self.profile.iterations.extend(profile.iterations)
        self.profile.reorders.extend(profile.reorders)
        self.profile.compile_events.extend(profile.compile_events)
        self.profile.block_plans.extend(profile.block_plans)
        self.profile.absorb_block_stats(profile.block_joins)
        self.profile.sources.interpreted += profile.sources.interpreted
        self.profile.sources.compiled += profile.sources.compiled
        self.profile.sources.vectorized += profile.sources.vectorized
        self.profile.wall_seconds += profile.wall_seconds
        # Size-like fields: the latest snapshot wins (they describe current
        # state, not deltas); counter-like cache/pool fields accumulate.
        self.profile.result_sizes.update(profile.result_sizes)
        if profile.symbol_stats:
            self.profile.symbol_stats = dict(profile.symbol_stats)
        for result, count in profile.cache_probes.items():
            self.profile.cache_probes[result] = (
                self.profile.cache_probes.get(result, 0) + count
            )
        self.profile.pool_degradations += profile.pool_degradations
        self.profile.worker_failures += profile.worker_failures
        self.metrics.absorb_profile(profile)

    def _ensure_evaluated(self, governor=None) -> None:
        if self._evaluated:
            return
        try:
            self._execute(self.tree, governor)
        except ResilienceError as error:
            # An aborted fixpoint leaves storage mid-derivation; re-running
            # from that state could silently MISS derivations (delta seeding
            # dedupes against already-derived rows).  Reset to ground state
            # so the next query recomputes from scratch.
            self._record_resilience_abort(error)
            self._reset_to_base()
            raise
        self._evaluated = True

    def _record_resilience_abort(self, error: ResilienceError) -> None:
        self.resilience_events[error.code] = (
            self.resilience_events.get(error.code, 0) + 1
        )
        self.metrics.counter("resilience_aborts_total", code=error.code).inc()

    def refresh(self) -> None:
        """Force the initial fixpoint computation (otherwise lazy)."""
        self._ensure_evaluated()

    # -- MVCC snapshots (opt-in; the serving layer's read path) -------------------

    def enable_snapshots(self):
        """Turn on MVCC snapshot publication and publish the initial version.

        Idempotent.  After this, every :meth:`apply` publishes one
        :class:`~repro.incremental.snapshots.StorageSnapshot` at its commit
        point, so readers (the query server's connections) serve from the
        last committed version without ever blocking behind a writer's
        fixpoint.  Opt-in because publishing costs one frozen-rows probe per
        relation per batch — embedded single-threaded use shouldn't pay it.
        """
        if self.snapshots is None:
            from repro.incremental.snapshots import SnapshotManager

            self.snapshots = SnapshotManager(self.storage, metrics=self.metrics)
            self.publish_snapshot()
        return self.snapshots

    def publish_snapshot(self):
        """Publish the current fixpoint as the next committed version."""
        if self.snapshots is None:
            raise RuntimeError("snapshots not enabled; call enable_snapshots()")
        self._ensure_evaluated()
        return self.snapshots.publish()

    # -- durability (opt-in; see repro.durability) --------------------------------

    def attach_durability(self, manager) -> None:
        """Make this session the durable writer behind ``manager``.

        Called by :meth:`~repro.durability.manager.DurabilityManager.open`
        *after* recovery — replayed batches are already in the log and
        must not be re-appended.  One manager at a time.
        """
        if self._durability is not None and self._durability is not manager:
            raise RuntimeError("a durability manager is already attached")
        self._durability = manager

    def detach_durability(self, manager) -> None:
        """Stop logging mutations (idempotent; manager identity checked)."""
        if self._durability is manager:
            self._durability = None

    def restore_fixpoint(
        self, states: Mapping[str, Tuple[Set[Row], Set[Row]]]
    ) -> None:
        """Install recovered ``{name: (derived, base)}`` rows as the fixpoint.

        The warm-restart entry point: rows come from a checkpoint already
        aligned to this session's symbol domain, so no evaluation runs —
        the session behaves exactly as if it had computed this fixpoint
        itself.  Publishes a snapshot when MVCC is enabled.
        """
        with self._write_lock:
            for name, (derived, base) in states.items():
                self.storage.restore_state(name, derived, base)
            self._decoded_results.clear()
            self._evaluated = True
            if self.snapshots is not None:
                self.snapshots.publish()

    # -- mutation ---------------------------------------------------------------

    def insert_facts(self, relation: str, rows: RowBatch) -> UpdateReport:
        """Assert a batch of facts and repair the fixpoint incrementally."""
        return self.apply({relation: rows}, None)

    def retract_facts(self, relation: str, rows: RowBatch) -> UpdateReport:
        """Retract a batch of *base* facts (rows never asserted are ignored)."""
        return self.apply(None, {relation: rows})

    def apply(
        self,
        inserts: Optional[Mapping[str, RowBatch]] = None,
        retracts: Optional[Mapping[str, RowBatch]] = None,
    ) -> UpdateReport:
        """Apply one mixed mutation batch: retractions first, then insertions.

        A row both retracted and inserted in the same batch ends up present.
        Returns an :class:`UpdateReport`; the session is at fixpoint again
        when this method returns.  Batches are serialized by the session's
        write lock; with snapshots enabled the repaired fixpoint is
        published as the next committed version before the lock drops.
        """
        started = time.perf_counter()
        with self._write_lock, self.tracer.span(
            "mutation", root=True, program=self.program_fingerprint[:12]
        ) as span:
            # The whole mutation path runs ungoverned — session-wide
            # ``config.limits`` are *query* governance, and a write must
            # never be bounced (or half-applied) by a read deadline.
            self._ensure_evaluated(NOOP_GOVERNOR)
            durability = self._durability
            if durability is not None:
                # Materialize the raw batches up front: _normalise consumes
                # them (they may be generators), and the WAL logs exactly
                # what the caller handed in — raw-domain rows, replayable
                # through this same method.
                inserts = {
                    name: [tuple(row) for row in rows]
                    for name, rows in (inserts or {}).items()
                }
                retracts = {
                    name: [tuple(row) for row in rows]
                    for name, rows in (retracts or {}).items()
                }
            insert_rows = self._normalise(inserts)
            retract_rows = self._normalise(retracts, allocate=False)

            if self.incremental_capable:
                report = self._apply_incremental(insert_rows, retract_rows)
            else:
                report = self._apply_recompute(insert_rows, retract_rows)
            if durability is not None:
                # Log before the snapshot publishes: a version readers can
                # see must already be recoverable (per the fsync policy).
                durability.record_batch(inserts, retracts)
            if self.snapshots is not None:
                self.snapshots.publish()
            report.seconds = time.perf_counter() - started
            span.set(
                strategy=report.strategy, inserted=report.inserted,
                retracted=report.retracted, propagated=report.propagated,
                rederived=report.rederived, over_deleted=report.over_deleted,
            )
        if span.trace is not None:
            self.last_trace = span.trace
        self.updates_applied += 1
        self.last_report = report
        self.metrics.counter("mutations_total", strategy=report.strategy).inc()
        self.metrics.counter("rows_inserted_total").inc(report.inserted)
        self.metrics.counter("rows_retracted_total").inc(report.retracted)
        self.metrics.histogram("mutation_seconds").observe(report.seconds)
        return report

    def _advance_mutation_digests(
        self,
        inserts: Dict[str, Set[Row]],
        retracts: Dict[str, Set[Row]],
    ) -> None:
        """Fold one batch's *effective* changes into the touched digests.

        Callers pass only rows that actually changed state (genuinely new
        inserts, base rows actually retracted): a no-op batch must not
        advance any digest, or it would invalidate still-valid cache entries
        and permanently fork a replica off a shared cache.
        """
        touched: Dict[str, "hashlib._Hash"] = {}
        for tag, batch in (("+", inserts), ("-", retracts)):
            for name in batch:
                digest = touched.get(name)
                if digest is None:
                    digest = hashlib.sha256(
                        self._mutation_digests[name].encode("utf-8")
                    )
                    touched[name] = digest
                rows = ";".join(sorted(repr(row) for row in batch[name]))
                digest.update(f"{tag}{rows}\n".encode("utf-8"))
        for name, digest in touched.items():
            self._mutation_digests[name] = digest.hexdigest()

    def _normalise(
        self, batch: Optional[Mapping[str, RowBatch]], allocate: bool = True
    ) -> Dict[str, Set[Row]]:
        """Validate one mutation batch and encode it into the storage domain.

        This is the session's interning boundary: everything downstream
        (delta seeding, DRed, shard scatter, the base-row ledger) works on
        encoded rows.  ``allocate=False`` is the retraction path — a value
        the symbol table has never seen cannot occur in any stored row, so
        such rows are dropped here instead of allocating ids for them.
        """
        symbols = self.storage.symbols
        normalised: Dict[str, Set[Row]] = {}
        for name, rows in (batch or {}).items():
            arity = self.storage.arity_of(name)  # raises on unknown relations
            row_set = {tuple(row) for row in rows}
            for row in row_set:
                if len(row) != arity:
                    raise ValueError(
                        f"relation {name!r} has arity {arity}, got row {row!r}"
                    )
            if allocate:
                encoded = set(symbols.intern_rows(row_set))
            else:
                encoded = {
                    encoded_row
                    for encoded_row in map(symbols.lookup_row, row_set)
                    if encoded_row is not None
                }
            if encoded:
                normalised[name] = encoded
        return normalised

    def _apply_incremental(
        self,
        inserts: Dict[str, Set[Row]],
        retracts: Dict[str, Set[Row]],
    ) -> UpdateReport:
        report = UpdateReport(strategy="incremental")

        # -- retractions: delete-and-rederive ---------------------------------
        seeded = 0
        eligible: Dict[str, Set[Row]] = {}
        for name, rows in retracts.items():
            base = {row for row in rows if self.storage.is_base_row(name, row)}
            for row in base:
                self.storage.forget_base_row(name, row)
            if base:
                eligible[name] = base
        if eligible:
            report.retracted = sum(len(rows) for rows in eligible.values())
            evaluator = SubqueryEvaluator(
                self.storage, self.config.evaluator_style,
                executor=self.config.executor, tracer=self.tracer,
            )
            with self.tracer.span("dred:over-delete") as dred_span:
                cone = over_delete(
                    self.program, self.storage, eligible, evaluator,
                    plans_by_delta=self._dred_delta_plans,
                )
                report.over_deleted = cone.total()
                dred_span.set(rows=report.over_deleted)
            for name, rows in cone.deleted.items():
                self.storage.retract_rows(name, rows)
                if self._shard_state is not None:
                    # Keep the persistent shard replicas consistent with the
                    # deletion cone so insert batches after a retraction can
                    # still propagate shard-parallel without a rebuild.
                    self._shard_state.sharded.retract_rows(name, rows)
            with self.tracer.span("dred:rederive") as dred_span:
                seeds = rederivation_seeds(
                    self.program, self.storage, cone, evaluator,
                    seed_plans=self._dred_seed_plans,
                    symbols=self.storage.symbols,
                )
                for name, rows in seeds.items():
                    report.rederived += self.storage.seed_delta(name, rows)
                dred_span.set(rows=report.rederived)
            seeded += report.rederived

        # -- insertions --------------------------------------------------------
        effective_inserts: Dict[str, Set[Row]] = {}
        for name, rows in inserts.items():
            new_rows = {
                row for row in rows if row not in self.storage.derived(name)
            }
            if new_rows:
                effective_inserts[name] = new_rows
            report.inserted += self.storage.seed_delta(name, rows)
            for row in rows:
                self.storage.insert_base(name, row)
        seeded += report.inserted

        # One semi-naive propagation covers both phases: rederivation
        # survivors and fresh insertions are all just delta seeds by now.
        # Propagation runs ungoverned even when session-wide limits are
        # configured: QueryLimits bound *queries*, and a mid-propagation
        # abort would leave base rows inserted, deltas half-consumed and
        # ``_evaluated`` still True — later reads would silently serve an
        # incomplete fixpoint, and the WAL (written after apply) would
        # diverge from in-memory state.
        if seeded:
            if self._sharded_propagation():
                report.propagated = self._propagate_parallel()
                report.strategy = "incremental-sharded"
            else:
                profile = self._execute(self._update_tree, NOOP_GOVERNOR)
                report.propagated = sum(it.promoted for it in profile.iterations)
        self._advance_mutation_digests(effective_inserts, eligible)
        return report

    # -- shard-parallel propagation ----------------------------------------------

    def _sharded_propagation(self) -> bool:
        from repro.engine.engine import sharding_active

        return self.incremental_capable and sharding_active(self.config)

    def _build_shard_state(self):
        """Build the persistent per-shard replicas for update propagation.

        The update tree's delta choice ranges over *every* positive atom, so
        no pivot-aligned partitioning exists: propagation always runs the
        replicated strategy — each shard mirrors the whole derived database
        and owns a hash slice of every delta.  The fork pool is excluded
        here: children would stop seeing the coordinator's between-batch
        replica maintenance, so an explicit ``pool="process"`` request
        degrades to serial for session propagation (full evaluations still
        honour it).
        """
        from repro.ir.builder import collect_loop_plans
        from repro.parallel.exchange import ExchangeRouter
        from repro.parallel.executor import (
            ShardWorker,
            make_pool,
            resolve_pool_kind,
            resolve_shard_backend,
        )
        from repro.parallel.partition import PartitionSpec
        from repro.parallel.sharded_storage import ShardedStorage

        sharding = self.config.sharding
        relations = self.storage.relation_names()
        spec = PartitionSpec(
            shards=sharding.shards,
            columns={name: 0 for name in relations},
            replicated=frozenset(),
            aligned=False,
        )
        sharded = ShardedStorage(spec, self.storage)
        for name in relations:
            sharded.replicate_derived(self.storage, name)
        groups = collect_loop_plans(self._update_tree.strata[0].loop)
        if groups is None:  # pragma: no cover - update trees are always flat
            return None
        router = ExchangeRouter(spec)
        workers = [
            ShardWorker(shard, sharded.shard(shard), groups, relations, router=router)
            for shard in range(spec.shards)
        ]
        backend_name = resolve_shard_backend(self.config)
        for worker in workers:
            worker.prepare(
                backend_name, self.config.use_indexes,
                self.config.evaluator_style, self.config.executor,
                trace=self.tracer.enabled,
            )
        pool_kind = resolve_pool_kind(sharding, spec.shards)
        if pool_kind == "process":
            pool_kind = "serial"
            self.profile.pool_degradations += 1
            self.metrics.counter("pool_degradations_total").inc()
        pool = make_pool(pool_kind, workers)
        return _SessionShardState(
            spec=spec, sharded=sharded, pool=pool,
            vectorized=backend_name is None and self.config.executor == "vectorized",
        )

    def _propagate_parallel(self) -> int:
        """Propagate the just-seeded deltas through the shard pool.

        The global storage has already absorbed the seeds (Derived and
        Delta-Known); the shards receive the seed rows (replica maintenance
        plus owner-sliced deltas) and iterate exchange rounds to global
        quiescence, folding each round's accepted rows back into the global
        storage as they appear.  Returns the number of propagated facts —
        the same count the serial update tree would report.
        """
        from repro.parallel.exchange import QuiescenceTracker
        from repro.parallel.executor import run_replicated_rounds

        fresh = self._shard_state is None
        if fresh:
            self._shard_state = self._build_shard_state()
        state = self._shard_state
        if state is None:  # pragma: no cover - defensive fallback
            profile = self._execute(self._update_tree, NOOP_GOVERNOR)
            return sum(it.promoted for it in profile.iterations)

        def absorb(accepted: Mapping[str, Sequence[Sequence[object]]]) -> None:
            for name, rows in accepted.items():
                self.storage.absorb_rows(name, rows)

        try:
            for name in self.storage.relation_names():
                delta = self.storage.relation(name, DatabaseKind.DELTA_KNOWN)
                if not len(delta):
                    continue
                # Move the seeded delta around in block form: one columnar
                # batch per relation feeds both replica maintenance and the
                # owner split, which hashes the partition column column-wise.
                block = ColumnarBlock.from_relation(delta)
                if not fresh:
                    # Replicas built earlier have not seen this batch's seeds.
                    state.sharded.broadcast_derived(name, block)
                state.sharded.scatter_delta(name, block)

            # The update tree is one flat stratum; the span mirrors the
            # level a serial propagation would produce, and worker-recorded
            # spans are reparented onto it below.
            tracker = QuiescenceTracker()
            with self.tracer.span("stratum", index=0, strategy="replicated",
                                  shards=state.spec.shards) as span:
                result = run_replicated_rounds(
                    state.pool,
                    state.spec.shards,
                    max_rounds=min(
                        self.config.max_iterations, self.config.sharding.max_rounds
                    ),
                    tracker=tracker,
                    on_accepted=absorb,
                )
                if self.tracer.enabled:
                    for records in state.pool.invoke("drain_spans"):
                        self.tracer.merge_buffer(records, parent=span)
        except WorkerFailed:
            # A shard died (or was fault-injected) mid-propagation.  The
            # global storage may hold a partially-absorbed round — and delta
            # seeding dedupes against derived rows, so re-driving the update
            # tree from that state could MISS derivations.  The one always-
            # correct recovery is a full recompute from base facts.
            state.pool.close()
            self._shard_state = None
            self.profile.worker_failures += 1
            self.metrics.counter("worker_failures_total").inc()
            self.resilience_events["propagation_rebuilds"] = (
                self.resilience_events.get("propagation_rebuilds", 0) + 1
            )
            self._reset_to_base()
            # Ungoverned like every mutation-path execution: a governed
            # recovery aborting mid-recompute would strand storage between
            # base and fixpoint with the abort already swallowed here.
            profile = self._execute(self.tree, NOOP_GOVERNOR)
            self._evaluated = True
            return sum(it.promoted for it in profile.iterations)

        # Fold this propagation into the lifetime profile exactly like a
        # serial update execution would: per-round iteration records, the
        # workers' batch counters, and the post-update relation sizes —
        # without this, session reuse under sharding under-reported in
        # ``explain()`` and the metrics registry.
        rounds_profile = RuntimeProfile()
        for stats in tracker.rounds:
            rounds_profile.record_iteration(
                0, stats.round_index, stats.promoted, None, 0.0
            )
        if state.vectorized:
            from repro.parallel.executor import drain_pool_vectorized_stats

            drain_pool_vectorized_stats(state.pool, rounds_profile)
        state.sharded.clear_deltas()
        self.storage.clear_deltas(self.storage.relation_names())
        for name in self.storage.relation_names():
            rounds_profile.result_sizes[name] = self.storage.cardinality(name)
        rounds_profile.record_symbol_stats(self.storage.symbols)
        self._absorb_profile(rounds_profile)
        return result.promoted

    def _apply_recompute(
        self,
        inserts: Dict[str, Set[Row]],
        retracts: Dict[str, Set[Row]],
    ) -> UpdateReport:
        """Fallback for programs with negation/aggregation: recompute from base."""
        report = UpdateReport(strategy="recompute")
        effective_retracts: Dict[str, Set[Row]] = {}
        effective_inserts: Dict[str, Set[Row]] = {}
        for name, rows in retracts.items():
            for row in rows:
                if self.storage.forget_base_row(name, row):
                    report.retracted += 1
                    effective_retracts.setdefault(name, set()).add(row)
        for name, rows in inserts.items():
            for row in rows:
                # Count rows new to Derived — the same meaning `inserted`
                # has on the incremental path (seed_delta's count); rows
                # already derived don't change the fixpoint but still become
                # base rows.
                if row not in self.storage.derived(name):
                    report.inserted += 1
                    effective_inserts.setdefault(name, set()).add(row)
                self.storage.insert_base(name, row)
        # A no-op batch (nothing retracted, every insert already derived)
        # keeps the fixpoint: skip the full recompute and its cache-wide
        # generation churn.
        if effective_retracts or effective_inserts:
            self._rebuild_from_base()
        self._advance_mutation_digests(effective_inserts, effective_retracts)
        return report

    def _reset_to_base(self) -> None:
        """Discard every derived row, keeping base facts.

        After an aborted or failed fixpoint this restores the one state
        evaluation is always correct from: ground facts only, no deltas,
        no partial derivations.  The session is marked unevaluated so the
        next read recomputes.
        """
        names = self.storage.relation_names()
        base = {name: self.storage.base_rows(name) for name in names}
        self.storage.reset_idb(names)
        for name, rows in base.items():
            for row in rows:
                self.storage.insert_base(name, row)
        self._decoded_results.clear()
        self._evaluated = False

    def _rebuild_from_base(self) -> None:
        """Clear every database, re-load base rows, re-run the main tree.

        Ungoverned: rebuilds run on the mutation/maintenance path (recompute
        strategy, catalog refresh), where an abort would strand storage
        between base and fixpoint — see :meth:`_apply_incremental`.
        """
        self._reset_to_base()
        self._execute(self.tree, NOOP_GOVERNOR)
        self._evaluated = True

    # -- queries ----------------------------------------------------------------

    def _refresh_catalog(self) -> None:
        """Re-snapshot the program's ``sys_`` relations before serving a query.

        When a catalog relation's contents changed since the last snapshot,
        the fresh rows replace the stale base facts, the relation's mutation
        digest advances (cache entries over the old snapshot stop matching),
        and — because catalog readers are recompute-strategy sessions — the
        fixpoint is rebuilt from base so rules over ``sys_`` see the new rows.
        """
        if self._catalog is None or not self._catalog_names:
            return
        if self._catalog_frozen:
            return
        changed = self._catalog.refresh(self.storage, self._catalog_names)
        if not changed:
            return
        self._mutation_digests.update(changed)
        if self._evaluated:
            self._rebuild_from_base()

    def fetch_encoded(self, relation: str, limits=None,
                      token=None) -> FrozenSet[Row]:
        """Storage-domain tuples of ``relation``, served from cache when valid.

        The cache holds *encoded* rows — under dictionary encoding a cached
        result is a frozenset of int tuples, one copy of each string living
        in the symbol table — and :class:`~repro.api.result.QueryResult`
        decodes lazily at its boundary.  Symbol ids are deterministic per
        (program, configuration, mutation history), which is exactly the
        cache key + validity-token granularity, so shared entries decode
        identically in every session allowed to hit them.
        """
        governor = self.config.governor(limits, token)
        self._refresh_catalog()
        self._ensure_evaluated(governor)
        dependencies = self._dependencies.get(relation, frozenset((relation,)))
        tokens = {
            name: f"{generation}:{self._mutation_digests[name]}"
            for name, generation in self.storage.generations(dependencies).items()
        }
        key = (self._cache_fingerprint, self._config_key, relation)
        cached = self.cache.lookup(key, tokens)
        self._record_cache_probe(relation, hit=cached is not None)
        if cached is not None:
            rows = cached
        else:
            rows = frozenset(self.storage.tuples(relation))
            self.cache.store(key, tokens, rows)
        if governor.active and rows:
            # Conservative machine-word estimate (8 bytes per column);
            # the result stays cached — the limit bounds this query's
            # response, not the fixpoint.
            arity = len(next(iter(rows)))
            try:
                governor.check_result_bytes(len(rows) * arity * 8)
            except ResilienceError as error:
                self._record_resilience_abort(error)
                raise
        return rows

    def _record_cache_probe(self, relation: str, hit: bool) -> None:
        """Count one ResultCache probe and annotate the ambient span."""
        result = "hit" if hit else "miss"
        self.metrics.counter("result_cache_total", result=result).inc()
        if self.tracer.enabled:
            from repro.telemetry.spans import current_span

            span = current_span()
            if span is not None and not span.noop:
                span.set(cache=result)
                span.event("result-cache", relation=relation, result=result)

    def fetch(self, relation: str, limits=None, token=None) -> FrozenSet[Row]:
        """The current (raw-domain) tuples of ``relation``.

        Decoding is memoised per cached encoded set, so repeat fetches of
        an unchanged relation return the same frozenset object instead of
        re-resolving every row through the symbol table.

        ``limits`` (a :class:`~repro.resilience.limits.QueryLimits`) and
        ``token`` (a :class:`~repro.resilience.cancel.CancellationToken`)
        govern any fixpoint this read has to run: the evaluation aborts
        with a typed :class:`~repro.resilience.errors.ResilienceError`
        when a bound is hit, leaving the session consistent (ground state;
        the next read recomputes).
        """
        rows = self.fetch_encoded(relation, limits, token)
        symbols = self.storage.symbols
        if symbols.identity:
            return rows
        memo = self._decoded_results.get(relation)
        if memo is not None and memo[0] is rows:
            return memo[1]
        decoded = frozenset(symbols.resolve_rows(rows))
        self._decoded_results[relation] = (rows, decoded)
        return decoded

    def query(self, relation: str) -> FrozenSet[Row]:
        """Deprecated: use :meth:`fetch` (or ``Connection.query`` for
        :class:`~repro.api.result.QueryResult` objects)."""
        warnings.warn(
            "IncrementalSession.query() is deprecated; use "
            "IncrementalSession.fetch() or a repro.Database connection, whose "
            "query() returns QueryResult objects",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fetch(relation)

    def results(self) -> Dict[str, FrozenSet[Row]]:
        """Every IDB relation's tuples (cached individually)."""
        return {name: self.fetch(name) for name in self.program.idb_relations()}

    def resilience_stats(self):
        """``sys_resilience`` rows: ``(kind, name, value)`` counters.

        Covers governance aborts by taxonomy code, shard degradations and
        worker failures from the lifetime profile, and — when a fault
        registry is installed — per-point hit/injection counts.
        """
        from repro.resilience import faults as fault_registry

        rows = [
            ("profile", "worker_failures", self.profile.worker_failures),
            ("profile", "pool_degradations", self.profile.pool_degradations),
        ]
        for name in sorted(self.resilience_events):
            rows.append(("event", name, self.resilience_events[name]))
        rows.extend(fault_registry.active().stat_rows())
        return rows

    # -- verification helpers ----------------------------------------------------

    def snapshot_program(self) -> DatalogProgram:
        """The program with the session's *current* base facts as its EDB.

        Catalog (``sys_``) relations are declared but get no facts — the
        safety checker rejects user facts in the reserved namespace; their
        rows are replayed storage-to-storage by :meth:`recompute` instead.
        """
        from repro.datalog.safety import RESERVED_RELATION_PREFIX

        clone = DatalogProgram(self.program.name)
        for name, decl in self.program.relations.items():
            clone.declare_relation(name, decl.arity)
        symbols = self.storage.symbols
        for name in self.storage.relation_names():
            if name.startswith(RESERVED_RELATION_PREFIX):
                continue
            base = self.storage.base_rows(name)
            if not symbols.identity:
                base = set(symbols.resolve_rows(base))
            for row in sorted(base, key=repr):
                clone.add_fact(name, row)
        for rule in self.program.rules:
            clone.add_rule(rule.head, rule.body, rule.name)
        return clone

    def recompute(self, config: Optional[EngineConfig] = None) -> "ResultSet":
        """From-scratch evaluation of the current base facts (fresh engine).

        The session's *current* catalog snapshot rides along: ``sys_`` base
        rows are replayed into the fresh engine's storage (re-interned in
        its symbol domain) rather than refreshed from live engine state, so
        :meth:`self_check` compares both evaluations over identical inputs.

        The reference evaluation is diagnostic maintenance, not a query:
        session-wide ``config.limits`` are stripped (an explicit ``config``
        argument is honoured as given), so :meth:`self_check` works on
        governed sessions instead of bouncing off their query bounds.
        """
        if config is None:
            config = self.config
            if config.limits is not None:
                config = config.with_(limits=None)
        engine = ExecutionEngine(self.snapshot_program(), config)
        symbols = self.storage.symbols
        for name in self._catalog_names:
            rows = self.storage.base_rows(name)
            if not symbols.identity:
                rows = set(symbols.resolve_rows(rows))
            for row in engine.storage.symbols.intern_rows(rows):
                engine.storage.insert_base(name, row)
        return engine.evaluate()

    def self_check(self) -> None:
        """Assert the incremental state equals a from-scratch evaluation.

        The catalog is refreshed once up front and then frozen for the
        duration of the check: :meth:`recompute` replays that snapshot,
        and the comparison fetches must read the same snapshot — a live
        ring buffer may well have grown since the last user-visible read
        (the traced query that produced it lands in the ring *after* the
        catalog refresh that served it), which is drift, not divergence.
        """
        self._ensure_evaluated()
        self._refresh_catalog()
        reference = self.recompute()
        self._catalog_frozen = True
        try:
            for name, expected in reference.items():
                actual = set(self.fetch(name))
                if actual != set(expected):
                    missing = set(expected) - actual
                    extra = actual - set(expected)
                    raise AssertionError(
                        f"incremental state diverged on {name!r}: "
                        f"{len(missing)} missing, {len(extra)} extra"
                    )
        finally:
            self._catalog_frozen = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        strategy = "incremental" if self.incremental_capable else "recompute"
        return (
            f"IncrementalSession({self.program.name!r}, strategy={strategy}, "
            f"updates={self.updates_applied})"
        )

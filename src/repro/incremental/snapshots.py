"""MVCC storage snapshots: immutable committed versions readers can pin.

This generalizes the cardinality-level :class:`~repro.relational.statistics.
SnapshotCache` (PR 5) into full copy-on-write *row* snapshots: a
:class:`SnapshotManager` publishes one immutable :class:`StorageSnapshot`
per committed mutation batch, and concurrent readers serve queries from the
last committed version without ever blocking behind a writer's fixpoint.

Copy-on-write at relation granularity
-------------------------------------

Publishing does **not** copy the database.  Each relation's row set is
frozen at most once per generation (:meth:`StorageManager.frozen_rows`
memoizes the frozenset keyed on the relation's generation counter), so a
snapshot is a dict of *shared* frozensets: relations untouched since the
previous version alias the exact same frozenset object, and a mutation
batch pays only for the relations it actually changed.  A 10k-row relation
nobody has written since version 3 costs every later version two dict
probes, not 10k tuples.

Pinning and garbage collection
------------------------------

Readers :meth:`~SnapshotManager.acquire` the latest snapshot (incrementing
its pin count), read from it for as long as they like, and
:meth:`~SnapshotManager.release` it.  An outstanding
:class:`~repro.api.result.QueryResult` can hold a pin for its whole
lifetime — the API layer registers the release as a weakref finalizer, so
dropping the result releases the version even if the caller forgets.
:meth:`~SnapshotManager.collect` (run automatically on publish and on
release) drops every version that is neither pinned nor latest; the frozen
row sets themselves stay alive exactly as long as some live snapshot (or
the storage's own copy-on-write cache) still shares them.

The manager is thread-safe: the writer publishes from its own thread while
any number of reader threads acquire/release concurrently.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.relational.relation import Row
from repro.relational.storage import StorageManager


class StorageSnapshot:
    """One committed version: an immutable view of every Derived relation.

    ``version`` is the manager's dense commit counter (0 = the initial
    fixpoint); ``mutation_version`` and ``generations`` record the storage
    counters the snapshot was taken at, so a reader can tell exactly which
    ``(mutation_version, relation-generation)`` state its rows describe.
    """

    __slots__ = (
        "version", "mutation_version", "generations", "_rows", "symbols",
    )

    def __init__(self, version: int, mutation_version: int,
                 generations: Mapping[str, int],
                 rows: Mapping[str, FrozenSet[Row]], symbols) -> None:
        self.version = version
        self.mutation_version = mutation_version
        self.generations = dict(generations)
        self._rows = dict(rows)
        self.symbols = symbols

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._rows)

    def rows_of(self, relation: str) -> FrozenSet[Row]:
        """Storage-domain rows of ``relation`` at this version."""
        try:
            return self._rows[relation]
        except KeyError:
            raise KeyError(
                f"unknown relation {relation!r}; "
                f"available: {sorted(self._rows)}"
            ) from None

    def decoded_rows(self, relation: str) -> FrozenSet[Row]:
        """Rows of ``relation`` translated back into the raw value domain."""
        rows = self.rows_of(relation)
        if self.symbols.identity:
            return rows
        return frozenset(self.symbols.resolve_rows(rows))

    def cardinality(self, relation: str) -> int:
        return len(self.rows_of(relation))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(rows) for rows in self._rows.values())
        return (
            f"StorageSnapshot(version={self.version}, "
            f"relations={len(self._rows)}, rows={total})"
        )


class SnapshotManager:
    """Publishes, pins and garbage-collects :class:`StorageSnapshot`s.

    One manager serves one :class:`StorageManager` (normally through an
    :class:`~repro.incremental.session.IncrementalSession` with snapshots
    enabled).  The writer calls :meth:`publish` after each committed batch;
    readers call :meth:`acquire`/:meth:`release` (or hold a pin through a
    :class:`~repro.api.result.QueryResult`).
    """

    def __init__(self, storage: StorageManager, metrics=None) -> None:
        self._storage = storage
        self._metrics = metrics
        self._lock = threading.Lock()
        self._snapshots: Dict[int, StorageSnapshot] = {}
        self._pins: Dict[int, int] = {}
        self._latest: Optional[StorageSnapshot] = None
        self._next_version = 0
        #: Lifetime counters (also surfaced through ``sys_server``).
        self.published = 0
        self.collected = 0

    # -- writer side -------------------------------------------------------------

    def publish(self) -> StorageSnapshot:
        """Freeze the storage's current Derived state as the next version.

        Must be called at a commit point (deltas clear, fixpoint reached) by
        the thread that owns the storage — normally the session's writer.
        Unchanged relations share their frozenset with the previous version
        (copy-on-write; see the module docstring).
        """
        storage = self._storage
        rows = {
            name: storage.frozen_rows(name)
            for name in storage.relation_names()
        }
        with self._lock:
            snapshot = StorageSnapshot(
                version=self._next_version,
                mutation_version=storage.mutation_version(),
                generations=storage.generations(),
                rows=rows,
                symbols=storage.symbols,
            )
            self._next_version += 1
            self._snapshots[snapshot.version] = snapshot
            self._latest = snapshot
            self.published += 1
            self._collect_locked()
        if self._metrics is not None:
            self._metrics.counter("snapshots_published_total").inc()
            self._metrics.gauge("snapshots_live").set(len(self._snapshots))
        return snapshot

    # -- reader side -------------------------------------------------------------

    def latest(self) -> StorageSnapshot:
        """The most recently published snapshot (no pin taken)."""
        latest = self._latest
        if latest is None:
            raise RuntimeError("no snapshot published yet")
        return latest

    def latest_version(self) -> Optional[int]:
        latest = self._latest
        return None if latest is None else latest.version

    def acquire(self) -> StorageSnapshot:
        """Pin and return the latest snapshot (pair with :meth:`release`)."""
        with self._lock:
            latest = self._latest
            if latest is None:
                raise RuntimeError("no snapshot published yet")
            self._pins[latest.version] = self._pins.get(latest.version, 0) + 1
            return latest

    def release(self, version: int) -> None:
        """Drop one pin on ``version``; collects unpinned old versions.

        Raises :class:`ValueError` when ``version`` has no outstanding pin
        — a double release or a never-acquired version.  Silently ignoring
        it was worse than the error: with *other* readers still pinning
        the version, a stray release decrements their refcount and lets GC
        collect a snapshot someone is actively reading from.  Callbacks
        handed out by :meth:`releaser` are fire-once, so well-behaved
        callers never see this raise.
        """
        with self._lock:
            count = self._pins.get(version)
            if count is None:
                if self._metrics is not None:
                    self._metrics.counter("snapshot_release_errors_total").inc()
                raise ValueError(
                    f"release of snapshot version {version} with no "
                    "outstanding pins (double release, or a version that "
                    "was never acquired)"
                )
            if count <= 1:
                del self._pins[version]
            else:
                self._pins[version] = count - 1
            self._collect_locked()

    def releaser(self, version: int) -> Callable[[], None]:
        """A zero-argument, fire-once release callback (the QueryResult
        finalizer).  Invocations after the first no-op (counted in the
        ``snapshot_double_release_total`` metric) instead of stealing a
        concurrent reader's pin on the same version."""
        guard = threading.Lock()
        state = {"fired": False}

        def _release() -> None:
            with guard:
                if state["fired"]:
                    if self._metrics is not None:
                        self._metrics.counter(
                            "snapshot_double_release_total"
                        ).inc()
                    return
                state["fired"] = True
            self.release(version)

        return _release

    # -- garbage collection ------------------------------------------------------

    def _collect_locked(self) -> int:
        latest = self._latest
        stale = [
            version for version in self._snapshots
            if version not in self._pins
            and (latest is None or version != latest.version)
        ]
        for version in stale:
            del self._snapshots[version]
        self.collected += len(stale)
        return len(stale)

    def collect(self) -> int:
        """Drop every version that is neither pinned nor latest."""
        with self._lock:
            dropped = self._collect_locked()
        if dropped and self._metrics is not None:
            self._metrics.gauge("snapshots_live").set(len(self._snapshots))
        return dropped

    # -- introspection -----------------------------------------------------------

    def live_versions(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._snapshots))

    def pin_count(self, version: Optional[int] = None) -> int:
        """Outstanding pins on ``version`` (or on every version summed)."""
        with self._lock:
            if version is not None:
                return self._pins.get(version, 0)
            return sum(self._pins.values())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "live": len(self._snapshots),
                "pinned": sum(self._pins.values()),
                "published": self.published,
                "collected": self.collected,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        latest = self.latest_version()
        return (
            f"SnapshotManager(latest={latest}, "
            f"live={len(self._snapshots)}, pins={sum(self._pins.values())})"
        )

"""Self-observability: the queryable system catalog and EXPLAIN ANALYZE.

The introspection layer turns the engine's own state — storage statistics,
finished traces, metrics, shard topology — into first-class Datalog
relations under the reserved ``sys_`` namespace, so every operational
question is answerable with the engine's own query language::

    slow(F) :- sys_queries(_, F, _, L, _, _), L > 10000.

Two pieces:

* :mod:`repro.introspect.catalog` — the :class:`SystemCatalog`: schemas for
  the seven ``sys_`` relations, on-demand materialization into a session's
  storage (interned through the normal symbol-table path, so catalog rows
  compose with joins, negation, aggregation and the vectorized executor),
  and content digests that keep the result cache honest.
* :mod:`repro.introspect.analyze` — EXPLAIN ANALYZE: merges the actual
  per-operator span timings and row counts of the most recent trace into
  the join-order predictions recorded by the optimizer, flagging operators
  whose actual/predicted cardinality ratio exceeds a threshold.

Layering rule (the mirror image of the telemetry-sinks rule): this package
may import :mod:`repro.telemetry` and the relational layer, but engine-core
modules (``core``, ``engine``, ``incremental``, ``parallel``, ``relational``,
``ir``, ``datalog``) never import ``repro.introspect`` — they receive the
catalog as an opaque duck-typed parameter from the API layer.  CI greps for
violations and ``tests/introspect/test_layering.py`` pins the same rule.
"""

from repro.introspect.analyze import (
    DEFAULT_MISESTIMATE_RATIO,
    OperatorActual,
    collect_operator_actuals,
    render_analyze,
)
from repro.introspect.catalog import (
    CATALOG_COLUMNS,
    RESERVED_PREFIX,
    SystemCatalog,
    catalog_relation_names,
    is_catalog_relation,
)

__all__ = [
    "CATALOG_COLUMNS",
    "DEFAULT_MISESTIMATE_RATIO",
    "OperatorActual",
    "RESERVED_PREFIX",
    "SystemCatalog",
    "catalog_relation_names",
    "collect_operator_actuals",
    "is_catalog_relation",
    "render_analyze",
]

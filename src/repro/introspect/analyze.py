"""EXPLAIN ANALYZE: actual per-operator timings merged with predictions.

The vectorized executor records one ``op:*`` span per body position per
sub-query evaluation (attributes: ``rule``, ``relation``, ``rows_in``,
``rows_out``), and the join-order optimizer records an
:class:`~repro.core.join_order.OrderingDecision` per optimized rule,
including the estimated intermediate cardinality after each join position.
This module lines the two up — actuals aggregated by (rule, position)
across iterations, predictions from the most recent decision per rule —
and flags the positions whose worst observed cardinality exceeds the
prediction by :data:`DEFAULT_MISESTIMATE_RATIO` or more, the signal the
cost-based-planning roadmap item will consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Actual/predicted row-count ratio at which a join operator is flagged.
DEFAULT_MISESTIMATE_RATIO = 8.0


@dataclass
class OperatorActual:
    """Aggregated observations of one operator position of one rule."""

    rule: str
    position: int                 # index within the rule's operator sequence
    name: str                     # "op:join" / "op:negation" / "op:filter" / ...
    relation: str
    join_position: Optional[int]  # index among the rule's joins, None otherwise
    calls: int = 0
    rows_in: int = 0
    rows_out: int = 0
    max_rows_out: int = 0
    duration_ns: int = 0

    def absorb(self, span) -> None:
        self.calls += 1
        self.rows_in += int(span.attributes.get("rows_in", 0) or 0)
        rows_out = int(span.attributes.get("rows_out", 0) or 0)
        self.rows_out += rows_out
        self.max_rows_out = max(self.max_rows_out, rows_out)
        self.duration_ns += span.duration_ns


def collect_operator_actuals(trace) -> Dict[str, List[OperatorActual]]:
    """Aggregate a trace's ``op:*`` spans by rule and operator position.

    Positions are assigned by occurrence order within each (rule, parent
    span) group — one sub-query evaluation emits the rule's operators in
    plan order under one parent — then merged across iterations, so every
    returned position covers the rule's whole lifetime in the trace.
    """
    sequences: Dict[Tuple[str, Optional[int]], int] = {}
    actuals: Dict[Tuple[str, int], OperatorActual] = {}
    for span in trace.spans:
        if not span.name.startswith("op:"):
            continue
        rule = str(span.attributes.get("rule", "?"))
        group = (rule, span.parent_id)
        position = sequences.get(group, 0)
        sequences[group] = position + 1
        actual = actuals.get((rule, position))
        if actual is None:
            actual = OperatorActual(
                rule=rule,
                position=position,
                name=span.name,
                relation=str(span.attributes.get("relation", "?")),
                join_position=None,
            )
            actuals[(rule, position)] = actual
        actual.absorb(span)
    grouped: Dict[str, List[OperatorActual]] = {}
    for (rule, _position), actual in sorted(
        actuals.items(), key=lambda item: item[0]
    ):
        grouped.setdefault(rule, []).append(actual)
    for operators in grouped.values():
        join_index = 0
        for operator in operators:
            if operator.name == "op:join":
                operator.join_position = join_index
                join_index += 1
    return grouped


def latest_decisions(profile) -> Dict[str, object]:
    """The most recent :class:`OrderingDecision` record per rule name."""
    decisions: Dict[str, object] = {}
    for record in getattr(profile, "reorders", ()):
        decisions[record.rule_name] = record
    return decisions


@dataclass
class AnalyzedOperator:
    """One rendered EXPLAIN ANALYZE line: an actual and its prediction."""

    actual: OperatorActual
    predicted_rows: Optional[float] = None
    misestimate: bool = False
    ratio: Optional[float] = None


@dataclass
class AnalyzedRule:
    rule: str
    operators: List[AnalyzedOperator] = field(default_factory=list)
    stage: Optional[str] = None   # reorder stage the prediction came from


def analyze_trace(
    profile,
    trace,
    threshold: float = DEFAULT_MISESTIMATE_RATIO,
) -> List[AnalyzedRule]:
    """Merge a trace's operator actuals with the profile's predictions."""
    decisions = latest_decisions(profile)
    analyzed: List[AnalyzedRule] = []
    for rule, operators in collect_operator_actuals(trace).items():
        record = decisions.get(rule)
        estimated: Tuple[float, ...] = ()
        stage = None
        if record is not None:
            estimated = getattr(record.decision, "estimated_rows", ()) or ()
            stage = record.stage
        entry = AnalyzedRule(rule=rule, stage=stage)
        for operator in operators:
            item = AnalyzedOperator(actual=operator)
            if (
                operator.join_position is not None
                and operator.join_position < len(estimated)
            ):
                predicted = float(estimated[operator.join_position])
                item.predicted_rows = predicted
                item.ratio = operator.max_rows_out / max(predicted, 1.0)
                item.misestimate = item.ratio >= threshold
            entry.operators.append(item)
        analyzed.append(entry)
    return analyzed


def render_analyze(
    profile,
    trace,
    threshold: float = DEFAULT_MISESTIMATE_RATIO,
) -> str:
    """The EXPLAIN ANALYZE text block (appended to ``explain()`` output)."""
    lines: List[str] = [
        "explain analyze (actual operators vs join-order predictions, "
        f"misestimate at {threshold:g}x):"
    ]
    if trace is None:
        lines.append(
            "  no trace captured — configure telemetry "
            "(EngineConfig.with_(telemetry=tracing())) and run a query first"
        )
        return "\n".join(lines)
    analyzed = analyze_trace(profile, trace, threshold)
    if not analyzed:
        lines.append(
            "  no per-operator spans in the most recent trace — per-operator "
            "actuals need executor='vectorized'"
        )
        return "\n".join(lines)
    for entry in analyzed:
        stage = f" (prediction from {entry.stage} reorder)" if entry.stage else ""
        lines.append(f"  rule {entry.rule}:{stage}")
        for item in entry.operators:
            actual = item.actual
            text = (
                f"    [{actual.position}] {actual.name} {actual.relation}: "
                f"calls={actual.calls} rows_in={actual.rows_in} "
                f"rows_out={actual.rows_out} (max {actual.max_rows_out}) "
                f"time={actual.duration_ns / 1e6:.3f} ms"
            )
            if item.predicted_rows is not None:
                text += (
                    f" | predicted~{item.predicted_rows:.0f} rows"
                    f" ratio={item.ratio:.1f}x"
                )
                if item.misestimate:
                    text += "  ** misestimate **"
            lines.append(text)
    return "\n".join(lines)

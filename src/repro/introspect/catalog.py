"""The system catalog: engine internals as queryable ``sys_`` relations.

One :class:`SystemCatalog` serves one connection (or one-shot query): it
snapshots the telemetry ring, the metrics registry and the bound session's
storage/shard state into plain raw-domain rows, and materializes them into
a session's :class:`~repro.relational.storage.StorageManager` as ordinary
base facts whenever a program references a ``sys_`` relation in a rule
body.  Materialized rows go through ``storage.symbols`` like any other
fact, so catalog relations join, negate and aggregate against user
relations in every execution mode.

Freshness and cache safety: each materialization records a content digest
per ``sys_`` relation.  The incremental session folds that digest into its
per-relation mutation digests, so result-cache validity tokens (and with
them, effective result fingerprints) differ whenever the observed catalog
state differs — two sessions sharing a cache can never serve each other
catalog-dependent results computed against different engine states.

Rows are *snapshots*: a catalog relation reflects the engine state at the
moment it was (re-)materialized, which for queries through the engine is
the start of the fetch — the currently-open query trace is never included
(its root span has not finished, so it is not in the ring yet).
"""

from __future__ import annotations

import hashlib
import sys as _sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import query_summary_rows

Row = Tuple[Any, ...]

#: Every catalog relation and its column names (the arity is implied).
CATALOG_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "sys_relations": ("name", "arity", "cardinality", "generation"),
    "sys_queries": (
        "trace_id", "fingerprint", "relation", "latency_us", "rows",
        "cache_status",
    ),
    "sys_spans": (
        "span_id", "parent_id", "trace_id", "name", "start_ns", "duration_ns",
    ),
    "sys_span_attrs": ("span_id", "key", "value"),
    "sys_metrics": ("name", "labels", "kind", "value"),
    "sys_shards": ("shard", "pool", "degradations"),
    "sys_symbols": ("count", "bytes_estimate"),
    "sys_connections": (
        "conn", "peer", "state", "mode", "queries", "mutations",
        "bytes_in", "bytes_out",
    ),
    "sys_server": (
        "uptime_seconds", "connections", "queue_depth", "queue_capacity",
        "policy", "mutations_applied", "shed_total", "rejected_total",
        "snapshot_version", "snapshots_live",
    ),
    "sys_durability": (
        "dir", "fsync", "wal_records", "wal_bytes", "checkpoints_written",
        "recovered_records", "recovered_rows", "recovery_seconds",
    ),
    "sys_resilience": ("kind", "name", "value"),
}

#: Relation names starting with this prefix belong to the engine: rules may
#: read them, but never define them (enforced by the safety checker).
RESERVED_PREFIX = "sys_"


def is_catalog_relation(name: str) -> bool:
    """Whether ``name`` is one of the queryable catalog relations."""
    return name in CATALOG_COLUMNS


def catalog_relation_names() -> Tuple[str, ...]:
    """Every catalog relation name, sorted."""
    return tuple(sorted(CATALOG_COLUMNS))


def _digest_rows(rows: Sequence[Row]) -> str:
    """A stable content digest of one relation's raw-domain rows."""
    digest = hashlib.sha256()
    for row in sorted(map(repr, rows)):
        digest.update(row.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class SystemCatalog:
    """Materializes engine internals as ``sys_`` relations.

    Parameters
    ----------
    metrics:
        The :class:`MetricsRegistry` behind ``sys_metrics`` (the database's
        shared registry, so catalog reads see the whole workload).
    ring:
        Any object with a ``traces()`` method returning finished
        :class:`~repro.telemetry.spans.Trace` objects — normally the
        :class:`~repro.telemetry.sinks.RingBufferSink` of the effective
        :class:`~repro.telemetry.TelemetryConfig`.  ``None`` (telemetry
        off) leaves the trace-backed relations empty.

    Storage- and shard-backed relations read through late-bound providers
    (:meth:`bind_storage`, :meth:`bind_shards`) installed by the API layer
    once the session exists; :meth:`install`/:meth:`refresh` receive the
    storage explicitly, so materialization into a session under
    construction needs no provider.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 ring: Optional[object] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring = ring
        self._storage_provider: Optional[Callable[[], object]] = None
        self._shard_provider: Optional[Callable[[], List[Row]]] = None
        self._connection_provider: Optional[Callable[[], List[Row]]] = None
        self._server_provider: Optional[Callable[[], List[Row]]] = None
        self._durability_provider: Optional[Callable[[], List[Row]]] = None
        self._resilience_provider: Optional[Callable[[], List[Row]]] = None
        #: Last materialized content digest per relation (per catalog —
        #: catalogs are per-connection, so this is per-storage too).
        self._digests: Dict[str, str] = {}

    # -- provider binding --------------------------------------------------------

    def bind_storage(self, provider: Callable[[], object]) -> None:
        """Install the storage accessor behind direct ``sys_relations``/
        ``sys_symbols`` reads (a zero-argument callable, late-bound so the
        catalog can be constructed before the session it observes)."""
        self._storage_provider = provider

    def bind_shards(self, provider: Callable[[], List[Row]]) -> None:
        """Install the provider of ``sys_shards`` rows."""
        self._shard_provider = provider

    def bind_connections(self, provider: Callable[[], List[Row]]) -> None:
        """Install the provider of ``sys_connections`` rows (the query
        server's session registry; empty when not serving)."""
        self._connection_provider = provider

    def bind_server(self, provider: Callable[[], List[Row]]) -> None:
        """Install the provider of the single ``sys_server`` row."""
        self._server_provider = provider

    def bind_durability(self, provider: Callable[[], List[Row]]) -> None:
        """Install the provider of the single ``sys_durability`` row (the
        durable writer's WAL/checkpoint/recovery state; empty elsewhere)."""
        self._durability_provider = provider

    def bind_resilience(self, provider: Callable[[], List[Row]]) -> None:
        """Install the provider of ``sys_resilience`` rows (governance
        aborts, degradations, worker failures and fault-injection counts)."""
        self._resilience_provider = provider

    # -- row sources -------------------------------------------------------------

    def rows(self, name: str, storage: Optional[object] = None) -> List[Row]:
        """Current raw-domain rows of catalog relation ``name``.

        Raises :class:`KeyError` for names outside the catalog.  ``storage``
        overrides the bound provider (used during materialization, when the
        session owning the storage is still under construction).
        """
        if name not in CATALOG_COLUMNS:
            raise KeyError(
                f"unknown system relation {name!r}; "
                f"available: {catalog_relation_names()}"
            )
        if storage is None and self._storage_provider is not None:
            storage = self._storage_provider()
        if name == "sys_relations":
            return self._relation_rows(storage)
        if name == "sys_queries":
            return [] if self.ring is None else query_summary_rows(
                self.ring.traces()
            )
        if name == "sys_spans":
            return self._span_rows()
        if name == "sys_span_attrs":
            return self._attr_rows()
        if name == "sys_metrics":
            return self.metrics.rows()
        if name == "sys_shards":
            return [] if self._shard_provider is None else list(
                self._shard_provider()
            )
        if name == "sys_connections":
            return [] if self._connection_provider is None else list(
                self._connection_provider()
            )
        if name == "sys_server":
            return [] if self._server_provider is None else list(
                self._server_provider()
            )
        if name == "sys_durability":
            return [] if self._durability_provider is None else list(
                self._durability_provider()
            )
        if name == "sys_resilience":
            return [] if self._resilience_provider is None else list(
                self._resilience_provider()
            )
        return self._symbol_rows(storage)  # sys_symbols

    def _relation_rows(self, storage: Optional[object]) -> List[Row]:
        if storage is None:
            return []
        rows: List[Row] = []
        for name in storage.relation_names():
            # Catalog relations are excluded from their own listing: their
            # cardinality/generation churns on every materialization, which
            # would make the digest (and with it the result cache) unstable.
            if name.startswith(RESERVED_PREFIX):
                continue
            rows.append((
                name,
                storage.arity_of(name),
                storage.cardinality(name),
                storage.generation(name),
            ))
        return rows

    def _span_rows(self) -> List[Row]:
        if self.ring is None:
            return []
        rows: List[Row] = []
        for trace in self.ring.traces():
            rows.extend(trace.span_rows())
        return rows

    def _attr_rows(self) -> List[Row]:
        if self.ring is None:
            return []
        rows: List[Row] = []
        for trace in self.ring.traces():
            rows.extend(trace.attr_rows())
        return rows

    def _symbol_rows(self, storage: Optional[object]) -> List[Row]:
        if storage is None:
            return []
        symbols = storage.symbols
        if getattr(symbols, "identity", True):
            return [(0, 0)]
        bytes_estimate = sum(_sys.getsizeof(value) for value in symbols.values())
        return [(len(symbols), bytes_estimate)]

    # -- program integration -----------------------------------------------------

    def names_in(self, program) -> Tuple[str, ...]:
        """The catalog relations ``program`` references, sorted."""
        return tuple(sorted(
            name for name in program.relations
            if name.startswith(RESERVED_PREFIX)
        ))

    def validate_program(self, program) -> None:
        """Check every referenced ``sys_`` relation exists with the right arity."""
        for name in self.names_in(program):
            columns = CATALOG_COLUMNS.get(name)
            if columns is None:
                raise ValueError(
                    f"unknown system relation {name!r}; "
                    f"available: {catalog_relation_names()}"
                )
            declared = program.relations[name].arity
            if declared != len(columns):
                raise ValueError(
                    f"system relation {name!r} has arity {len(columns)} "
                    f"{columns}, but the program uses arity {declared}"
                )

    def install(self, storage, program) -> Dict[str, str]:
        """Materialize every referenced catalog relation into ``storage``.

        Called by ``prepare_evaluation`` at session/engine setup.  Returns
        the ``{relation: content digest}`` map of the materialized state.
        """
        self.validate_program(program)
        names = self.names_in(program)
        self.refresh(storage, names)
        return {name: self._digests[name] for name in names}

    def refresh(self, storage, names: Sequence[str]) -> Dict[str, str]:
        """Re-materialize ``names`` into ``storage``; returns what changed.

        Rows are interned through ``storage.symbols`` and inserted as base
        facts — the same path user facts take — so a recompute from base
        rows preserves them.  Unchanged relations (by content digest) are
        left untouched, keeping generations and cache tokens stable.
        """
        changed: Dict[str, str] = {}
        for name in names:
            raw = self.rows(name, storage=storage)
            digest = _digest_rows(raw)
            if self._digests.get(name) == digest:
                continue
            encoded = set(storage.symbols.intern_rows(raw))
            stale = set(storage.base_rows(name)) - encoded
            if stale:
                for row in stale:
                    storage.forget_base_row(name, row)
                storage.retract_rows(name, stale)
            for row in encoded:
                storage.insert_base(name, row)
            self._digests[name] = digest
            changed[name] = digest
        return changed

    def digests(self, names: Sequence[str]) -> Dict[str, str]:
        """The content digests of the last materialization of ``names``."""
        return {
            name: self._digests.get(name, "0") for name in names
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bound = "bound" if self._storage_provider is not None else "unbound"
        ring = "off" if self.ring is None else "on"
        return f"SystemCatalog(storage={bound}, ring={ring})"

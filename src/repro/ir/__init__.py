"""The IROp intermediate representation (paper §V-B, Fig. 4).

Carac partially evaluates the input Datalog program (a Futamura projection of
the semi-naive evaluator onto the program) into an imperative tree of IROps:
relational-algebra leaves (σπ⋈), unions at two granularities (per rule and
per relation), control flow (DoWhile) and relation-management operations
(Insert, Scan, SwapClear).  The tree is the *logical* plan; every backend in
:mod:`repro.core.backends` consumes it — the interpreter walks it, the code
generators specialize it away.
"""

from repro.ir.ops import (
    AggregateOp,
    DoWhileOp,
    InsertOp,
    IROp,
    JoinProjectOp,
    ProgramOp,
    RelationUnionOp,
    ScanOp,
    SequenceOp,
    StratumOp,
    SwapClearOp,
    UnionOp,
    walk,
)
from repro.ir.planning import (
    build_join_plan,
    delta_subqueries,
    legalize_literal_order,
    seed_plan,
)
from repro.ir.builder import PlanBuilder, build_program_ir, build_naive_ir
from repro.ir.printer import explain, format_tree

__all__ = [
    "AggregateOp",
    "DoWhileOp",
    "InsertOp",
    "IROp",
    "JoinProjectOp",
    "PlanBuilder",
    "ProgramOp",
    "RelationUnionOp",
    "ScanOp",
    "SequenceOp",
    "StratumOp",
    "SwapClearOp",
    "UnionOp",
    "build_join_plan",
    "build_naive_ir",
    "build_program_ir",
    "delta_subqueries",
    "explain",
    "format_tree",
    "legalize_literal_order",
    "seed_plan",
    "walk",
]

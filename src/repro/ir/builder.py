"""Lowering a Datalog program into the IROp tree (the Futamura projection).

The builder visits the Datalog AST once per stratum and emits the structure
of Fig. 4: per stratum a seeding pass (every rule evaluated naively against
the Derived database) and, when the stratum is recursive, a DoWhile loop
whose body contains — per relation, per rule, per delta choice — a σπ⋈ leaf,
gathered under per-rule ``UnionOp`` and per-relation ``RelationUnionOp``
nodes, followed by a ``SwapClearOp``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.operators import JoinPlan

from repro.datalog.program import DatalogProgram
from repro.datalog.rules import Rule
from repro.datalog.safety import check_program_safety
from repro.datalog.stratification import Stratum, stratify
from repro.ir.ops import (
    AggregateOp,
    DoWhileOp,
    InsertOp,
    IROp,
    JoinProjectOp,
    ProgramOp,
    RelationUnionOp,
    SequenceOp,
    StratumOp,
    SwapClearOp,
    UnionOp,
)
from repro.ir.planning import (
    build_join_plan,
    delta_subqueries,
    seed_plan,
    update_subqueries,
)


class PlanBuilder:
    """Builds the IROp tree for a Datalog program.

    The builder performs no join-order optimization: plans carry the
    as-written atom order.  Optimization — ahead-of-time or just-in-time — is
    a separate concern handled by :mod:`repro.core`; keeping it out of the
    lowering step is what lets the same tree be re-optimized repeatedly at
    runtime.
    """

    def __init__(self, program: DatalogProgram, check_safety: bool = True) -> None:
        if check_safety:
            check_program_safety(program)
        self.program = program
        self.strata: List[Stratum] = stratify(program)

    # -- seeding pass ----------------------------------------------------------

    def _seed_op_for_rule(self, rule: Rule) -> IROp:
        plan = seed_plan(rule)
        if rule.has_aggregation():
            return AggregateOp(rule, plan)
        return JoinProjectOp(plan)

    def _seed_sequence(self, stratum: Stratum) -> SequenceOp:
        inserts: List[IROp] = []
        for relation in stratum.relations:
            rule_ops: List[IROp] = []
            for rule in self.program.rules_for(relation):
                rule_ops.append(UnionOp(rule.name, [self._seed_op_for_rule(rule)]))
            inserts.append(
                InsertOp(relation, RelationUnionOp(relation, rule_ops), InsertOp.SEED)
            )
        return SequenceOp(inserts)

    # -- semi-naive loop -------------------------------------------------------

    def _loop_for_stratum(self, stratum: Stratum) -> Optional[DoWhileOp]:
        recursive_relations = stratum.recursive_relations()
        if not recursive_relations:
            return None

        relation_unions: List[IROp] = []
        for relation in stratum.relations:
            rule_unions: List[IROp] = []
            for rule in self.program.rules_for(relation):
                if rule.has_aggregation():
                    # Aggregate rules are never recursive within their stratum
                    # (stratification treats aggregation like negation), so
                    # they are fully handled by the seeding pass.
                    continue
                plans = delta_subqueries(rule, stratum.relations)
                if not plans:
                    continue
                subquery_ops: List[IROp] = [JoinProjectOp(plan) for plan in plans]
                rule_unions.append(UnionOp(rule.name, subquery_ops))
            if rule_unions:
                relation_unions.append(
                    InsertOp(relation, RelationUnionOp(relation, rule_unions), InsertOp.NEW)
                )

        if not relation_unions:
            return None

        body_children: List[IROp] = list(relation_unions)
        body_children.append(SwapClearOp(stratum.relations))
        return DoWhileOp(SequenceOp(body_children), stratum.relations)

    # -- program ---------------------------------------------------------------

    def build_stratum(self, stratum: Stratum) -> StratumOp:
        return StratumOp(
            index=stratum.index,
            relations=stratum.relations,
            seed=self._seed_sequence(stratum),
            loop=self._loop_for_stratum(stratum),
        )

    def build(self) -> ProgramOp:
        return ProgramOp(
            [self.build_stratum(stratum) for stratum in self.strata],
            name=self.program.name,
        )


def build_program_ir(program: DatalogProgram, check_safety: bool = True) -> ProgramOp:
    """Lower ``program`` into the semi-naive IROp tree."""
    return PlanBuilder(program, check_safety=check_safety).build()


def build_update_ir(program: DatalogProgram, check_safety: bool = True) -> ProgramOp:
    """Lower ``program`` into the *incremental-update* propagation tree.

    The tree is a single synthetic stratum with an empty seeding pass and one
    DoWhile loop covering **all** rules at once, each rule expanded into one
    delta sub-query per positive atom (:func:`~repro.ir.planning.update_subqueries`).
    The caller seeds Delta-Known with the mutated rows before executing; the
    loop then propagates exactly the consequences of the change and stops as
    soon as an iteration promotes nothing.

    Collapsing the strata is sound only for programs without negation or
    aggregation (the incremental session falls back to full recomputation for
    those): for positive programs, stratification affects evaluation order,
    never the fixpoint.
    """
    if check_safety:
        check_program_safety(program)
    for rule in program.rules:
        if rule.negated_atoms() or rule.has_aggregation():
            raise ValueError(
                f"rule {rule.name!r} uses negation or aggregation; incremental "
                "delta propagation supports positive programs only"
            )

    relation_unions: List[IROp] = []
    for relation in program.idb_relations():
        rule_unions: List[IROp] = []
        for rule in program.rules_for(relation):
            plans = update_subqueries(rule)
            if plans:
                rule_unions.append(
                    UnionOp(rule.name, [JoinProjectOp(plan) for plan in plans])
                )
        if rule_unions:
            relation_unions.append(
                InsertOp(relation, RelationUnionOp(relation, rule_unions), InsertOp.NEW)
            )

    every_relation = list(program.relation_names())
    body = SequenceOp(list(relation_unions) + [SwapClearOp(every_relation)])
    stratum = StratumOp(
        index=0,
        relations=every_relation,
        seed=SequenceOp([]),
        loop=DoWhileOp(body, every_relation),
    )
    return ProgramOp([stratum], name=f"{program.name}-update")


def collect_loop_plans(loop: DoWhileOp) -> Optional[List[Tuple[str, List["JoinPlan"]]]]:
    """Extract ``(relation, plans)`` groups from a semi-naive loop body.

    The shard-parallel evaluator executes loop bodies itself (so it can
    interleave the exchange step between iterations) instead of walking the
    IR tree per round; this flattens one ``DoWhileOp`` — as produced by
    :func:`build_program_ir` or :func:`build_update_ir`, including after
    AOT join-order rewriting — into per-relation plan groups.  Returns None
    when the body contains anything but Insert→Union→σπ⋈ structure and the
    trailing SwapClear (callers then fall back to ordinary execution).
    """
    groups: List[Tuple[str, List[JoinPlan]]] = []
    for child in loop.body.children:
        if isinstance(child, SwapClearOp):
            continue
        if not isinstance(child, InsertOp) or child.target != InsertOp.NEW:
            return None
        plans: List[JoinPlan] = []
        stack: List[IROp] = [child.source]
        while stack:
            node = stack.pop()
            if isinstance(node, JoinProjectOp):
                plans.append(node.plan)
            elif isinstance(node, (UnionOp, RelationUnionOp, SequenceOp)):
                stack.extend(reversed(node.children))
            else:
                return None
        groups.append((child.relation, plans))
    return groups


def build_naive_ir(program: DatalogProgram, check_safety: bool = True) -> ProgramOp:
    """Lower ``program`` into a *naive*-evaluation tree (no delta relations).

    Every iteration re-evaluates every rule against the full Derived database
    and inserts whatever is new.  Used as the reference evaluator in
    correctness tests and as the basis of the DLX-like baseline engine.
    """
    if check_safety:
        check_program_safety(program)
    strata = stratify(program)
    stratum_ops: List[StratumOp] = []
    for stratum in strata:
        seed_inserts: List[IROp] = []
        loop_inserts: List[IROp] = []
        for relation in stratum.relations:
            seed_rule_ops: List[IROp] = []
            loop_rule_ops: List[IROp] = []
            for rule in DatalogProgram.rules_for(program, relation):
                plan = seed_plan(rule)
                op: IROp
                if rule.has_aggregation():
                    op = AggregateOp(rule, plan)
                else:
                    op = JoinProjectOp(plan)
                seed_rule_ops.append(UnionOp(rule.name, [op]))
                if not rule.has_aggregation() and rule.is_recursive_with(stratum.relations):
                    loop_rule_ops.append(UnionOp(rule.name, [JoinProjectOp(plan)]))
            seed_inserts.append(
                InsertOp(relation, RelationUnionOp(relation, seed_rule_ops), InsertOp.SEED)
            )
            if loop_rule_ops:
                loop_inserts.append(
                    InsertOp(relation, RelationUnionOp(relation, loop_rule_ops), InsertOp.NEW)
                )
        loop: Optional[DoWhileOp] = None
        if loop_inserts:
            body = SequenceOp(loop_inserts + [SwapClearOp(stratum.relations)])
            loop = DoWhileOp(body, stratum.relations)
        stratum_ops.append(
            StratumOp(stratum.index, stratum.relations, SequenceOp(seed_inserts), loop)
        )
    return ProgramOp(stratum_ops, name=f"{program.name}-naive")

"""Compile-time constant encoding: rewrite plans into the symbol-id domain.

With dictionary-encoded storage (:mod:`repro.relational.symbols`) every
stored row is a tuple of dense integer ids.  For the evaluators and the
JIT/AOT code generators to run **without any per-tuple translation**, the
constants inside rules must live in the same domain: a constant equality
check, index probe or negation membership test then compares int against
int, exactly like a join.

:func:`encode_plan` rewrites one :class:`~repro.relational.operators.JoinPlan`
— atoms, comparisons, assignments and head terms alike — replacing every
:class:`~repro.datalog.terms.Constant` with an :class:`EncodedConstant`
whose ``value`` is the interned id and whose ``raw`` keeps the original for
printing.  The rule AST itself is never touched (it is shared with the
caller); only the physical plans change.  :func:`encode_tree` applies the
rewrite to every σπ⋈/aggregate leaf of an IROp tree, once, right after
lowering — join-order re-optimization only permutes a plan's sources, so
encoded constants survive every later rewrite.

Built-in literals evaluate in the *raw* domain (ordering comparisons and
arithmetic are meaningless on ids); their evaluators resolve encoded
constants and variable bindings through the symbol table — one C-level list
subscript per operand — and re-intern computed results.  Because those
computed results are the only place a fixpoint can *allocate* new ids,
:func:`plan_allocates` tells the shard-parallel evaluator which plans must
stay off the fork pool (a forked child inventing ids would diverge from its
siblings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.terms import Aggregate, BinaryExpression, Constant, Term, Variable
from repro.ir.ops import AggregateOp, IROp, JoinProjectOp, walk
from repro.relational.operators import AtomSource, JoinPlan


@dataclass(frozen=True)
class EncodedConstant(Constant):
    """A constant already translated into the symbol-id domain.

    ``value`` holds the interned id (what evaluation compares against
    stored rows); ``raw`` keeps the source-level value so plan printing and
    ``explain()`` stay readable.  It *is* a :class:`Constant`, so every
    matcher, planner and code generator treats it like one.
    """

    raw: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(self.raw)


def encode_term(term: Term, symbols) -> Term:
    """The symbol-domain counterpart of ``term`` (idempotent)."""
    if isinstance(term, EncodedConstant):
        return term
    if isinstance(term, Constant):
        return EncodedConstant(symbols.intern(term.value), raw=term.value)
    if isinstance(term, BinaryExpression):
        return BinaryExpression(
            term.op, encode_term(term.left, symbols), encode_term(term.right, symbols)
        )
    # Variables and aggregates (whose target is a variable) carry no constant.
    return term


def encode_literal(literal: Literal, symbols) -> Literal:
    if isinstance(literal, Atom):
        return Atom(
            literal.relation,
            tuple(encode_term(term, symbols) for term in literal.terms),
            negated=literal.negated,
        )
    if isinstance(literal, Comparison):
        return Comparison(
            literal.op,
            encode_term(literal.left, symbols),
            encode_term(literal.right, symbols),
        )
    if isinstance(literal, Assignment):
        return Assignment(literal.target, encode_term(literal.expression, symbols))
    raise TypeError(f"cannot encode literal {literal!r}")  # pragma: no cover


def encode_plan(plan: JoinPlan, symbols) -> JoinPlan:
    """``plan`` with every constant interned (the plan object is not mutated)."""
    if symbols.identity:
        return plan
    return JoinPlan(
        head_relation=plan.head_relation,
        head_terms=tuple(encode_term(term, symbols) for term in plan.head_terms),
        sources=tuple(
            AtomSource(encode_literal(source.literal, symbols), source.kind)
            for source in plan.sources
        ),
        rule_name=plan.rule_name,
    )


def encode_tree(tree: IROp, symbols) -> IROp:
    """Encode every plan-bearing leaf of an IROp tree, in place."""
    if symbols.identity:
        return tree
    for node in walk(tree):
        if isinstance(node, (JoinProjectOp, AggregateOp)):
            node.plan = encode_plan(node.plan, symbols)
        if isinstance(node, AggregateOp):
            node.head_terms = tuple(
                encode_term(term, symbols) for term in node.head_terms
            )
    return tree


def plan_allocates(plan: JoinPlan) -> bool:
    """Whether evaluating ``plan`` can intern *new* symbols mid-fixpoint.

    True when the plan computes fresh values — an assignment literal or a
    non-trivial head term (arithmetic).  Joins, filters and negation only
    ever move already-interned ids around.
    """
    for source in plan.sources:
        if isinstance(source.literal, Assignment):
            return True
    return any(
        not isinstance(term, (Variable, Constant)) for term in plan.head_terms
    )

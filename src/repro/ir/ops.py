"""IROp node definitions.

The node set mirrors Fig. 4 of the paper:

* :class:`ProgramOp` — the whole program: one child per stratum.
* :class:`StratumOp` — seed (naive first pass) + DoWhile loop for one stratum.
* :class:`DoWhileOp` — repeat the body while the last SwapClear promoted facts.
* :class:`SequenceOp` — ordered execution of children.
* :class:`RelationUnionOp` — the pink ``UnionOp*``: union over all rules of one
  relation; the insert target is that relation.
* :class:`UnionOp` — the yellow ``UnionOp``: union over the delta-choice
  sub-queries of one rule.
* :class:`JoinProjectOp` — the blue σπ⋈ leaf: one ordered conjunctive
  sub-query (a :class:`repro.relational.operators.JoinPlan`).
* :class:`AggregateOp` — evaluation of one aggregate rule (grouping happens
  after the body fixpoint; aggregation is stratified like negation).
* :class:`InsertOp`, :class:`ScanOp`, :class:`SwapClearOp` — relation
  management.

Every node carries a ``kind`` string used by the compilation-granularity
machinery and the Fig. 5 code-generation benchmark, and exposes ``children``
for generic traversal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.datalog.rules import Rule
from repro.relational.operators import JoinPlan
from repro.relational.storage import DatabaseKind

_node_ids = itertools.count(1)


class IROp:
    """Base class for all IR operations."""

    kind: str = "IROp"

    def __init__(self) -> None:
        self.node_id: int = next(_node_ids)

    @property
    def children(self) -> Tuple["IROp", ...]:
        return ()

    def label(self) -> str:
        """Short human-readable label for the printer."""
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}#{self.node_id}"


class JoinProjectOp(IROp):
    """The σπ⋈ leaf: evaluate one conjunctive sub-query with a fixed order."""

    kind = "JoinProjectOp"

    def __init__(self, plan: JoinPlan) -> None:
        super().__init__()
        self.plan = plan

    def label(self) -> str:
        return f"σπ⋈ {self.plan.describe()}"


class AggregateOp(IROp):
    """Evaluate one aggregate rule: body bindings, group-by, aggregate, project.

    ``head_terms`` starts as the rule's own head terms and is rewritten by
    the constant-encoding pass (:mod:`repro.ir.encoding`) — the rule AST is
    shared with the caller and must stay raw, but the executor's grouping
    and projection read the plan's value domain.
    """

    kind = "AggregateOp"

    def __init__(self, rule: Rule, plan: JoinPlan) -> None:
        super().__init__()
        self.rule = rule
        self.plan = plan
        self.head_terms = rule.head.terms

    def label(self) -> str:
        return f"γ {self.rule.head!r}"


class ScanOp(IROp):
    """Read every tuple of one relation copy (used to copy/union relations)."""

    kind = "ScanOp"

    def __init__(self, relation: str, source: DatabaseKind = DatabaseKind.DERIVED) -> None:
        super().__init__()
        self.relation = relation
        self.source = source

    def label(self) -> str:
        return f"Scan {self.relation}[{self.source.value}]"


class UnionOp(IROp):
    """Union of the delta-choice sub-queries of a single rule definition."""

    kind = "UnionOp"

    def __init__(self, rule_name: str, subqueries: Sequence[IROp]) -> None:
        super().__init__()
        self.rule_name = rule_name
        self._subqueries: Tuple[IROp, ...] = tuple(subqueries)

    @property
    def children(self) -> Tuple[IROp, ...]:
        return self._subqueries

    def replace_children(self, subqueries: Sequence[IROp]) -> None:
        self._subqueries = tuple(subqueries)

    def label(self) -> str:
        return f"Union[{self.rule_name}] ({len(self._subqueries)} subqueries)"


class RelationUnionOp(IROp):
    """Union over every rule defining one relation (the paper's ``UnionOp*``)."""

    kind = "RelationUnionOp"

    def __init__(self, relation: str, rule_unions: Sequence[IROp]) -> None:
        super().__init__()
        self.relation = relation
        self._rule_unions: Tuple[IROp, ...] = tuple(rule_unions)

    @property
    def children(self) -> Tuple[IROp, ...]:
        return self._rule_unions

    def replace_children(self, rule_unions: Sequence[IROp]) -> None:
        self._rule_unions = tuple(rule_unions)

    def label(self) -> str:
        return f"Union*[{self.relation}] ({len(self._rule_unions)} rules)"


class InsertOp(IROp):
    """Insert the rows produced by ``source`` into ``relation`` of ``target``.

    ``target`` distinguishes the seeding pass (write Derived + Delta-Known)
    from the loop pass (write Delta-New, deduplicated against Derived).
    """

    kind = "InsertOp"

    SEED = "seed"
    NEW = "new"

    def __init__(self, relation: str, source: IROp, target: str = NEW) -> None:
        super().__init__()
        if target not in (self.SEED, self.NEW):
            raise ValueError(f"unknown insert target {target!r}")
        self.relation = relation
        self.source = source
        self.target = target

    @property
    def children(self) -> Tuple[IROp, ...]:
        return (self.source,)

    def label(self) -> str:
        return f"Insert→{self.relation}[{self.target}]"


class SwapClearOp(IROp):
    """Promote Delta-New to Derived, rotate it into Delta-Known, clear."""

    kind = "SwapClearOp"

    def __init__(self, relations: Sequence[str]) -> None:
        super().__init__()
        self.relations = tuple(relations)

    def label(self) -> str:
        return f"SwapClear({', '.join(self.relations)})"


class SequenceOp(IROp):
    """Execute children left to right."""

    kind = "SequenceOp"

    def __init__(self, children: Sequence[IROp]) -> None:
        super().__init__()
        self._children: Tuple[IROp, ...] = tuple(children)

    @property
    def children(self) -> Tuple[IROp, ...]:
        return self._children

    def replace_children(self, children: Sequence[IROp]) -> None:
        self._children = tuple(children)


class DoWhileOp(IROp):
    """Repeat ``body`` while the iteration discovers new facts.

    The body's final :class:`SwapClearOp` returns the number of facts promoted
    into Derived; the loop terminates when that number reaches zero, which is
    exactly the semi-naive termination condition (an iteration that discovers
    nothing new).
    """

    kind = "DoWhileOp"

    def __init__(self, body: SequenceOp, relations: Sequence[str],
                 max_iterations: int = 1_000_000) -> None:
        super().__init__()
        self.body = body
        self.relations = tuple(relations)
        self.max_iterations = max_iterations

    @property
    def children(self) -> Tuple[IROp, ...]:
        return (self.body,)

    def label(self) -> str:
        return f"DoWhile({', '.join(self.relations)})"


class StratumOp(IROp):
    """One stratum: seeding pass followed by the semi-naive loop."""

    kind = "StratumOp"

    def __init__(self, index: int, relations: Sequence[str],
                 seed: SequenceOp, loop: Optional[DoWhileOp]) -> None:
        super().__init__()
        self.index = index
        self.relations = tuple(relations)
        self.seed = seed
        self.loop = loop

    @property
    def children(self) -> Tuple[IROp, ...]:
        if self.loop is None:
            return (self.seed,)
        return (self.seed, self.loop)

    def label(self) -> str:
        recursive = "recursive" if self.loop is not None else "non-recursive"
        return f"Stratum {self.index} ({', '.join(self.relations)}) [{recursive}]"


class ProgramOp(IROp):
    """The root: strata executed lowest-first."""

    kind = "ProgramOp"

    def __init__(self, strata: Sequence[StratumOp], name: str = "program") -> None:
        super().__init__()
        self.name = name
        self._strata: Tuple[StratumOp, ...] = tuple(strata)

    @property
    def children(self) -> Tuple[IROp, ...]:
        return self._strata

    @property
    def strata(self) -> Tuple[StratumOp, ...]:
        return self._strata

    def label(self) -> str:
        return f"Program[{self.name}] ({len(self._strata)} strata)"


def walk(node: IROp) -> Iterator[IROp]:
    """Pre-order traversal of an IR tree."""
    yield node
    for child in node.children:
        yield from walk(child)


def count_nodes(node: IROp) -> int:
    return sum(1 for _ in walk(node))


def find_nodes(node: IROp, kind: type) -> List[IROp]:
    """All descendants (including ``node``) that are instances of ``kind``."""
    return [n for n in walk(node) if isinstance(n, kind)]

"""Sub-query (JoinPlan) construction helpers shared by the builder and the JIT.

Two responsibilities live here:

* Turning one rule into its semi-naive delta-choice sub-queries (one per
  occurrence of a same-stratum relation in the body) or into its single
  seeding sub-query (all atoms read Derived).
* Making an arbitrary positive-atom order *legal* by interleaving the
  built-in literals (comparisons, assignments) and negated atoms at the
  earliest position where their variables are bound.  The join-order
  optimizer permutes only the positive atoms and re-runs this legalisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.relational.operators import AtomSource, JoinPlan
from repro.relational.storage import DatabaseKind


def legalize_literal_order(
    positive_sources: Sequence[AtomSource],
    other_literals: Sequence[Literal],
) -> Tuple[AtomSource, ...]:
    """Interleave non-positive literals into a positive-atom order.

    ``positive_sources`` fixes the join order of the positive atoms.  Each
    negated atom, comparison or assignment from ``other_literals`` is placed
    immediately after the earliest prefix of positive atoms (plus previously
    placed assignments) that binds all the variables it needs.  Raises
    ``ValueError`` if no legal placement exists (the rule would be unsafe,
    which the safety checker normally rejects first).
    """
    pending: List[Literal] = list(other_literals)
    placed: List[AtomSource] = []
    bound: Set[Variable] = set()

    def try_place_pending() -> None:
        progress = True
        while progress and pending:
            progress = False
            for literal in list(pending):
                if isinstance(literal, Assignment):
                    needed = literal.input_variables()
                else:
                    needed = literal.variables()
                if needed <= bound:
                    placed.append(AtomSource(literal, None))
                    if isinstance(literal, Assignment):
                        bound.add(literal.target)
                    pending.remove(literal)
                    progress = True

    try_place_pending()
    for source in positive_sources:
        placed.append(source)
        bound.update(source.literal.variables())
        try_place_pending()

    if pending:
        names = ", ".join(repr(l) for l in pending)
        raise ValueError(
            f"cannot place literals {names}: their variables are never bound "
            "by the positive atoms of the rule"
        )
    return tuple(placed)


def build_join_plan(
    rule: Rule,
    delta_index: Optional[int] = None,
    atom_order: Optional[Sequence[int]] = None,
) -> JoinPlan:
    """Build the JoinPlan for one delta choice of ``rule``.

    ``delta_index`` selects which positive atom (by position among the
    positive atoms) reads the Delta-Known database; None means every atom
    reads Derived (the seeding / naive plan).  ``atom_order`` optionally
    permutes the positive atoms; by default the as-written order is kept —
    preserving the author's order is the whole point of the "unoptimized"
    versus "hand-optimized" comparison.
    """
    positive = list(rule.positive_atoms())
    others: List[Literal] = [
        literal
        for literal in rule.body
        if not (isinstance(literal, Atom) and not literal.negated)
    ]

    if delta_index is not None and not (0 <= delta_index < len(positive)):
        raise ValueError(
            f"delta index {delta_index} out of range for rule {rule.name!r} "
            f"with {len(positive)} positive atoms"
        )

    sources: List[AtomSource] = []
    for position, atom in enumerate(positive):
        kind = (
            DatabaseKind.DELTA_KNOWN
            if delta_index is not None and position == delta_index
            else DatabaseKind.DERIVED
        )
        sources.append(AtomSource(atom, kind))

    if atom_order is not None:
        if sorted(atom_order) != list(range(len(sources))):
            raise ValueError(f"{atom_order!r} is not a permutation of the positive atoms")
        sources = [sources[i] for i in atom_order]

    ordered = legalize_literal_order(sources, others)
    return JoinPlan(
        head_relation=rule.head_relation,
        head_terms=rule.head.terms,
        sources=ordered,
        rule_name=rule.name,
    )


def seed_plan(rule: Rule) -> JoinPlan:
    """The naive (all-Derived) plan used in the stratum's seeding pass."""
    return build_join_plan(rule, delta_index=None)


def delta_subqueries(rule: Rule, stratum_relations: Iterable[str]) -> List[JoinPlan]:
    """The semi-naive sub-queries of ``rule`` within its stratum.

    One plan per occurrence of a same-stratum relation among the positive
    atoms, with that occurrence reading Delta-Known and everything else
    reading Derived.  A rule with no same-stratum atom is not recursive and
    contributes no delta sub-query (its results are complete after seeding).
    """
    stratum = set(stratum_relations)
    plans: List[JoinPlan] = []
    for position, atom in enumerate(rule.positive_atoms()):
        if atom.relation in stratum:
            plans.append(build_join_plan(rule, delta_index=position))
    return plans


def update_subqueries(rule: Rule) -> List[JoinPlan]:
    """The delta sub-queries of ``rule`` for *incremental* evaluation.

    Unlike :func:`delta_subqueries`, the delta choice ranges over **every**
    positive atom, not only same-stratum ones: an incremental update may seed
    the delta of any relation (typically a mutated EDB relation), and the
    change must flow through non-recursive rules too.  One plan per positive
    atom position, that position reading Delta-Known, the rest Derived.

    Each plan is built with its delta atom rotated to the *front* of the join
    (remaining atoms keep their relative order).  During an incremental
    update the delta holds a handful of changed rows while Derived holds the
    whole fixpoint, so driving the join from the delta — and exiting
    immediately when it is empty — is the difference between touching the
    change cone and rescanning the database every iteration.  Runtime
    re-optimizers (JIT/AOT-online) may still reorder further.
    """
    plans: List[JoinPlan] = []
    for position in range(len(rule.positive_atoms())):
        order = [position] + [
            i for i in range(len(rule.positive_atoms())) if i != position
        ]
        plans.append(build_join_plan(rule, delta_index=position, atom_order=order))
    return plans


def positive_atom_permutation(plan: JoinPlan, order: Sequence[int]) -> JoinPlan:
    """Reorder the positive atoms of an existing plan and re-legalize.

    ``order`` permutes the positive-atom sources of ``plan``; delta markings
    travel with their atoms.  Built-ins and negated atoms are re-interleaved.
    """
    positive = [
        s for s in plan.sources
        if isinstance(s.literal, Atom) and not s.literal.negated
    ]
    others = [
        s.literal for s in plan.sources
        if not (isinstance(s.literal, Atom) and not s.literal.negated)
    ]
    if sorted(order) != list(range(len(positive))):
        raise ValueError(f"{order!r} is not a permutation of the plan's positive atoms")
    permuted = [positive[i] for i in order]
    ordered = legalize_literal_order(permuted, others)
    return JoinPlan(
        head_relation=plan.head_relation,
        head_terms=plan.head_terms,
        sources=ordered,
        rule_name=plan.rule_name,
    )

"""Plan explanation: pretty-printing IROp trees.

``explain(tree)`` is the user-facing way to see which join order a program is
currently using — the runtime optimizer rewrites plans in place, so printing
the same tree before and after execution shows what the JIT did.
"""

from __future__ import annotations

from typing import List

from repro.ir.ops import IROp


def format_tree(node: IROp, prefix: str = "", is_root: bool = True,
                is_last: bool = True) -> List[str]:
    """Format ``node`` and its descendants as indented tree lines."""
    lines: List[str] = []
    if is_root:
        lines.append(node.label())
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + node.label())
        child_prefix = prefix + ("   " if is_last else "│  ")
    children = node.children
    for i, child in enumerate(children):
        lines.extend(format_tree(child, child_prefix, False, i == len(children) - 1))
    return lines


def explain(node: IROp) -> str:
    """Return the IR tree of ``node`` as a printable string."""
    return "\n".join(format_tree(node))

"""Shard-parallel evaluation: hash-partitioned semi-naive fixpoints.

Public surface:

* :class:`~repro.core.config.ShardingConfig` via ``EngineConfig.parallel(...)``
  — the configuration entry point;
* :class:`ParallelEvaluator` — the fixpoint driver the engine dispatches to;
* :class:`ShardedStorage`, :class:`PartitionSpec`, :class:`ExchangeRouter` —
  the storage, placement and exchange building blocks (also used by the
  incremental session's shard-parallel update propagation).
"""

from repro.parallel.exchange import ExchangeRouter, QuiescenceTracker
from repro.parallel.executor import (
    ForkWorkerPool,
    ParallelEvaluator,
    ParallelRunReport,
    SerialPool,
    ShardWorker,
    ThreadWorkerPool,
    WorkerPool,
    make_pool,
    resolve_pool_kind,
    resolve_shard_backend,
    run_replicated_rounds,
)
from repro.parallel.partition import (
    PartitionSpec,
    StratumPartitioning,
    find_aligned_columns,
    plan_stratum_partitioning,
    shard_of,
    stable_hash,
)
from repro.parallel.sharded_storage import ShardedStorage

__all__ = [
    "ExchangeRouter",
    "ForkWorkerPool",
    "ParallelEvaluator",
    "ParallelRunReport",
    "PartitionSpec",
    "QuiescenceTracker",
    "SerialPool",
    "ShardWorker",
    "ShardedStorage",
    "StratumPartitioning",
    "ThreadWorkerPool",
    "WorkerPool",
    "find_aligned_columns",
    "make_pool",
    "plan_stratum_partitioning",
    "resolve_pool_kind",
    "resolve_shard_backend",
    "run_replicated_rounds",
    "shard_of",
    "stable_hash",
]

"""The exchange step: routing derived tuples to owners, detecting fixpoint.

After each shard-local semi-naive round the freshly derived tuples must
reach the shard that owns them.  :class:`ExchangeRouter` makes the ownership
decision (it is a thin, picklable wrapper over the
:class:`~repro.parallel.partition.PartitionSpec` hash); the evaluator moves
the routed batches between workers, so the same router serves the serial,
thread-pool and forked-process pools.

Global termination uses a **two-phase all-shards-quiescent check**
(:class:`QuiescenceTracker`).  A shard reporting "no new local facts" is not
enough to stop: tuples exchanged in the very round that looked quiescent can
seed new work on their owning shard.  A round therefore ends the fixpoint
only when

* *phase one*: every shard finished its round without accepting any locally
  derived fact, **and**
* *phase two*: the exchange delivered no tuple that its owner accepted as
  new.

Both phases read counters collected at the round barrier, so the check is
exact rather than heuristic — there is no in-flight traffic once the
barrier has been crossed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.parallel.partition import PartitionSpec, shard_of
from repro.relational.relation import Row

#: owner shard -> relation -> rows destined for that owner.
Outboxes = Dict[int, Dict[str, List[Row]]]


class ExchangeRouter:
    """Routes produced rows to their owning shards."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec

    def owner(self, relation: str, row: Sequence[Any]) -> int:
        return self.spec.owner(relation, row)

    def route(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]],
        local_shard: int,
    ) -> Tuple[List[Row], Outboxes]:
        """Split ``rows`` into locally owned rows and per-owner outboxes."""
        local: List[Row] = []
        outboxes: Outboxes = {}
        column = self.spec.partition_column(relation)
        shards = self.spec.shards
        for row in rows:
            row = tuple(row)
            owner = shard_of(row[column], shards)
            if owner == local_shard:
                local.append(row)
            else:
                outboxes.setdefault(owner, {}).setdefault(relation, []).append(row)
        return local, outboxes


def merge_outboxes(per_shard: Sequence[Outboxes], shards: int) -> List[Dict[str, List[Row]]]:
    """Regroup every worker's outboxes into one inbox per destination shard."""
    inboxes: List[Dict[str, List[Row]]] = [{} for _ in range(shards)]
    for outboxes in per_shard:
        for owner, batches in outboxes.items():
            inbox = inboxes[owner]
            for relation, rows in batches.items():
                inbox.setdefault(relation, []).extend(rows)
    return inboxes


@dataclass
class RoundStats:
    """What one exchange round did, summed over all shards."""

    round_index: int
    accepted_local: int = 0     # locally derived rows accepted into deltas
    exchanged: int = 0          # rows shipped between shards
    accepted_delivered: int = 0  # delivered rows accepted as new by owners
    promoted: int = 0           # rows promoted into Derived at round end


@dataclass
class QuiescenceTracker:
    """The two-phase global-fixpoint decision over per-round counters."""

    rounds: List[RoundStats] = field(default_factory=list)

    def begin_round(self) -> RoundStats:
        stats = RoundStats(round_index=len(self.rounds) + 1)
        self.rounds.append(stats)
        return stats

    def locally_quiescent(self, stats: RoundStats) -> bool:
        """Phase one: no shard accepted a locally derived fact this round."""
        return stats.accepted_local == 0

    def exchange_quiescent(self, stats: RoundStats) -> bool:
        """Phase two: no exchanged tuple was accepted as new by its owner."""
        return stats.accepted_delivered == 0

    def global_fixpoint(self, stats: RoundStats) -> bool:
        """Both phases quiescent — nothing promoted anywhere, stop the loop."""
        return (
            self.locally_quiescent(stats)
            and self.exchange_quiescent(stats)
            and stats.promoted == 0
        )

    # -- summaries ---------------------------------------------------------------

    def total_exchanged(self) -> int:
        return sum(stats.exchanged for stats in self.rounds)

    def total_promoted(self) -> int:
        return sum(stats.promoted for stats in self.rounds)

    def round_count(self) -> int:
        return len(self.rounds)

"""Worker pools and the shard-parallel fixpoint driver.

The :class:`ParallelEvaluator` evaluates a program's fixpoint across N
shards.  Per recursive stratum it

1. runs the ordinary seeding pass on the global storage (through the
   standard :class:`~repro.core.executor.IRExecutor`, so aggregate rules and
   JIT seed reordering behave exactly as in single-shard evaluation),
2. picks a placement (:mod:`repro.parallel.partition`) and scatters the
   seeded state into a :class:`~repro.parallel.sharded_storage.ShardedStorage`,
3. drives shard-local semi-naive iterations on a worker pool, exchanging
   freshly derived tuples between rounds (:mod:`repro.parallel.exchange`),
4. merges the shard results back into the global storage deterministically.

Two loop strategies exist, chosen by the partitioning analysis:

* **aligned** — the pivot-aligned partitioning makes every shard's fixpoint
  self-contained, so each worker runs its whole loop as one task and the
  exchange step is provably idle;
* **replicated** — every shard mirrors the stratum's derived database and
  owns a slice of the delta; each round evaluates shard-local deltas, routes
  derived tuples to their owners, and broadcasts accepted tuples so the
  replicas stay complete.  This is the sound fallback for any positive
  recursive stratum (and the engine of the incremental session's
  shard-parallel update propagation).

Worker pools: serial round-robin (always safe — used whenever the machine
has fewer cores than shards, and under pytest/CI), a ``fork``-based process
pool whose children inherit their shard state and exchange picklable row
batches over pipes (the ``auto`` choice on multi-core machines — shard
evaluation is pure Python, so only processes escape the GIL), and an
opt-in thread pool.  Shard workers evaluate their
frozen plans through a one-shot compiled artifact (see
:class:`~repro.core.config.ShardingConfig.shard_backend`): unlike the
adaptive single-shard JIT, a shard's plans never change after setup, so one
compilation per shard amortises over every round — this is what makes the
subsystem faster than the plain interpreter even on a single core, with the
pool adding real parallelism on multi-core machines.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.backends.base import get_backend
from repro.core.config import EngineConfig, ExecutionMode, ShardingConfig
from repro.core.executor import IRExecutor
from repro.core.join_order import (
    JoinOrderOptimizer,
    storage_cardinality_view,
    storage_index_view,
)
from repro.core.profile import RuntimeProfile
from repro.datalog.program import DatalogProgram
from repro.ir.builder import collect_loop_plans
from repro.ir.encoding import plan_allocates
from repro.ir.ops import ProgramOp, StratumOp
from repro.parallel.exchange import (
    ExchangeRouter,
    Outboxes,
    QuiescenceTracker,
    merge_outboxes,
)
from repro.parallel.partition import PartitionSpec, plan_stratum_partitioning
from repro.parallel.sharded_storage import ShardedStorage
from repro.relational.operators import JoinPlan, SubqueryEvaluator
from repro.relational.relation import Row
from repro.relational.storage import DatabaseKind, StorageManager
from repro.resilience import faults
from repro.resilience.cancel import NOOP_TOKEN, CancellationToken
from repro.resilience.errors import ResilienceError, WorkerFailed, error_from_code
from repro.resilience.limits import NOOP_GOVERNOR
from repro.telemetry.spans import NOOP_TRACER, SpanBuffer


# ---------------------------------------------------------------------------
# Worker pools
# ---------------------------------------------------------------------------


class WorkerPool:
    """Invokes one method on every shard worker and gathers ordered results."""

    kind = "abstract"

    def __init__(self, workers: Sequence["ShardWorker"]) -> None:
        self.workers = list(workers)

    def invoke(self, method: str, args_per_worker: Optional[Sequence[tuple]] = None) -> List[Any]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""


class SerialPool(WorkerPool):
    """Round-robin execution in the calling thread.

    The degradation target required on single-core machines: with
    ``shards > os.cpu_count()`` there is no parallel speedup to be had, so
    the shards simply take turns — same results, no oversubscription, and
    nothing that could deadlock.
    """

    kind = "serial"

    def invoke(self, method, args_per_worker=None):
        faults.fire("pool.invoke", WorkerFailed)
        args_per_worker = args_per_worker or [()] * len(self.workers)
        return [
            getattr(worker, method)(*args)
            for worker, args in zip(self.workers, args_per_worker)
        ]


class ThreadWorkerPool(WorkerPool):
    """A persistent thread pool; workers mutate only their own shard state."""

    kind = "thread"

    def __init__(self, workers: Sequence["ShardWorker"], max_workers: int) -> None:
        super().__init__(workers)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shard"
        )

    def invoke(self, method, args_per_worker=None):
        faults.fire("pool.invoke", WorkerFailed)
        args_per_worker = args_per_worker or [()] * len(self.workers)
        futures = [
            self._executor.submit(getattr(worker, method), *args)
            for worker, args in zip(self.workers, args_per_worker)
        ]
        return [future.result() for future in futures]

    def close(self):
        self._executor.shutdown(wait=True)


def _fork_worker_main(connection, worker: "ShardWorker") -> None:
    """Child process loop: execute piped commands against the inherited shard."""
    try:
        while True:
            method, args = connection.recv()
            if method == "__stop__":
                break
            try:
                connection.send(("ok", getattr(worker, method)(*args)))
            except ResilienceError as error:
                # Ship the taxonomy code so the coordinator re-raises the
                # same class (a worker hitting its deadline must surface as
                # DeadlineExceeded, not as a generic worker failure).
                connection.send(("resilience", (error.code, str(error))))
            except Exception as error:  # surface, don't kill the pipe
                connection.send(("error", f"{type(error).__name__}: {error}"))
    finally:
        connection.close()


class ForkWorkerPool(WorkerPool):
    """One forked process per shard; state is inherited, batches are pickled.

    Only the interpreted/compiled shard state needs to survive the fork —
    it is inherited by memory copy, so nothing about the worker itself must
    be picklable.  Per-round traffic (row batches: tuples of plain values)
    is pickled over pipes, which is why this pool is only offered where the
    data is picklable and the ``fork`` start method exists.
    """

    kind = "process"

    def __init__(self, workers: Sequence["ShardWorker"],
                 join_timeout: float = 5.0) -> None:
        super().__init__(workers)
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self.join_timeout = join_timeout
        self._connections = []
        self._processes = []
        for worker in self.workers:
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_fork_worker_main, args=(child_end, worker), daemon=True
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        self._closed = False

    def invoke(self, method, args_per_worker=None):
        faults.fire("pool.invoke", WorkerFailed)
        args_per_worker = args_per_worker or [()] * len(self.workers)
        for shard, (connection, args) in enumerate(
            zip(self._connections, args_per_worker)
        ):
            try:
                connection.send((method, args))
            except (BrokenPipeError, OSError):
                self._reap(shard)
                raise WorkerFailed(
                    f"shard {shard} worker died (pipe closed before send)",
                    shard=shard, method=method,
                ) from None
        results = []
        for shard, connection in enumerate(self._connections):
            try:
                status, payload = connection.recv()
            except (EOFError, ConnectionResetError, OSError) as error:
                # The child vanished mid-call (SIGKILL, OOM, segfault).
                # Reap the corpse now so no zombie outlives the pool, then
                # let the caller degrade and re-run the stratum.
                self._reap(shard)
                raise WorkerFailed(
                    f"shard {shard} worker died mid-invoke "
                    f"({type(error).__name__})",
                    shard=shard, method=method,
                ) from None
            if status == "resilience":
                code, message = payload
                raise error_from_code(code, message, shard=shard)
            if status != "ok":
                raise RuntimeError(f"shard {shard} worker failed: {payload}")
            results.append(payload)
        return results

    def _reap(self, shard: int) -> None:
        """Collect one dead (or dying) child so it cannot linger as a zombie."""
        process = self._processes[shard]
        if process.is_alive():
            process.terminate()
        process.join(timeout=self.join_timeout)
        if process.is_alive():  # pragma: no cover - SIGTERM-immune child
            process.kill()
            process.join()

    def close(self):
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("__stop__", ()))
            except (BrokenPipeError, OSError):  # child already gone
                pass
        for process in self._processes:
            process.join(timeout=self.join_timeout)
            if process.is_alive():
                # The child ignored __stop__ (wedged or mid-task): escalate
                # SIGTERM -> SIGKILL and always reap — join(timeout) alone
                # used to give up silently and leak the process.
                process.terminate()
                process.join(timeout=self.join_timeout)
                if process.is_alive():
                    process.kill()
                    process.join()
        for connection in self._connections:
            connection.close()


def drain_pool_vectorized_stats(pool: WorkerPool, profile: RuntimeProfile) -> None:
    """Fold every worker's (reset-on-read) batch counters into ``profile``.

    Shared by the one-shot :class:`ParallelEvaluator` pools and the
    incremental session's persistent pool, so parallel+vectorized runs
    report the same explain() counters as single-shard runs.
    """
    for stats in pool.invoke("drain_vectorized_stats"):
        profile.absorb_block_stats(stats)
        profile.sources.vectorized += stats.get("batches", 0)


def fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_pool_kind(sharding: ShardingConfig, shards: int) -> str:
    """Decide which pool to use, degrading gracefully on small machines.

    ``auto`` only parallelises when the machine has a core per shard and we
    are not inside pytest/CI (single-core runners and test harnesses get
    serial round-robin — identical results, no oversubscription).  Where it
    does parallelise it prefers the forked-process pool: shard evaluation is
    pure Python, so threads contend on the GIL and add synchronisation
    without overlap — only processes deliver real parallelism.  The thread
    pool remains an explicit opt-in (useful where forking is hostile, e.g.
    embedded interpreters).  An explicit ``process`` request falls back to
    serial where ``fork`` is unavailable rather than failing.
    """
    requested = sharding.pool
    cpus = os.cpu_count() or 1
    if requested == "serial":
        return "serial"
    if requested == "thread":
        return "thread"
    if requested == "process":
        return "process" if fork_available() else "serial"
    # "auto"
    if shards > cpus or cpus <= 1:
        return "serial"
    if "PYTEST_CURRENT_TEST" in os.environ or os.environ.get("CI"):
        return "serial"
    return "process" if fork_available() else "serial"


def make_pool(kind: str, workers: Sequence["ShardWorker"]) -> WorkerPool:
    if kind == "thread":
        cpus = os.cpu_count() or 1
        return ThreadWorkerPool(workers, max_workers=min(len(workers), max(1, cpus)))
    if kind == "process":
        return ForkWorkerPool(workers)
    return SerialPool(workers)


def shard_stat_rows(config: EngineConfig, pool=None, degradations: int = 0):
    """The ``sys_shards`` catalog rows for one configuration.

    One ``(shard, pool_kind, degradations)`` row per shard.  ``pool`` is a
    live :class:`WorkerPool` when the session has built its shard state (its
    ``kind`` is authoritative — it reflects any degradation that already
    happened); otherwise the kind is what :func:`resolve_pool_kind` would
    pick right now.  Non-sharded configurations have no shard topology:
    empty.
    """
    from repro.engine.engine import sharding_active

    if not sharding_active(config):
        return []
    sharding = config.sharding
    kind = pool.kind if pool is not None else resolve_pool_kind(
        sharding, sharding.shards
    )
    return [
        (shard, kind, int(degradations)) for shard in range(sharding.shards)
    ]


# ---------------------------------------------------------------------------
# Shard workers
# ---------------------------------------------------------------------------


class ShardWorker:
    """Evaluates one shard's loop plans against its local storage.

    ``groups`` are ``(relation, plans)`` pairs extracted from the loop body;
    :meth:`prepare` freezes each group into either a one-shot compiled
    artifact or an interpreted closure.  The worker never touches another
    shard's storage: cross-shard rows leave through outboxes and arrive via
    :meth:`ingest_and_collect` / :meth:`finish_round`, all invoked by the
    coordinator at round barriers.
    """

    def __init__(
        self,
        shard_id: int,
        storage: StorageManager,
        groups: Sequence[Tuple[str, Sequence[JoinPlan]]],
        swap_relations: Sequence[str],
        router: Optional[ExchangeRouter] = None,
    ) -> None:
        self.shard_id = shard_id
        self.storage = storage
        self.groups = [(relation, list(plans)) for relation, plans in groups]
        self.swap_relations = list(swap_relations)
        self.router = router
        self._evaluate_group: List[Callable[[], Set[Row]]] = []
        self._evaluators: List[SubqueryEvaluator] = []
        #: In-shard span recorder (see :class:`SpanBuffer`): populated by
        #: ``prepare(..., trace=True)``, drained by the coordinator through
        #: the pool and remapped into the live trace.
        self.telemetry: Optional[SpanBuffer] = None
        self._round = 0

    def prepare(self, backend_name: Optional[str], use_indexes: bool, style: str,
                executor: str = "pushdown", trace: bool = False) -> None:
        """Freeze each plan group into its evaluation closure.

        Must run before the pool starts (fork children inherit the compiled
        artifacts; threads share them read-only).  ``executor`` selects the
        interpreting closure's physical executor (pushdown recursion or the
        vectorized batch pipeline); compiled artifacts ignore it.  ``trace``
        attaches a :class:`SpanBuffer` recording per-round worker spans.
        """
        self._evaluate_group = []
        self._evaluators = []
        self.telemetry = SpanBuffer() if trace else None
        self._round = 0
        tracer = self.telemetry if self.telemetry is not None else NOOP_TRACER
        for relation, plans in self.groups:
            if backend_name:
                artifact = get_backend(backend_name).compile_plans(
                    plans, self.storage, use_indexes=use_indexes,
                    label=f"shard{self.shard_id}-{relation}",
                )
                self._evaluate_group.append(
                    (lambda artifact=artifact: artifact(self.storage))
                )
            else:
                evaluator = SubqueryEvaluator(
                    self.storage, style, executor=executor, tracer=tracer
                )
                self._evaluators.append(evaluator)
                def interpret(plans=plans, evaluator=evaluator) -> Set[Row]:
                    rows: Set[Row] = set()
                    for plan in plans:
                        rows |= evaluator.evaluate(plan)
                    return rows
                self._evaluate_group.append(interpret)

    def drain_spans(self) -> List[Dict[str, Any]]:
        """This shard's recorded span dicts, reset after reading.

        Pulled through the pool (fork children own their buffers) and merged
        into the coordinator trace via ``Tracer.merge_buffer``.
        """
        return self.telemetry.drain() if self.telemetry is not None else []

    def drain_vectorized_stats(self) -> Dict[str, int]:
        """This shard's accumulated batch counters, reset after reading.

        Pulled through the pool at merge time (fork children own their
        evaluators) so parallel+vectorized runs report batch/strategy counts
        in the profile just like single-shard runs; draining keeps a
        persistent session pool from double-counting across batches.
        """
        merged: Dict[str, int] = {}
        for evaluator in self._evaluators:
            stats = evaluator.vectorized_stats
            if stats:
                for key, value in stats.items():
                    merged[key] = merged.get(key, 0) + value
                    stats[key] = 0
        return merged

    # -- aligned strategy --------------------------------------------------------

    def run_local_fixpoint(self, max_iterations: int,
                           deadline: Optional[float] = None) -> Tuple[int, int]:
        """Run the shard's semi-naive loop to local fixpoint.

        Used by the aligned strategy, where pivot alignment guarantees every
        derivable row is locally owned — so the whole loop is one pool task.
        ``deadline`` is an absolute monotonic instant (CLOCK_MONOTONIC is
        system-wide, so the coordinator's deadline is meaningful inside a
        forked child); the loop checks it cooperatively each iteration and
        raises :class:`~repro.resilience.errors.DeadlineExceeded`, which the
        fork pool ships back as a typed error.  Returns ``(iterations,
        promoted_total)``.
        """
        iterations = 0
        promoted_total = 0
        tracer = self.telemetry if self.telemetry is not None else NOOP_TRACER
        token = (CancellationToken(deadline=deadline) if deadline is not None
                 else NOOP_TOKEN)
        while True:
            if token.active:
                token.check()
            iterations += 1
            span = tracer.span("iteration", shard=self.shard_id, round=iterations)
            for (relation, _plans), evaluate in zip(self.groups, self._evaluate_group):
                self.storage.insert_new_batch(relation, evaluate())
            promoted = self.storage.swap_and_clear(self.swap_relations)
            span.set(promoted=promoted).finish()
            promoted_total += promoted
            if promoted == 0 or iterations >= max_iterations:
                return iterations, promoted_total

    # -- replicated strategy (one exchange round at a time) ----------------------

    def evaluate_round(self) -> Tuple[int, Outboxes]:
        """Evaluate this shard's delta slice; keep owned rows, export the rest."""
        assert self.router is not None
        self._round += 1
        tracer = self.telemetry if self.telemetry is not None else NOOP_TRACER
        span = tracer.span("iteration", shard=self.shard_id, round=self._round)
        accepted_local = 0
        outboxes: Outboxes = {}
        try:
            for (relation, _plans), evaluate in zip(self.groups, self._evaluate_group):
                produced = evaluate()
                if not produced:
                    continue
                local, routed = self.router.route(relation, produced, self.shard_id)
                accepted_local += self.storage.insert_new_batch(relation, set(local))
                for owner, batches in routed.items():
                    box = outboxes.setdefault(owner, {})
                    for name, rows in batches.items():
                        box.setdefault(name, []).extend(rows)
        finally:
            span.set(accepted=accepted_local).finish()
        return accepted_local, outboxes

    def ingest_and_collect(
        self, inbox: Mapping[str, Sequence[Sequence[Any]]]
    ) -> Tuple[int, Dict[str, List[Row]]]:
        """Accept delivered rows, then report this round's full delta batch.

        Delivered rows deduplicate against the local Derived replica exactly
        like locally derived ones.  The returned batch (the Delta-New
        contents: local + delivered acceptances) is what the coordinator
        broadcasts for replica maintenance.  Rows are returned unsorted —
        every consumer folds them into set-backed relations, and sorting
        would break on relations whose columns mix value types.
        """
        accepted = 0
        for relation, rows in inbox.items():
            accepted += self.storage.insert_new_many(relation, rows)
        batch = {
            relation: list(self.storage.tuples(relation, DatabaseKind.DELTA_NEW))
            for relation in self.swap_relations
            if self.storage.cardinality(relation, DatabaseKind.DELTA_NEW)
        }
        return accepted, batch

    def finish_round(self, foreign: Mapping[str, Sequence[Sequence[Any]]]) -> int:
        """Promote the local delta, then absorb other owners' accepted rows.

        The swap runs first so foreign rows never enter this shard's delta:
        they are owned — and delta-joined — elsewhere; here they only keep
        the Derived replica complete.
        """
        promoted = self.storage.swap_and_clear(self.swap_relations)
        for relation, rows in foreign.items():
            self.storage.absorb_rows(relation, rows)
        return promoted

    # -- result collection -------------------------------------------------------

    def collect_derived(self, relations: Sequence[str]) -> Dict[str, List[Row]]:
        """This shard's Derived rows (the merge path for every pool kind).

        Fork-pool children mutate their own copy of the shard state, so the
        coordinator must always pull results through the pool instead of
        reading its (stale, for forked pools) worker objects directly.
        Rows come back unsorted: the merge target is set-backed, so the
        result does not depend on row order, and sorting would break on
        relations whose columns mix value types.
        """
        return {
            relation: list(self.storage.relation(relation).rows())
            for relation in relations
        }


# ---------------------------------------------------------------------------
# The replicated-strategy round driver
# ---------------------------------------------------------------------------


@dataclass
class RoundDriverResult:
    rounds: int = 0
    exchanged: int = 0
    promoted: int = 0


def run_replicated_rounds(
    pool: WorkerPool,
    shards: int,
    max_rounds: int,
    tracker: Optional[QuiescenceTracker] = None,
    on_accepted: Optional[Callable[[Dict[str, List[Row]]], None]] = None,
    governor=NOOP_GOVERNOR,
) -> RoundDriverResult:
    """Drive exchange rounds until the two-phase quiescence check passes.

    ``on_accepted`` receives every round's accepted rows (relation → rows),
    which is how the incremental session folds shard-parallel propagation
    results into its global storage as they appear.  ``governor`` (a
    :class:`~repro.resilience.limits.QueryGovernor`) is polled at every
    round boundary — one exchange round is the replicated strategy's
    cancellation granularity.
    """
    tracker = tracker if tracker is not None else QuiescenceTracker()
    result = RoundDriverResult()
    while result.rounds < max_rounds:
        result.rounds += 1
        stats = tracker.begin_round()

        evaluated = pool.invoke("evaluate_round")
        stats.accepted_local = sum(accepted for accepted, _ in evaluated)
        inboxes = merge_outboxes([outboxes for _, outboxes in evaluated], shards)
        stats.exchanged = sum(
            len(rows) for inbox in inboxes for rows in inbox.values()
        )

        ingested = pool.invoke("ingest_and_collect", [(inbox,) for inbox in inboxes])
        stats.accepted_delivered = sum(accepted for accepted, _ in ingested)

        accepted_rows: Dict[str, List[Row]] = {}
        for _, batch in ingested:
            for relation, rows in batch.items():
                accepted_rows.setdefault(relation, []).extend(rows)
        if on_accepted is not None and accepted_rows:
            on_accepted(accepted_rows)

        foreign_per_shard: List[Dict[str, List[Row]]] = []
        for shard in range(shards):
            foreign: Dict[str, List[Row]] = {}
            for other, (_, batch) in enumerate(ingested):
                if other == shard:
                    continue
                for relation, rows in batch.items():
                    foreign.setdefault(relation, []).extend(rows)
            foreign_per_shard.append(foreign)

        promoted = pool.invoke("finish_round", [(f,) for f in foreign_per_shard])
        stats.promoted = sum(promoted)
        result.exchanged += stats.exchanged
        result.promoted += stats.promoted
        if tracker.global_fixpoint(stats):
            break
        if governor.active:
            governor.on_round(stats.promoted)
    return result


# ---------------------------------------------------------------------------
# The parallel evaluator
# ---------------------------------------------------------------------------


@dataclass
class StratumRunReport:
    """How one stratum was evaluated."""

    index: int
    strategy: str                     # "serial" | "aligned" | "replicated"
    shards: int = 1
    pool: str = "serial"
    rounds: int = 0
    exchanged: int = 0
    promoted: int = 0
    seconds: float = 0.0
    partition_reasons: Dict[str, str] = field(default_factory=dict)


@dataclass
class ParallelRunReport:
    """Everything the shard-parallel evaluation did."""

    shards: int
    strata: List[StratumRunReport] = field(default_factory=list)
    seconds: float = 0.0

    def strategies(self) -> List[str]:
        return [stratum.strategy for stratum in self.strata]

    def total_exchanged(self) -> int:
        return sum(stratum.exchanged for stratum in self.strata)


def resolve_shard_backend(config: EngineConfig) -> Optional[str]:
    """Which backend shard workers compile their frozen plans with.

    See :class:`~repro.core.config.ShardingConfig.shard_backend`.  AOT mode
    interprets by default so its reorder-only character is preserved; the
    JIT modes keep their configured backend; interpreted mode defaults to
    the cheap-to-invoke ``bytecode`` backend.
    """
    assert config.sharding is not None
    choice = config.sharding.shard_backend
    if choice == "none":
        return None
    if choice != "auto":
        return choice
    if config.mode == ExecutionMode.JIT:
        return config.backend
    if config.mode == ExecutionMode.AOT:
        return None
    if config.executor == "vectorized":
        # The batch pipeline plays the role of the one-shot compile: shard
        # workers interpret their frozen plans block-at-a-time instead.
        return None
    return "bytecode"


class ParallelEvaluator:
    """Evaluates one prepared program shard-parallel (see module docstring)."""

    def __init__(
        self,
        program: DatalogProgram,
        config: EngineConfig,
        storage: StorageManager,
        tree: ProgramOp,
        profile: Optional[RuntimeProfile] = None,
        governor=None,
    ) -> None:
        if config.sharding is None or config.sharding.shards < 2:
            raise ValueError("ParallelEvaluator requires a sharding config with shards >= 2")
        self.program = program
        self.config = config
        self.sharding = config.sharding
        self.storage = storage
        self.tree = tree
        self.profile = profile if profile is not None else RuntimeProfile()
        self.tracer = config.tracer()
        self.governor = governor if governor is not None else config.governor()
        self.report = ParallelRunReport(shards=self.sharding.shards)

    # -- public API --------------------------------------------------------------

    def run(self) -> ParallelRunReport:
        started = time.perf_counter()
        for stratum in self.tree.strata:
            stratum_started = time.perf_counter()
            with self.tracer.span("stratum", index=stratum.index) as span:
                report = self._run_stratum(stratum, span)
                span.set(
                    strategy=report.strategy, shards=report.shards,
                    pool=report.pool,
                )
            report.seconds = time.perf_counter() - stratum_started
            self.report.strata.append(report)
        self.report.seconds = time.perf_counter() - started
        self.profile.wall_seconds = self.report.seconds
        for name in self.storage.relation_names():
            self.profile.result_sizes[name] = self.storage.cardinality(name)
        self.profile.record_symbol_stats(self.storage.symbols)
        return self.report

    # -- per-stratum driver ------------------------------------------------------

    def _run_stratum(self, stratum: StratumOp, span=None) -> StratumRunReport:
        groups = collect_loop_plans(stratum.loop) if stratum.loop is not None else None
        if stratum.loop is None or groups is None:
            self._execute_serial(stratum)
            return StratumRunReport(index=stratum.index, strategy="serial")

        # 1. Seed on the global storage with the standard executor.
        self._execute_serial(
            StratumOp(stratum.index, stratum.relations, stratum.seed, None)
        )

        # 2. Placement.
        plans = [plan for _, group_plans in groups for plan in group_plans]
        arities = {
            name: self.storage.arity_of(name) for name in self.storage.relation_names()
        }
        fact_counts = {
            name: self.storage.cardinality(name)
            for name in self.storage.relation_names()
        }
        partitioning = plan_stratum_partitioning(
            self.sharding.shards, plans, stratum.relations, arities, fact_counts
        )
        spec = partitioning.spec
        if self.config.mode == ExecutionMode.JIT:
            groups = self._reorder_groups(groups)

        pool_kind = resolve_pool_kind(self.sharding, spec.shards)
        if (
            pool_kind == "process"
            and not self.storage.symbols.identity
            and any(plan_allocates(plan) for plan in plans)
        ):
            # Plans that compute fresh values (assignments, arithmetic
            # heads) can intern new symbols mid-fixpoint.  A forked child
            # allocating ids would diverge from its siblings' inherited
            # tables, so such strata stay in-process — on the thread pool,
            # where every worker interns through the one locked table and
            # shard parallelism survives (the report's ``pool`` column
            # shows the substitution).
            pool_kind = "thread"
            self.profile.pool_degradations += 1

        max_rounds = min(
            stratum.loop.max_iterations,
            self.config.max_iterations,
            self.sharding.max_rounds,
        )
        # Scatter/drive/merge runs under worker-failure degradation: the
        # global storage is only read until the merge, so when a shard
        # worker dies mid-stratum (detected and reaped by the pool) the
        # whole stage can be rebuilt from the still-pristine global state
        # and re-driven on the next-safer pool kind — a crashed worker
        # costs latency, never the answer.
        while True:
            report = StratumRunReport(
                index=stratum.index,
                strategy="aligned" if spec.aligned else "replicated",
                shards=spec.shards,
                pool=pool_kind,
                partition_reasons=dict(partitioning.reasons),
            )
            try:
                self._drive_stratum(
                    stratum, spec, groups, pool_kind, max_rounds, span, report
                )
                break
            except WorkerFailed:
                if pool_kind == "serial":
                    raise
                self.profile.worker_failures += 1
                self.profile.pool_degradations += 1
                pool_kind = "thread" if pool_kind == "process" else "serial"

        # Leave the global deltas the way a completed serial loop would.
        self.storage.clear_deltas(stratum.relations)
        return report

    def _drive_stratum(
        self,
        stratum: StratumOp,
        spec: PartitionSpec,
        groups: Sequence[Tuple[str, Sequence[JoinPlan]]],
        pool_kind: str,
        max_rounds: int,
        span,
        report: StratumRunReport,
    ) -> None:
        """One scatter → drive → merge attempt of a recursive stratum."""
        # 3. Scatter the seeded state.
        sharded = ShardedStorage(
            spec, self.storage, relations=set(spec.columns) | set(spec.replicated)
        )
        for name in sorted(spec.replicated):
            # Loop plans only ever *read* support relations, so every shard
            # can adopt the global copy by reference instead of duplicating it.
            sharded.share_derived(self.storage, name)
        for name in sorted(spec.columns):
            if spec.aligned:
                sharded.partition_derived(self.storage, name)
            else:
                sharded.replicate_derived(self.storage, name)
            sharded.scatter_delta(
                name, self.storage.tuples(name, DatabaseKind.DELTA_KNOWN)
            )

        # 4. Workers and pool.
        router = ExchangeRouter(spec)
        swap_relations = [r for r in stratum.relations if r in spec.columns]
        workers = [
            ShardWorker(
                shard, sharded.shard(shard), groups, swap_relations, router=router
            )
            for shard in range(spec.shards)
        ]
        backend_name = resolve_shard_backend(self.config)
        for worker in workers:
            worker.prepare(
                backend_name, self.config.use_indexes,
                self.config.evaluator_style, self.config.executor,
                trace=self.tracer.enabled,
            )
        pool = make_pool(pool_kind, workers)
        governor = self.governor

        try:
            if spec.aligned:
                results = pool.invoke(
                    "run_local_fixpoint",
                    [(max_rounds, governor.deadline)] * spec.shards,
                )
                report.rounds = max(iterations for iterations, _ in results)
                report.promoted = sum(promoted for _, promoted in results)
                self.profile.record_iteration(
                    stratum.index, report.rounds, report.promoted, None, 0.0
                )
                if governor.active:
                    governor.on_round(report.promoted)
            else:
                tracker = QuiescenceTracker()
                outcome = run_replicated_rounds(
                    pool, spec.shards, max_rounds, tracker=tracker,
                    governor=governor,
                )
                report.rounds = outcome.rounds
                report.exchanged = outcome.exchanged
                report.promoted = outcome.promoted
                for stats in tracker.rounds:
                    self.profile.record_iteration(
                        stratum.index, stats.round_index, stats.promoted, None, 0.0
                    )

            # 5. Merge (always through the pool: fork children own the state).
            # Aligned shards each hold a disjoint fragment, so all must be
            # collected; replicated shards converge to identical mirrors, so
            # only shard 0 is asked for rows (the rest collect nothing).
            merge_relations = swap_relations
            if spec.aligned:
                collect_args = [(merge_relations,)] * spec.shards
            else:
                collect_args = [(merge_relations,)] + [((),)] * (spec.shards - 1)
            collected = pool.invoke("collect_derived", collect_args)
            for shard_rows in collected:
                for name, rows in shard_rows.items():
                    self.storage.absorb_rows(name, rows)
            if backend_name is None and self.config.executor == "vectorized":
                drain_pool_vectorized_stats(pool, self.profile)
            if self.tracer.enabled and span is not None:
                # Reparent worker-recorded spans onto this stratum span
                # (fork children serialise theirs back over the pipe).
                for records in pool.invoke("drain_spans"):
                    self.tracer.merge_buffer(records, parent=span)
        finally:
            pool.close()

    # -- helpers -----------------------------------------------------------------

    def _execute_serial(self, stratum: StratumOp) -> None:
        # trace_strata=False: the coordinator already opened this stratum's
        # span, so the nested executor's iterations attach to it directly.
        executor = IRExecutor(
            self.storage, self.config, self.profile,
            tracer=self.tracer, trace_strata=False,
        )
        executor.execute(ProgramOp([stratum], name=self.tree.name))

    def _reorder_groups(
        self, groups: Sequence[Tuple[str, Sequence[JoinPlan]]]
    ) -> List[Tuple[str, List[JoinPlan]]]:
        """JIT composition: order each plan once, from post-seed cardinalities.

        The adaptive single-shard JIT re-decides join orders per iteration;
        shard plans are frozen at setup, so the decision is taken once here —
        against the global cardinalities the seeding pass just produced —
        then compiled once per shard.
        """
        optimizer = JoinOrderOptimizer(self.config.selectivity)
        cardinalities = storage_cardinality_view(self.storage)
        indexes = storage_index_view(self.storage)
        reordered: List[Tuple[str, List[JoinPlan]]] = []
        for relation, plans in groups:
            ordered = []
            for plan in plans:
                optimized, decision = optimizer.optimize_plan(plan, cardinalities, indexes)
                self.profile.record_reorder(0, plan.rule_name, "shard-setup", decision)
                ordered.append(optimized)
            reordered.append((relation, ordered))
        return reordered

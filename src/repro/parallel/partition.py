"""Hash-partitioning policy: which relations shard, on which column.

The shard-parallel evaluator splits a recursive stratum's data across N
shards.  Two placement decisions are made per relation, both from the schema
and the rule structure alone (never from the data):

* **Partitioned** relations are split by a hash of one column; every row
  lives on exactly one owning shard.  The stratum's own (IDB) relations are
  always partitioned — they are what the workers write.
* **Replicated** relations are copied to every shard.  Support relations —
  everything a loop plan reads but the stratum does not define, i.e. EDB
  relations and lower-strata results — are replicated so that shard-local
  joins always see a complete copy of their non-delta inputs.  (A future
  refinement may partition large support relations whose reads are provably
  owner-aligned; the policy object already records why each relation was
  replicated.)

The partition *column* is chosen by pivot alignment (generalised pivoting in
the parallel-Datalog literature): a column assignment is *aligned* when, in
every loop rule, the head and every same-stratum body atom carry the **same
variable** at their relation's partition column.  Under an aligned
assignment a shard-local semi-naive iteration is self-contained — every row
a delta row can join with, and every row it can derive, lives on the same
shard — so shards run whole fixpoints without exchanging a single tuple.
When no aligned assignment exists the evaluator falls back to the
*replicated* strategy (every shard mirrors the stratum relations, only the
delta is partitioned) where the exchange step does real work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.datalog.literals import Atom
from repro.datalog.terms import Variable
from repro.relational.operators import JoinPlan
from repro.relational.relation import Row

#: Safety cap on the column-assignment search (product of arities).  Strata
#: large enough to exceed it simply use the replicated fallback strategy.
MAX_ALIGNMENT_SEARCH = 4096


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash for partitioning.

    Two requirements pull in different directions.  Partitioning hashes must
    *refine equality* — values that compare equal must land on the same
    shard, or an aligned shard-local join silently misses matches (so
    ``True``, ``1`` and ``1.0`` must all hash alike, exactly why CPython
    guarantees ``hash(True) == hash(1) == hash(1.0)``).  But ``hash()`` is
    salted per interpreter for str/bytes, so sibling worker processes
    started without fork (and reruns of the same program) would disagree on
    string ownership.  Hence: numbers use the builtin hash (unsalted,
    equality-consistent across int/bool/float); str/bytes use CRC-32 of
    their encoding; anything else falls back to CRC-32 of ``repr``, which
    is stable across runs.
    """
    if isinstance(value, (int, float, complex)):  # bool is an int subclass
        return hash(value)
    import zlib

    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8", "surrogatepass"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    return zlib.crc32(repr(value).encode("utf-8"))


#: ``stable_hash`` equals the builtin hash on every int, so int-only key
#: columns — all of them, under dictionary encoding — may take
#: :meth:`repro.relational.columnar.ColumnarBlock.partition`'s C-level
#: ``map(hash, ...)`` fast path.
stable_hash.int_compatible = True  # type: ignore[attr-defined]


def shard_of(value: Any, shards: int) -> int:
    """The owning shard of a partition-column value."""
    return stable_hash(value) % shards


@dataclass(frozen=True)
class PartitionSpec:
    """The placement decision for every relation touched by one shard run.

    ``columns`` maps each partitioned relation to its partition column;
    ``replicated`` relations are mirrored on every shard.  ``columns`` also
    defines *delta ownership* for the replicated strategy: even when the
    derived database is mirrored, each delta row is processed by exactly one
    shard — the owner of its partition-column value.
    """

    shards: int
    columns: Mapping[str, int]
    replicated: FrozenSet[str] = frozenset()
    aligned: bool = False

    def is_partitioned(self, relation: str) -> bool:
        return relation in self.columns

    def partition_column(self, relation: str) -> int:
        return self.columns[relation]

    def owner(self, relation: str, row: Sequence[Any]) -> int:
        """The shard that owns ``row`` of ``relation``."""
        return shard_of(row[self.columns[relation]], self.shards)

    def split(self, relation: str, rows: Iterable[Sequence[Any]]) -> List[List[Row]]:
        """Partition ``rows`` into one bucket per shard, in shard order."""
        column = self.columns[relation]
        shards = self.shards
        buckets: List[List[Row]] = [[] for _ in range(shards)]
        for row in rows:
            buckets[shard_of(row[column], shards)].append(tuple(row))
        return buckets

    def relations(self) -> List[str]:
        return sorted(set(self.columns) | self.replicated)


def _plan_occurrences(
    plan: JoinPlan, stratum_relations: Set[str]
) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    """(relation, terms) of every same-stratum occurrence in one plan.

    The head counts as an occurrence: a derived row must land on the shard
    that derived it for aligned evaluation to avoid the exchange step.
    Negated atoms never belong to the stratum (stratification forbids it),
    so only positive atoms are inspected.
    """
    occurrences: List[Tuple[str, Tuple[Any, ...]]] = []
    if plan.head_relation in stratum_relations:
        occurrences.append((plan.head_relation, plan.head_terms))
    for source in plan.sources:
        literal = source.literal
        if isinstance(literal, Atom) and not literal.negated:
            if literal.relation in stratum_relations:
                occurrences.append((literal.relation, literal.terms))
    return tuple(occurrences)


def find_aligned_columns(
    plans: Sequence[JoinPlan],
    stratum_relations: Iterable[str],
    arities: Mapping[str, int],
) -> Optional[Dict[str, int]]:
    """Search for a pivot-aligned partition-column assignment.

    Returns ``{relation: column}`` covering every stratum relation that the
    loop plans mention, or None when no assignment is aligned (or the search
    space exceeds :data:`MAX_ALIGNMENT_SEARCH`).  An assignment is aligned
    when every plan's same-stratum occurrences — head included — all carry
    one and the same :class:`Variable` at their partition columns.
    """
    stratum = set(stratum_relations)
    signatures: Set[Tuple[Tuple[str, Tuple[Any, ...]], ...]] = set()
    mentioned: Set[str] = set()
    for plan in plans:
        occurrences = _plan_occurrences(plan, stratum)
        if occurrences:
            signatures.add(occurrences)
            mentioned.update(relation for relation, _ in occurrences)
    if not mentioned:
        return None

    relations = sorted(mentioned)
    search_space = 1
    for relation in relations:
        search_space *= max(1, arities[relation])
        if search_space > MAX_ALIGNMENT_SEARCH:
            return None

    for columns in itertools.product(*(range(arities[r]) for r in relations)):
        assignment = dict(zip(relations, columns))
        if all(_signature_aligned(signature, assignment) for signature in signatures):
            return assignment
    return None


def _signature_aligned(
    signature: Tuple[Tuple[str, Tuple[Any, ...]], ...],
    assignment: Mapping[str, int],
) -> bool:
    pivot: Optional[Variable] = None
    for relation, terms in signature:
        term = terms[assignment[relation]]
        if not isinstance(term, Variable):
            return False
        if pivot is None:
            pivot = term
        elif term != pivot:
            return False
    return True


@dataclass(frozen=True)
class StratumPartitioning:
    """The full placement plan for one recursive stratum.

    ``spec.aligned`` selects the evaluation strategy: aligned strata run
    independent shard-local fixpoints (exchange provably idle); unaligned
    strata run the replicated strategy, where the partitioned delta drives
    work splitting and the exchange step routes each freshly derived tuple
    to its owner.
    """

    spec: PartitionSpec
    support: FrozenSet[str] = frozenset()
    reasons: Mapping[str, str] = field(default_factory=dict)


def plan_stratum_partitioning(
    shards: int,
    plans: Sequence[JoinPlan],
    stratum_relations: Iterable[str],
    arities: Mapping[str, int],
    fact_counts: Optional[Mapping[str, int]] = None,
) -> StratumPartitioning:
    """Build the :class:`StratumPartitioning` for one stratum's loop plans.

    Stratum relations are partitioned — by their aligned pivot columns when
    the alignment search succeeds, by column 0 (delta ownership only)
    otherwise.  Everything else the plans read is replicated; ``reasons``
    records the rationale per relation for diagnostics (``fact_counts``
    lets the diagnostics distinguish small relations, which would be
    replicated under any policy, from large ones replicated for soundness).
    """
    stratum = set(stratum_relations)
    referenced: Set[str] = set()
    for plan in plans:
        referenced.add(plan.head_relation)
        for source in plan.sources:
            literal = source.literal
            if isinstance(literal, Atom):
                referenced.add(literal.relation)

    partitioned = sorted(referenced & stratum)
    support = frozenset(referenced - stratum)

    aligned = find_aligned_columns(plans, stratum, arities)
    if aligned is not None:
        columns = {relation: aligned.get(relation, 0) for relation in partitioned}
    else:
        columns = {relation: 0 for relation in partitioned}

    reasons: Dict[str, str] = {}
    for relation in partitioned:
        if aligned is not None:
            reasons[relation] = f"partitioned on aligned pivot column {columns[relation]}"
        else:
            reasons[relation] = "delta partitioned on column 0 (no aligned pivot)"
    for relation in sorted(support):
        size = (fact_counts or {}).get(relation)
        if size is not None and size <= SMALL_RELATION_ROWS:
            reasons[relation] = f"replicated (small: {size} rows)"
        else:
            reasons[relation] = "replicated (support relation read by loop plans)"

    spec = PartitionSpec(
        shards=shards,
        columns=columns,
        replicated=support,
        aligned=aligned is not None,
    )
    return StratumPartitioning(spec=spec, support=support, reasons=reasons)


#: Relations at or below this many rows are annotated as "small" in the
#: placement diagnostics; replication is the obviously right call for them.
SMALL_RELATION_ROWS = 64

"""Per-shard storage: N StorageManagers behind one global-view facade.

:class:`ShardedStorage` owns one :class:`~repro.relational.storage.StorageManager`
per shard, each declaring the same relations (and the same hash indexes) as
the global storage it was built from.  The evaluator decides, per relation,
how rows are placed:

* :meth:`partition_derived` / :meth:`scatter_delta` — split by the
  :class:`~repro.parallel.partition.PartitionSpec` owner hash (aligned
  strategy, and delta ownership under the replicated strategy);
* :meth:`replicate_derived` — mirror to every shard (support relations, and
  the derived database under the replicated strategy).

Reads present the *global view*: :meth:`tuples` and :meth:`cardinality`
union the shard fragments of partitioned relations and read one replica of
replicated ones.  Merging shard results back into the global
``StorageManager`` is the evaluator's job — it pulls ``collect_derived``
batches through the worker pool (fork children own their shard state, so
the coordinator cannot read its worker objects directly) and folds them in
with :meth:`StorageManager.absorb_rows`; the target relations are
set-backed, so the merged database is independent of worker scheduling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.parallel.partition import PartitionSpec, stable_hash
from repro.relational.columnar import ColumnarBlock
from repro.relational.relation import Row
from repro.relational.storage import DatabaseKind, StorageManager


class ShardedStorage:
    """One StorageManager per shard plus placement-aware data movement."""

    def __init__(
        self,
        spec: PartitionSpec,
        template: StorageManager,
        relations: Optional[Iterable[str]] = None,
    ) -> None:
        self.spec = spec
        self.relation_names_list = sorted(
            set(relations) if relations is not None else template.relation_names()
        )
        self._arities = {
            name: template.arity_of(name) for name in self.relation_names_list
        }
        self.shards: List[StorageManager] = []
        for _ in range(spec.shards):
            # Every shard shares the template's symbol table by reference:
            # encoded rows move between shards id-compatible, threads intern
            # through the table's lock, fork children inherit a consistent
            # copy, and the serial pool simply shares the object.
            shard = StorageManager(symbols=template.symbols)
            for name in self.relation_names_list:
                shard.declare(name, self._arities[name])
                for column in template.registered_indexes(name):
                    shard.register_index(name, column)
            self.shards.append(shard)

    # -- StorageManager-style read API (the global view) ------------------------

    def shard(self, index: int) -> StorageManager:
        return self.shards[index]

    def relation_names(self) -> List[str]:
        return list(self.relation_names_list)

    def arity_of(self, name: str) -> int:
        return self._arities[name]

    def tuples(self, name: str, kind: DatabaseKind = DatabaseKind.DERIVED) -> Set[Row]:
        """The global row set of ``name``: fragment union or one replica."""
        if self.spec.is_partitioned(name) or kind != DatabaseKind.DERIVED:
            merged: Set[Row] = set()
            for shard in self.shards:
                merged |= shard.tuples(name, kind)
            return merged
        return self.shards[0].tuples(name, kind)

    def cardinality(self, name: str, kind: DatabaseKind = DatabaseKind.DERIVED) -> int:
        return len(self.tuples(name, kind))

    def cardinalities(self, kind: DatabaseKind = DatabaseKind.DERIVED) -> Dict[str, int]:
        return {name: self.cardinality(name, kind) for name in self.relation_names_list}

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-shard derived cardinalities (balance/debugging aid)."""
        return {
            name: {
                f"shard{i}": shard.cardinality(name)
                for i, shard in enumerate(self.shards)
            }
            for name in self.relation_names_list
        }

    # -- data placement ----------------------------------------------------------

    def replicate_derived(self, source: StorageManager, name: str) -> int:
        """Copy the Derived rows of ``name`` to every shard; returns the count."""
        rows = source.relation(name).rows()
        for shard in self.shards:
            shard.absorb_rows(name, rows)
        return len(rows)

    def share_derived(self, source: StorageManager, name: str) -> int:
        """Mirror ``name`` into every shard *by reference*, not by copy.

        For relations the loop provably never writes — support relations are
        read purely as non-delta inputs — every shard can read the source's
        own :class:`Relation` object: thread workers share it safely (reads
        only), fork workers get copy-on-write pages, and the serial pool
        saves the copy outright.  Mutable relations must use
        :meth:`replicate_derived` instead.
        """
        relation = source.relation(name)
        for shard in self.shards:
            shard.adopt_derived(name, relation)
        return len(relation)

    def partition_derived(self, source: StorageManager, name: str) -> int:
        """Split the Derived rows of ``name`` across owners; returns the count."""
        buckets = self.spec.split(name, source.relation(name).rows())
        for shard, bucket in zip(self.shards, buckets):
            shard.absorb_rows(name, bucket)
        return sum(len(bucket) for bucket in buckets)

    def scatter_delta(self, name: str,
                      rows: "Iterable[Sequence[Any]] | ColumnarBlock") -> int:
        """Place delta rows into their owners' Delta-Known databases.

        Accepts either a plain row iterable or a :class:`ColumnarBlock` —
        the vectorized executor's interchange format — in which case the
        owner split hashes the partition column columnar-wise
        (:meth:`ColumnarBlock.partition` with the partitioner's
        ``stable_hash``, so bucket assignment is identical to
        :meth:`PartitionSpec.split`).

        The rows are assumed to be present in the owning shard's Derived
        database already (standard semi-naive invariant: the delta is a
        subset of Derived); only the delta copy is written here.
        """
        if isinstance(rows, ColumnarBlock):
            buckets = rows.partition(
                self.spec.partition_column(name), self.spec.shards,
                hash_fn=stable_hash,
            )
        else:
            buckets = self.spec.split(name, rows)
        for shard, bucket in zip(self.shards, buckets):
            shard.force_delta(name, bucket)
        return sum(len(bucket) for bucket in buckets)

    def broadcast_derived(self, name: str,
                          rows: "Iterable[Sequence[Any]] | ColumnarBlock") -> int:
        """Insert rows into every shard's Derived replica (replicated strategy)."""
        if isinstance(rows, ColumnarBlock):
            rows = rows.rows()
        else:
            rows = [tuple(row) for row in rows]
        for shard in self.shards:
            shard.absorb_rows(name, rows)
        return len(rows)

    def retract_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Remove rows from every shard holding them (keeps replicas in sync).

        Mirrors :meth:`StorageManager.retract_rows` across the pool so an
        incremental session's delete-and-rederive pass can maintain its
        persistent shard replicas instead of rebuilding them per batch.
        Returns the total number of Derived removals across shards.
        """
        rows = [tuple(row) for row in rows]
        removed = 0
        for shard in self.shards:
            removed += shard.retract_rows(name, rows)
        return removed

    def clear_deltas(self, names: Optional[Iterable[str]] = None) -> None:
        names = list(names) if names is not None else self.relation_names_list
        for shard in self.shards:
            shard.clear_deltas(names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedStorage(shards={self.spec.shards}, "
            f"relations={len(self.relation_names_list)}, aligned={self.spec.aligned})"
        )

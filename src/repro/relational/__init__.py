"""The physical relational layer (paper §V-D).

Carac's execution layer sits on a pluggable "relational layer" that stores
input and intermediate relations, maintains the Derived / Delta-Known /
Delta-New databases, and provides the primitive relational operators the
generated sub-queries are built from: select, project, join, union, plus the
relation-management operations swap, clear and diff.

This package is that layer for the reproduction.  Everything above it (IR,
JIT, backends) manipulates relations only through these classes.
"""

from repro.relational.relation import HashIndex, Relation
from repro.relational.storage import DatabaseKind, StorageManager
from repro.relational.columnar import ColumnarBlock, choose_build_strategy
from repro.relational.operators import (
    AtomSource,
    JoinPlan,
    PullSubqueryEvaluator,
    PushSubqueryEvaluator,
    SubqueryEvaluator,
    VectorizedSubqueryEvaluator,
    evaluate_subquery,
)
from repro.relational.statistics import (
    CardinalitySnapshot,
    SelectivityModel,
    StatisticsCollector,
)

__all__ = [
    "AtomSource",
    "CardinalitySnapshot",
    "ColumnarBlock",
    "DatabaseKind",
    "HashIndex",
    "JoinPlan",
    "PullSubqueryEvaluator",
    "PushSubqueryEvaluator",
    "Relation",
    "SelectivityModel",
    "StatisticsCollector",
    "StorageManager",
    "SubqueryEvaluator",
    "VectorizedSubqueryEvaluator",
    "choose_build_strategy",
    "evaluate_subquery",
]

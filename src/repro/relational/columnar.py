"""Columnar batches: the interchange format of the vectorized executor.

A :class:`ColumnarBlock` is an ordered batch of variable bindings — the
vectorized analogue of the one-`dict`-per-tuple bindings the pushdown
evaluator threads through its recursion.  One block holds the bindings of
*every* intermediate tuple of a sub-query at once: one named column per
bound variable, all columns the same length.

Blocks deliberately keep **two** physical layouts and convert lazily:

* **column-major** (``columns``): per-column tuples, the shape the batch
  operators' key extraction and the storage layer's scatter/partition
  helpers want;
* **row-major** (``rows()``): a list of plain value tuples, the shape the
  batch hash-join emits (one C-level tuple concatenation per output row).

Both conversions are single ``zip(*...)`` calls, so a block that is built
row-major by one operator and read column-major by the next pays one
C-level transpose instead of a Python-level loop.  This file also hosts the
C-level ``dict`` hash build/probe primitives the batch join is made of;
the operators themselves (batch hash-join, batch negation) live in
:mod:`repro.relational.operators` next to the tuple-at-a-time evaluators
they replace.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.terms import Variable
from repro.relational.relation import Relation, Row


def choose_build_strategy(distinct_keys: int, relation_rows: int,
                          indexed: bool) -> str:
    """How the batch hash-join obtains its probe table for one atom.

    ``"index"`` — reuse the relation's existing per-column :class:`HashIndex`
    and materialise buckets only for the probe side's *distinct* key values;
    the win whenever the probe side is narrower than the stored relation
    (the delta-driven joins of every semi-naive iteration).

    ``"build"`` — one pass over the (constant-filtered) relation rows into a
    fresh ``dict``; the fallback when no index covers the join column or the
    probe side is as wide as the relation itself.
    """
    if indexed and distinct_keys < relation_rows:
        return "index"
    return "build"


class ColumnarBlock:
    """An ordered batch of bindings: one column per variable, equal lengths."""

    __slots__ = ("variables", "_slots", "_columns", "_column_cache", "_rows", "_length")

    def __init__(
        self,
        variables: Sequence[Variable],
        columns: Optional[Sequence[Sequence[Any]]] = None,
        rows: Optional[List[Row]] = None,
        length: Optional[int] = None,
    ) -> None:
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self._slots: Dict[Variable, int] = {
            variable: i for i, variable in enumerate(self.variables)
        }
        self._columns: Optional[Tuple[Tuple[Any, ...], ...]] = None
        self._column_cache: Dict[int, Tuple[Any, ...]] = {}
        self._rows: Optional[List[Row]] = rows
        if columns is not None:
            self._columns = tuple(tuple(column) for column in columns)
            if len(self._columns) != len(self.variables):
                raise ValueError(
                    f"{len(self.variables)} variables but {len(self._columns)} columns"
                )
            lengths = {len(column) for column in self._columns}
            if len(lengths) > 1:
                raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
            self._length = next(iter(lengths)) if lengths else (length or 0)
        elif rows is not None:
            self._length = len(rows)
        else:
            self._length = length or 0

    # -- constructors ------------------------------------------------------------

    @classmethod
    def unit(cls) -> "ColumnarBlock":
        """The join identity: no columns, exactly one (empty) row."""
        return cls((), rows=[()])

    @classmethod
    def empty(cls, variables: Sequence[Variable] = ()) -> "ColumnarBlock":
        return cls(variables, rows=[])

    @classmethod
    def from_rows(cls, variables: Sequence[Variable],
                  rows: Iterable[Sequence[Any]]) -> "ColumnarBlock":
        return cls(variables, rows=[tuple(row) for row in rows])

    @classmethod
    def from_columns(cls, variables: Sequence[Variable],
                     columns: Sequence[Sequence[Any]]) -> "ColumnarBlock":
        return cls(variables, columns=columns)

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarBlock":
        """A block over a whole relation, with positional column variables.

        The bridge the storage-layer consumers (shard scatter, delta
        propagation) use to move row batches around in block form.
        """
        variables = tuple(Variable(f"c{i}") for i in range(relation.arity))
        return cls(variables, rows=list(relation.rows()))

    @classmethod
    def from_packed(cls, variables: Sequence[Variable],
                    columns: Sequence["array"]) -> "ColumnarBlock":
        """A block over pre-packed ``array('q')`` integer columns.

        The constructor counterpart of :meth:`packed_column`: under symbol
        interning every cell is a dense int, so a column packs into a
        machine-word array — 8 bytes per cell instead of a pointer to a
        boxed object.  The arrays are adopted as the block's column-major
        layout directly (they support the same iteration/indexing the tuple
        columns do); row-major views materialise lazily as usual.  Engine
        blocks are built row-major today and pack key columns on demand
        (:meth:`partition`); this entry point is for consumers that already
        hold packed columns, e.g. a compact off-process interchange.
        """
        packed = tuple(
            column if isinstance(column, array) else array("q", column)
            for column in columns
        )
        block = cls(variables, length=len(packed[0]) if packed else 0)
        if packed:
            lengths = {len(column) for column in packed}
            if len(lengths) > 1:
                raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        if len(packed) != len(block.variables):
            raise ValueError(
                f"{len(block.variables)} variables but {len(packed)} columns"
            )
        block._columns = packed  # type: ignore[assignment]
        return block

    # -- shape -------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def has(self, variable: Variable) -> bool:
        return variable in self._slots

    def slot(self, variable: Variable) -> Optional[int]:
        """The column index of ``variable``, or None when unbound."""
        return self._slots.get(variable)

    # -- layouts (lazily materialised, each computed at most once) ----------------

    @property
    def columns(self) -> Tuple[Tuple[Any, ...], ...]:
        """Column-major view: per-column value tuples (one C-level transpose)."""
        if self._columns is None:
            if self._length == 0 or not self.variables:
                self._columns = ((),) * len(self.variables)
            else:
                assert self._rows is not None
                self._columns = tuple(zip(*self._rows))
        return self._columns

    def column(self, variable: Variable) -> Tuple[Any, ...]:
        return self.column_at(self._slots[variable])

    def column_at(self, slot: int) -> Tuple[Any, ...]:
        """One column's values, without transposing the whole block.

        Row-major blocks extract (and cache) single columns on demand — the
        batch join usually needs only its key column, so paying for a full
        transpose per join would waste most of it.
        """
        if self._columns is not None:
            return self._columns[slot]
        cached = self._column_cache.get(slot)
        if cached is None:
            assert self._rows is not None
            cached = tuple(map(itemgetter(slot), self._rows))
            self._column_cache[slot] = cached
        return cached

    def rows(self) -> List[Row]:
        """Row-major view: a list of value tuples (one C-level transpose)."""
        if self._rows is None:
            if self._length == 0:
                self._rows = []
            elif not self.variables:
                self._rows = [()] * self._length
            else:
                self._rows = list(zip(*self._columns))  # type: ignore[arg-type]
        return self._rows

    # -- derived blocks ------------------------------------------------------------

    def replace_rows(self, rows: List[Row]) -> "ColumnarBlock":
        """A block with the same variables over a filtered/extended row list."""
        return ColumnarBlock(self.variables, rows=rows)

    def to_columns(self) -> Dict[Variable, Tuple[Any, ...]]:
        """Export: variable -> column tuple (consumed by storage plumbing)."""
        return dict(zip(self.variables, self.columns))

    def packed_column(self, slot: int) -> "array":
        """One column as a machine-word ``array('q')``.

        Only valid when every cell is an int — always true for
        dictionary-encoded blocks, where cells are dense symbol ids.  Raises
        ``TypeError``/``OverflowError`` otherwise (callers fall back to the
        boxed tuple layout).
        """
        column = self.column_at(slot)
        return column if isinstance(column, array) else array("q", column)

    def partition(self, slot: int, shards: int, hash_fn=hash) -> List[List[Row]]:
        """Split rows into per-shard buckets by hash of one column.

        ``hash_fn`` is injected by the caller (the parallel layer passes its
        ``stable_hash``) so bucket assignment matches
        :meth:`repro.parallel.partition.PartitionSpec.split` exactly — blocks
        flow straight into the scatter step.

        Dictionary-encoded fast path: when the key column is all ints (one
        C-level ``array('q')`` probe) and ``hash_fn`` agrees with the
        builtin hash on ints (``hash`` itself, or marked
        ``int_compatible`` like the partitioner's ``stable_hash``), the
        owner split runs over ``map(hash, column)`` — no per-value Python
        dispatch into the hash function.
        """
        buckets: List[List[Row]] = [[] for _ in range(shards)]
        column = self.column_at(slot)
        rows = self.rows()
        if hash_fn is hash or getattr(hash_fn, "int_compatible", False):
            try:
                packed = self.packed_column(slot)
            except (TypeError, OverflowError, ValueError):
                pass
            else:
                for value, row in zip(map(hash, packed), rows):
                    buckets[value % shards].append(row)
                return buckets
        for value, row in zip(column, rows):
            buckets[hash_fn(value) % shards].append(row)
        return buckets

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ", ".join(v.name for v in self.variables)
        return f"ColumnarBlock([{names}], rows={self._length})"


def build_hash_table(
    rows: Iterable[Row],
    key_positions: Sequence[int],
    value_positions: Sequence[int],
) -> Dict[Any, List[Tuple[Any, ...]]]:
    """One-pass dict build over relation rows: join key -> payload tuples.

    Keys are scalars for single-column joins (no tuple boxing on either the
    build or the probe side) and position-ordered tuples otherwise; payloads
    are the values of the caller's ``value_positions`` (the atom's fresh
    variables).  Rows must already satisfy any constant/duplicate-variable
    constraints — callers pre-filter (usually via ``Relation.probe``).
    """
    table: Dict[Any, List[Tuple[Any, ...]]] = {}
    if len(key_positions) == 1:
        key_position = key_positions[0]
        for row in rows:
            payload = tuple(row[p] for p in value_positions)
            table.setdefault(row[key_position], []).append(payload)
    else:
        for row in rows:
            key = tuple(row[p] for p in key_positions)
            payload = tuple(row[p] for p in value_positions)
            table.setdefault(key, []).append(payload)
    return table


def probe_hash_table(
    table: Dict[Any, List[Tuple[Any, ...]]],
    keys: Sequence[Any],
    bases: Optional[Sequence[Row]],
) -> List[Row]:
    """Probe ``table`` with one key per input row; emit concatenated rows.

    ``bases`` carries the input rows' kept columns (None when nothing is
    kept: every output row is just the payload).  The per-match work is one
    C-level tuple concatenation and one list append.
    """
    get = table.get
    if bases is None:
        out: List[Row] = []
        for key in keys:
            matches = get(key)
            if matches:
                out.extend(matches)
        return out
    return [
        base + payload
        for base, matches in zip(bases, map(get, keys))
        if matches
        for payload in matches
    ]

"""Physical evaluation of conjunctive sub-queries (σπ⋈ over one atom order).

A *sub-query* is one member of the union generated for a rule by semi-naive
evaluation: an ordered sequence of body literals, each relational atom tagged
with the database copy it reads (Derived or Delta-Known), plus the head
projection.  This module provides two interchangeable implementations of the
same physical plan — a pull-based (iterator/generator) evaluator and a
push-based (callback) evaluator — mirroring the two engine styles Carac has
been integrated with (§V-D).  Both perform left-deep index-nested-loop joins
with binding propagation; which is exactly the plan shape the join-order
optimizer reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from operator import itemgetter
from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison, Literal, comparison_operator
from repro.datalog.terms import Aggregate, BinaryExpression, Constant, Term, Variable, binary_operator
from repro.relational.columnar import (
    ColumnarBlock,
    build_hash_table,
    choose_build_strategy,
    probe_hash_table,
)
from repro.relational.relation import Relation, Row
from repro.relational.storage import DatabaseKind, StorageManager
from repro.relational.symbols import IDENTITY
from repro.resilience.limits import NOOP_GOVERNOR
from repro.telemetry.spans import NOOP_TRACER

Bindings = Dict[Variable, Any]

#: The two interchangeable physical executors for one :class:`JoinPlan`:
#: ``"pushdown"`` is the tuple-at-a-time binding recursion (push/pull styles),
#: ``"vectorized"`` the batch executor over :class:`ColumnarBlock`s.
EXECUTORS = ("pushdown", "vectorized")


def _operator_span_name(literal: Literal) -> str:
    """The span name of one vectorized body position."""
    if isinstance(literal, Atom):
        return "op:negation" if literal.negated else "op:join"
    if isinstance(literal, Comparison):
        return "op:filter"
    return "op:assign"


@dataclass(frozen=True)
class AtomSource:
    """Pairs one body literal with the database copy it reads.

    ``kind`` is None for built-in literals (comparisons / assignments), which
    read no relation at all; negated atoms always read the Derived database of
    a lower stratum, which is complete by the time they run.
    """

    literal: Literal
    kind: Optional[DatabaseKind] = None

    def is_delta(self) -> bool:
        return self.kind == DatabaseKind.DELTA_KNOWN


@dataclass
class JoinPlan:
    """An ordered physical plan for one sub-query.

    The order of ``sources`` *is* the join order; re-optimizing a sub-query
    means producing a new JoinPlan with the same literals in a different
    order (see :mod:`repro.core.join_order`).
    """

    head_relation: str
    head_terms: Tuple[Term, ...]
    sources: Tuple[AtomSource, ...]
    rule_name: str = ""

    def literals(self) -> Tuple[Literal, ...]:
        return tuple(source.literal for source in self.sources)

    def positive_atom_sources(self) -> Tuple[AtomSource, ...]:
        return tuple(
            s for s in self.sources
            if isinstance(s.literal, Atom) and not s.literal.negated
        )

    def delta_relation(self) -> Optional[str]:
        """The relation read from the delta database, if any."""
        for source in self.sources:
            if source.is_delta() and isinstance(source.literal, Atom):
                return source.literal.relation
        return None

    def reorder(self, permutation: Sequence[int]) -> "JoinPlan":
        """Return the same plan with sources permuted."""
        if sorted(permutation) != list(range(len(self.sources))):
            raise ValueError(f"{permutation!r} is not a permutation of the plan sources")
        return JoinPlan(
            head_relation=self.head_relation,
            head_terms=self.head_terms,
            sources=tuple(self.sources[i] for i in permutation),
            rule_name=self.rule_name,
        )

    def describe(self) -> str:
        """One-line human-readable description (used by explain/printer)."""
        parts = []
        for source in self.sources:
            literal = source.literal
            if isinstance(literal, Atom):
                marker = "δ" if source.is_delta() else "*"
                prefix = "!" if literal.negated else ""
                parts.append(f"{prefix}{literal.relation}{marker}")
            else:
                parts.append(repr(literal))
        return f"{self.head_relation} ⟵ " + " ⋈ ".join(parts)


def match_atom(atom: Atom, row: Row, bindings: Bindings) -> Optional[Bindings]:
    """Try to unify ``row`` with ``atom`` under ``bindings``.

    Returns the extended bindings on success, None on mismatch.  Handles
    constants and repeated variables within the atom.
    """
    new_bindings: Optional[Bindings] = None
    for position, term in enumerate(atom.terms):
        value = row[position]
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif isinstance(term, Variable):
            bound = bindings.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if new_bindings is not None and term in new_bindings:
                    if new_bindings[term] != value:
                        return None
                    continue
                if new_bindings is None:
                    new_bindings = dict(bindings)
                new_bindings[term] = value
            elif bound != value:
                return None
        else:  # pragma: no cover - expressions cannot appear in body atoms
            raise TypeError(f"unexpected term {term!r} in body atom")
    return new_bindings if new_bindings is not None else dict(bindings)


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<unbound>"


_UNBOUND = _Unbound()


def bound_constraints(atom: Atom, bindings: Bindings) -> Dict[int, Any]:
    """Column constraints derivable from constants and already-bound variables."""
    constraints: Dict[int, Any] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constraints[position] = term.value
        elif isinstance(term, Variable) and term in bindings:
            constraints[position] = bindings[term]
    return constraints


def evaluate_raw_term(term: Term, bindings: Bindings, symbols=IDENTITY) -> Any:
    """Evaluate ``term`` in the *raw* value domain.

    Built-in literals (comparisons, arithmetic) are meaningless over symbol
    ids, so their operands cross back into the raw domain here: variable
    bindings and plan constants are resolved through the symbol table (one
    list subscript each) and the expression is computed over real values.
    Under the identity codec this is exactly ``term.substitute(bindings)``.
    """
    if isinstance(term, Variable):
        if term not in bindings:
            raise KeyError(f"unbound variable {term.name!r}")
        return symbols.resolve(bindings[term])
    if isinstance(term, Constant):
        return symbols.resolve(term.value)
    if isinstance(term, BinaryExpression):
        func = binary_operator(term.op)
        return func(
            evaluate_raw_term(term.left, bindings, symbols),
            evaluate_raw_term(term.right, bindings, symbols),
        )
    if isinstance(term, Aggregate):
        return evaluate_raw_term(term.target, bindings, symbols)
    raise TypeError(f"cannot evaluate term {term!r}")  # pragma: no cover


def evaluate_comparison(comparison: Comparison, bindings: Bindings,
                        symbols=IDENTITY) -> bool:
    """One comparison literal over (possibly encoded) bindings."""
    if symbols.identity:
        return comparison.evaluate(bindings)
    func = comparison_operator(comparison.op)
    return bool(
        func(
            evaluate_raw_term(comparison.left, bindings, symbols),
            evaluate_raw_term(comparison.right, bindings, symbols),
        )
    )


def project_head(head_terms: Sequence[Term], bindings: Bindings,
                 symbols=IDENTITY) -> Row:
    """Compute the head tuple for one complete set of bindings.

    Variables and constants stay in the storage domain (bindings and plan
    constants are already encoded); expression terms — the only place a
    head can *compute* a value — evaluate raw and re-intern the result.
    """
    values: List[Any] = []
    for term in head_terms:
        if isinstance(term, (Variable, Constant)):
            values.append(term.substitute(bindings))
        else:
            values.append(symbols.intern(evaluate_raw_term(term, bindings, symbols)))
    return tuple(values)


class PullSubqueryEvaluator:
    """Generator-based (pull) evaluation of a :class:`JoinPlan`."""

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage
        self.symbols = storage.symbols

    def bindings(self, plan: JoinPlan,
                 initial: Optional[Bindings] = None) -> Iterator[Bindings]:
        """Yield every complete binding produced by the plan.

        ``initial`` pre-binds variables before the first source runs, turning
        leading scans into indexed probes.  The incremental subsystem uses
        this for targeted re-derivation: binding a rule's head variables to
        one deleted row asks "does *this* fact still have a derivation?"
        without enumerating the rule's full output.
        """
        yield from self._recurse(plan, 0, dict(initial) if initial else {})

    def _recurse(self, plan: JoinPlan, position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(plan.sources):
            yield bindings
            return
        source = plan.sources[position]
        literal = source.literal
        if isinstance(literal, Atom):
            if literal.negated:
                yield from self._negated(plan, position, literal, bindings)
                return
            relation = self.storage.relation(literal.relation, source.kind or DatabaseKind.DERIVED)
            constraints = bound_constraints(literal, bindings)
            for row in relation.probe(constraints):
                extended = match_atom(literal, row, bindings)
                if extended is not None:
                    yield from self._recurse(plan, position + 1, extended)
            return
        if isinstance(literal, Comparison):
            if evaluate_comparison(literal, bindings, self.symbols):
                yield from self._recurse(plan, position + 1, bindings)
            return
        if isinstance(literal, Assignment):
            value = evaluate_raw_term(literal.expression, bindings, self.symbols)
            existing = bindings.get(literal.target, _UNBOUND)
            if existing is _UNBOUND:
                extended = dict(bindings)
                extended[literal.target] = self.symbols.intern(value)
                yield from self._recurse(plan, position + 1, extended)
            elif self.symbols.resolve(existing) == value:
                yield from self._recurse(plan, position + 1, bindings)
            return
        raise TypeError(f"unsupported literal {literal!r}")  # pragma: no cover

    def _negated(self, plan: JoinPlan, position: int, literal: Atom,
                 bindings: Bindings) -> Iterator[Bindings]:
        relation = self.storage.relation(literal.relation, DatabaseKind.DERIVED)
        probe_row: List[Any] = []
        for term in literal.terms:
            if isinstance(term, Constant):
                probe_row.append(term.value)
            elif isinstance(term, Variable):
                if term not in bindings:
                    raise ValueError(
                        f"negated atom {literal!r} reached with unbound variable "
                        f"{term.name!r}; the planner must order it after its binders"
                    )
                probe_row.append(bindings[term])
            else:  # pragma: no cover
                raise TypeError(f"unexpected term {term!r} in negated atom")
        if tuple(probe_row) not in relation:
            yield from self._recurse(plan, position + 1, bindings)

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        """Evaluate the plan and project the head (no aggregation here)."""
        results: Set[Row] = set()
        symbols = self.symbols
        for bindings in self.bindings(plan):
            results.add(project_head(plan.head_terms, bindings, symbols))
        return results


class PushSubqueryEvaluator:
    """Callback-based (push) evaluation of a :class:`JoinPlan`.

    Produces exactly the same results as the pull evaluator; the difference
    is purely the control-flow style: tuples are pushed into a consumer
    callback as soon as they are produced, which is how Carac's default
    push-based storage engine works.
    """

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage
        self.symbols = storage.symbols

    def evaluate_into(self, plan: JoinPlan, consumer: Callable[[Row], None]) -> int:
        """Push every head tuple into ``consumer``; returns the tuple count."""
        count = 0

        symbols = self.symbols

        def emit(bindings: Bindings) -> None:
            nonlocal count
            consumer(project_head(plan.head_terms, bindings, symbols))
            count += 1

        self._push(plan, 0, {}, emit)
        return count

    def _push(self, plan: JoinPlan, position: int, bindings: Bindings,
              emit: Callable[[Bindings], None]) -> None:
        if position == len(plan.sources):
            emit(bindings)
            return
        source = plan.sources[position]
        literal = source.literal
        if isinstance(literal, Atom):
            if literal.negated:
                relation = self.storage.relation(literal.relation, DatabaseKind.DERIVED)
                probe = tuple(
                    term.value if isinstance(term, Constant) else bindings[term]
                    for term in literal.terms
                )
                if probe not in relation:
                    self._push(plan, position + 1, bindings, emit)
                return
            relation = self.storage.relation(literal.relation, source.kind or DatabaseKind.DERIVED)
            constraints = bound_constraints(literal, bindings)
            for row in relation.probe(constraints):
                extended = match_atom(literal, row, bindings)
                if extended is not None:
                    self._push(plan, position + 1, extended, emit)
            return
        if isinstance(literal, Comparison):
            if evaluate_comparison(literal, bindings, self.symbols):
                self._push(plan, position + 1, bindings, emit)
            return
        if isinstance(literal, Assignment):
            value = evaluate_raw_term(literal.expression, bindings, self.symbols)
            existing = bindings.get(literal.target, _UNBOUND)
            if existing is _UNBOUND:
                extended = dict(bindings)
                extended[literal.target] = self.symbols.intern(value)
                self._push(plan, position + 1, extended, emit)
            elif self.symbols.resolve(existing) == value:
                self._push(plan, position + 1, bindings, emit)
            return
        raise TypeError(f"unsupported literal {literal!r}")  # pragma: no cover

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        results: Set[Row] = set()
        self.evaluate_into(plan, results.add)
        return results


# ---------------------------------------------------------------------------
# The vectorized (batch) executor
# ---------------------------------------------------------------------------


def _compile_term(term: Term, block: ColumnarBlock,
                  symbols=IDENTITY) -> Callable[[Row], Any]:
    """Compile one term into a storage-domain accessor over ``block``.

    Variables and constants already live in the storage domain (encoded
    under interning); expression terms compute raw and re-intern — they are
    the only accessors that touch the symbol table per row.
    """
    if isinstance(term, Variable):
        slot = block.slot(term)
        if slot is None:
            raise KeyError(f"unbound variable {term.name!r}")
        return itemgetter(slot)
    if isinstance(term, Constant):
        value = term.value
        return lambda row: value
    if isinstance(term, BinaryExpression):
        raw = _compile_raw_term(term, block, symbols)
        if symbols.identity:
            return raw
        intern = symbols.intern
        return lambda row: intern(raw(row))
    if isinstance(term, Aggregate):
        # Mirrors Aggregate.substitute: at tuple level, project the target.
        return _compile_term(term.target, block, symbols)
    raise TypeError(f"cannot compile term {term!r}")  # pragma: no cover


def _compile_raw_term(term: Term, block: ColumnarBlock,
                      symbols=IDENTITY) -> Callable[[Row], Any]:
    """Compile one term into a *raw-domain* accessor (builtin operands)."""
    if isinstance(term, Variable):
        slot = block.slot(term)
        if slot is None:
            raise KeyError(f"unbound variable {term.name!r}")
        if symbols.identity:
            return itemgetter(slot)
        resolve = symbols.resolve
        get = itemgetter(slot)
        return lambda row: resolve(get(row))
    if isinstance(term, Constant):
        value = symbols.resolve(term.value)
        return lambda row: value
    if isinstance(term, BinaryExpression):
        func = binary_operator(term.op)
        left = _compile_raw_term(term.left, block, symbols)
        right = _compile_raw_term(term.right, block, symbols)
        return lambda row: func(left(row), right(row))
    if isinstance(term, Aggregate):
        return _compile_raw_term(term.target, block, symbols)
    raise TypeError(f"cannot compile term {term!r}")  # pragma: no cover


def _filtered_relation_rows(
    relation: Relation,
    constants: Dict[int, Any],
    dup_checks: Sequence[Tuple[int, int]],
) -> Iterable[Row]:
    """Relation rows satisfying the atom's constant/repeated-variable checks."""
    rows: Iterable[Row] = relation.probe(constants) if constants else relation.rows()
    if dup_checks:
        rows = (r for r in rows if all(r[p] == r[q] for p, q in dup_checks))
    return rows


def _kept_projection(block: ColumnarBlock,
                     needed: FrozenSet[Variable]) -> Tuple[Tuple[Variable, ...], Optional[List[Row]]]:
    """The block's rows restricted to the still-needed variables.

    Returns ``(kept_variables, bases)`` where ``bases`` is None when no
    column survives (output rows are then pure join payloads).  Dropping
    dead columns here is what keeps intermediate tuples narrow as the join
    pipeline advances — the batch analogue of projection pushdown.
    """
    kept = [i for i, v in enumerate(block.variables) if v in needed]
    variables = tuple(block.variables[i] for i in kept)
    if not kept:
        # No column survives: under set semantics the rows are now
        # indistinguishable, so multiplicity carries no information.
        return variables, None
    if len(kept) == len(block.variables):
        return variables, block.rows()
    if len(kept) == 1:
        return variables, list(zip(block.column_at(kept[0])))
    return variables, list(map(itemgetter(*kept), block.rows()))


def _restrict_block(block: ColumnarBlock,
                    needed: FrozenSet[Variable]) -> ColumnarBlock:
    """The block itself, minus columns no later literal (or the head) reads."""
    variables, bases = _kept_projection(block, needed)
    if len(variables) == len(block.variables):
        return block
    if bases is None:
        # Zero-column blocks clamp to one row: duplicates of () are
        # semantically inert and would only multiply later cartesians.
        return ColumnarBlock(variables, rows=[()] if len(block) else [])
    return ColumnarBlock(variables, rows=bases)


def batch_hash_join(
    block: ColumnarBlock,
    atom: Atom,
    relation: Relation,
    needed: FrozenSet[Variable],
    stats: Optional[Dict[str, int]] = None,
) -> ColumnarBlock:
    """Join an entire block against ``relation`` in one batch.

    The batch counterpart of the pushdown evaluator's per-tuple
    probe/extend step: analyse the atom once (constants, join keys, fresh
    variables, repeated variables), build or reuse a hash table over the
    relation side (:func:`~repro.relational.columnar.choose_build_strategy`
    decides between a fresh dict build and probing the relation's existing
    per-column index), then emit every extended row with one C-level tuple
    concatenation per match.
    """
    # -- atom layout ----------------------------------------------------------
    key_positions: List[int] = []
    key_slots: List[int] = []
    constants: Dict[int, Any] = {}
    first_seen: Dict[Variable, int] = {}
    dup_checks: List[Tuple[int, int]] = []
    fresh_positions: List[int] = []
    fresh_variables: List[Variable] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constants[position] = term.value
        elif isinstance(term, Variable):
            slot = block.slot(term)
            if slot is not None:
                key_positions.append(position)
                key_slots.append(slot)
            elif term in first_seen:
                dup_checks.append((position, first_seen[term]))
            else:
                first_seen[term] = position
                if term in needed:
                    fresh_positions.append(position)
                    fresh_variables.append(term)
        else:  # pragma: no cover - expressions cannot appear in body atoms
            raise TypeError(f"unexpected term {term!r} in body atom")

    kept_variables, bases = _kept_projection(block, needed)
    out_variables = kept_variables + tuple(fresh_variables)
    if not relation:
        return ColumnarBlock.empty(out_variables)

    # -- no join key: scan / existence-filter / cartesian ----------------------
    if not key_positions:
        if not fresh_positions:
            matched = next(iter(_filtered_relation_rows(relation, constants, dup_checks)), None)
            if matched is None:
                return ColumnarBlock.empty(out_variables)
            return _restrict_block(block, needed)
        source = _filtered_relation_rows(relation, constants, dup_checks)
        if not constants and not dup_checks and fresh_positions == list(range(relation.arity)):
            payloads: List[Row] = list(source)  # rows already match position order
        elif len(fresh_positions) == 1:
            position = fresh_positions[0]
            payloads = [(r[position],) for r in source]
        else:
            payloads = list(map(itemgetter(*fresh_positions), source))
        if bases is None:
            # All input rows are indistinguishable (no kept columns), so one
            # copy of the payloads is the whole answer under set semantics.
            out_rows = payloads
        else:
            out_rows = [base + payload for base in bases for payload in payloads]
        return ColumnarBlock(out_variables, rows=out_rows)

    # -- keyed: hash build (or index probe) + batch probe ----------------------
    single_key = len(key_positions) == 1
    if single_key:
        keys: Sequence[Any] = block.column_at(key_slots[0])
    else:
        keys = list(zip(*(block.column_at(s) for s in key_slots)))
    distinct = set(keys)
    buckets = None
    if single_key:
        key_position = key_positions[0]
        buckets = relation.index_buckets(key_position)
        if (
            buckets is None
            and relation.has_index(key_position)
            and len(distinct) < len(relation)
        ):
            # A lazily-registered index worth probing: materialise it now.
            # One build pass costs the same as an ad-hoc table, but the
            # index persists across batches (delta copies demote it again on
            # clear, so a per-iteration buffer never accrues maintenance).
            index = relation.build_index(key_position)
            assert index is not None
            buckets = index.buckets()
    strategy = choose_build_strategy(len(distinct), len(relation), buckets is not None)
    if stats is not None:
        stats[strategy] = stats.get(strategy, 0) + 1
    if strategy == "index":
        assert buckets is not None  # strategy "index" implies the index exists
        bucket_of = buckets.get
        table: Dict[Any, List[Tuple[Any, ...]]] = {}
        if not constants and not dup_checks and len(fresh_positions) == 1:
            # The bread-and-butter shape (e.g. pathΔ(x,y) ⋈ edge(y,z)):
            # per distinct key, one bucket lookup and one list comprehension.
            fresh_position = fresh_positions[0]
            for value in distinct:
                bucket = bucket_of(value)
                if bucket:
                    table[value] = [(r[fresh_position],) for r in bucket]
        else:
            for value in distinct:
                bucket = bucket_of(value)
                if not bucket:
                    continue
                payloads = []
                for r in bucket:
                    if constants and any(r[p] != c for p, c in constants.items()):
                        continue
                    if dup_checks and any(r[p] != r[q] for p, q in dup_checks):
                        continue
                    payloads.append(tuple(r[p] for p in fresh_positions))
                if payloads:
                    table[value] = payloads
    else:
        table = build_hash_table(
            _filtered_relation_rows(relation, constants, dup_checks),
            key_positions,
            fresh_positions,
        )
    return ColumnarBlock(out_variables, rows=probe_hash_table(table, keys, bases))


def batch_negation(block: ColumnarBlock, atom: Atom, relation: Relation) -> ColumnarBlock:
    """Anti-join an entire block against ``relation`` in one batch.

    Probe tuples for every block row are assembled column-wise (one C-level
    ``zip`` across columns and constant repeats), then tested against the
    relation's row set directly — no per-row bindings dictionaries.
    """
    count = len(block)
    sequences: List[Iterable[Any]] = []
    for term in atom.terms:
        if isinstance(term, Constant):
            sequences.append(repeat(term.value, count))
        elif isinstance(term, Variable):
            slot = block.slot(term)
            if slot is None:
                raise ValueError(
                    f"negated atom {atom!r} reached with unbound variable "
                    f"{term.name!r}; the planner must order it after its binders"
                )
            sequences.append(block.column_at(slot))
        else:  # pragma: no cover
            raise TypeError(f"unexpected term {term!r} in negated atom")
    contained = relation.rows()
    if not contained:
        return block
    if not sequences:  # zero-arity atom: all-or-nothing
        return block.replace_rows([]) if () in contained else block
    rows = block.rows()
    kept = [
        row for probe, row in zip(zip(*sequences), rows) if probe not in contained
    ]
    if len(kept) == count:
        return block
    return block.replace_rows(kept)


def batch_comparison(block: ColumnarBlock, comparison: Comparison,
                     symbols=IDENTITY) -> ColumnarBlock:
    """Filter an entire block through one comparison literal (raw domain)."""
    func = comparison_operator(comparison.op)
    left = _compile_raw_term(comparison.left, block, symbols)
    right = _compile_raw_term(comparison.right, block, symbols)
    return block.replace_rows(
        [row for row in block.rows() if func(left(row), right(row))]
    )


def batch_assignment(block: ColumnarBlock, assignment: Assignment,
                     symbols=IDENTITY) -> ColumnarBlock:
    """Extend (or equality-filter) an entire block through one assignment.

    The expression computes raw; extending the block re-interns the result
    (assignments are where a fixpoint can allocate fresh symbols).  The
    re-binding case compares in the raw domain and allocates nothing.
    """
    expression = _compile_raw_term(assignment.expression, block, symbols)
    slot = block.slot(assignment.target)
    rows = block.rows()
    if slot is not None:  # re-binding degenerates to an equality filter
        bound = _compile_raw_term(assignment.target, block, symbols)
        return block.replace_rows(
            [row for row in rows if bound(row) == expression(row)]
        )
    if symbols.identity:
        return ColumnarBlock(
            block.variables + (assignment.target,),
            rows=[row + (expression(row),) for row in rows],
        )
    intern = symbols.intern
    return ColumnarBlock(
        block.variables + (assignment.target,),
        rows=[row + (intern(expression(row)),) for row in rows],
    )


def project_block(head_terms: Sequence[Term], block: ColumnarBlock,
                  symbols=IDENTITY) -> Set[Row]:
    """Project the head over every block row at once.

    All-variable heads compile to one :func:`operator.itemgetter`, so the
    entire projection (and the de-duplicating ``set``) runs at C level.
    """
    rows = block.rows()
    if not rows:
        return set()
    slots: List[int] = []
    for term in head_terms:
        if isinstance(term, Variable):
            slot = block.slot(term)
            if slot is None:
                raise KeyError(f"unbound variable {term.name!r}")
            slots.append(slot)
        else:
            break
    else:
        if not slots:
            return {()}
        if slots == list(range(len(block.variables))):
            return set(rows)  # block rows already have the head shape
        if len(slots) == 1:
            return set(zip(block.column_at(slots[0])))
        return set(map(itemgetter(*slots), rows))
    compiled = [_compile_term(term, block, symbols) for term in head_terms]
    return {tuple(fn(row) for fn in compiled) for row in rows}


class VectorizedSubqueryEvaluator:
    """Batch (block-at-a-time) evaluation of a :class:`JoinPlan`.

    Produces exactly the same result set as the push/pull evaluators — the
    differential property suite holds it to bit-for-bit equality — but
    processes the whole intermediate result per body position instead of
    recursing per tuple.  ``stats`` counts evaluated batches and which
    build strategy each keyed join took (folded into the runtime profile by
    the executor).
    """

    def __init__(self, storage: StorageManager, tracer=NOOP_TRACER) -> None:
        self.storage = storage
        self.symbols = storage.symbols
        self.tracer = tracer
        self.stats: Dict[str, int] = {"batches": 0, "index": 0, "build": 0}

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        self.stats["batches"] += 1
        needed_after = self._needed_after(plan)
        block = ColumnarBlock.unit()
        tracer = self.tracer
        for position, source in enumerate(plan.sources):
            if not block:
                return set()
            if tracer.enabled:
                literal = source.literal
                span = tracer.span(
                    _operator_span_name(literal), ambient=False,
                    rule=plan.rule_name,
                    relation=getattr(literal, "relation", None),
                    rows_in=len(block),
                )
                try:
                    block = self._apply(source, block, needed_after[position])
                finally:
                    span.set(rows_out=len(block)).finish()
            else:
                block = self._apply(source, block, needed_after[position])
        return project_block(plan.head_terms, block, self.symbols)

    def _apply(self, source, block: "ColumnarBlock",
               needed: FrozenSet[Variable]) -> "ColumnarBlock":
        """One body position: join/negate/filter/assign over the block."""
        literal = source.literal
        if isinstance(literal, Atom):
            if literal.negated:
                relation = self.storage.relation(
                    literal.relation, DatabaseKind.DERIVED
                )
                return batch_negation(block, literal, relation)
            relation = self.storage.relation(
                literal.relation, source.kind or DatabaseKind.DERIVED
            )
            return batch_hash_join(block, literal, relation, needed, self.stats)
        if isinstance(literal, Comparison):
            return batch_comparison(block, literal, self.symbols)
        if isinstance(literal, Assignment):
            return batch_assignment(block, literal, self.symbols)
        raise TypeError(f"unsupported literal {literal!r}")  # pragma: no cover

    @staticmethod
    def _needed_after(plan: JoinPlan) -> List[FrozenSet[Variable]]:
        """Per body position: variables any later literal or the head reads."""
        needed: Set[Variable] = set()
        for term in plan.head_terms:
            needed |= term.variables()
        out: List[FrozenSet[Variable]] = [frozenset()] * len(plan.sources)
        for position in range(len(plan.sources) - 1, -1, -1):
            out[position] = frozenset(needed)
            needed |= plan.sources[position].literal.variables()
        return out


class SubqueryEvaluator:
    """Facade over the physical executors.

    ``style`` selects between the push and pull tuple-at-a-time pipelines;
    ``executor`` selects between that pushdown recursion (the oracle) and
    the vectorized batch executor.  :meth:`bindings` and
    :meth:`satisfiable` always run pull-style — aggregation grouping and
    DRed's targeted re-derivation need complete per-tuple bindings, which a
    batch pipeline does not materialise.
    """

    def __init__(self, storage: StorageManager, style: str = "push",
                 executor: str = "pushdown", tracer=NOOP_TRACER,
                 governor=NOOP_GOVERNOR) -> None:
        if style not in ("push", "pull"):
            raise ValueError(f"unknown evaluator style {style!r}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.style = style
        self.executor = executor
        #: Cooperative cancellation: checked once per sub-query plan, the
        #: finest granularity at which storage is consistent (a plan either
        #: fully evaluates or contributes nothing).
        self.governor = governor
        self._push = PushSubqueryEvaluator(storage)
        self._pull = PullSubqueryEvaluator(storage)
        self._vectorized: Optional[VectorizedSubqueryEvaluator] = (
            VectorizedSubqueryEvaluator(storage, tracer=tracer)
            if executor == "vectorized" else None
        )

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        if self.governor.active:
            self.governor.check()
        if self._vectorized is not None:
            return self._vectorized.evaluate(plan)
        if self.style == "push":
            return self._push.evaluate(plan)
        return self._pull.evaluate(plan)

    @property
    def vectorized_stats(self) -> Optional[Dict[str, int]]:
        """Batch/strategy counters of the vectorized executor (else None)."""
        return None if self._vectorized is None else self._vectorized.stats

    def bindings(self, plan: JoinPlan,
                 initial: Optional[Bindings] = None) -> Iterator[Bindings]:
        """Complete bindings (always pull-style; used for aggregation)."""
        return self._pull.bindings(plan, initial)

    def satisfiable(self, plan: JoinPlan, initial: Optional[Bindings] = None) -> bool:
        """True when the plan has at least one result under ``initial``."""
        return next(iter(self._pull.bindings(plan, initial)), None) is not None


def evaluate_subquery(storage: StorageManager, plan: JoinPlan,
                      style: str = "push", executor: str = "pushdown") -> Set[Row]:
    """One-shot convenience wrapper used by tests and the interpreter."""
    return SubqueryEvaluator(storage, style, executor=executor).evaluate(plan)

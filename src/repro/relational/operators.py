"""Physical evaluation of conjunctive sub-queries (σπ⋈ over one atom order).

A *sub-query* is one member of the union generated for a rule by semi-naive
evaluation: an ordered sequence of body literals, each relational atom tagged
with the database copy it reads (Derived or Delta-Known), plus the head
projection.  This module provides two interchangeable implementations of the
same physical plan — a pull-based (iterator/generator) evaluator and a
push-based (callback) evaluator — mirroring the two engine styles Carac has
been integrated with (§V-D).  Both perform left-deep index-nested-loop joins
with binding propagation; which is exactly the plan shape the join-order
optimizer reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.literals import Assignment, Atom, Comparison, Literal
from repro.datalog.terms import Aggregate, BinaryExpression, Constant, Term, Variable
from repro.relational.relation import Relation, Row
from repro.relational.storage import DatabaseKind, StorageManager

Bindings = Dict[Variable, Any]


@dataclass(frozen=True)
class AtomSource:
    """Pairs one body literal with the database copy it reads.

    ``kind`` is None for built-in literals (comparisons / assignments), which
    read no relation at all; negated atoms always read the Derived database of
    a lower stratum, which is complete by the time they run.
    """

    literal: Literal
    kind: Optional[DatabaseKind] = None

    def is_delta(self) -> bool:
        return self.kind == DatabaseKind.DELTA_KNOWN


@dataclass
class JoinPlan:
    """An ordered physical plan for one sub-query.

    The order of ``sources`` *is* the join order; re-optimizing a sub-query
    means producing a new JoinPlan with the same literals in a different
    order (see :mod:`repro.core.join_order`).
    """

    head_relation: str
    head_terms: Tuple[Term, ...]
    sources: Tuple[AtomSource, ...]
    rule_name: str = ""

    def literals(self) -> Tuple[Literal, ...]:
        return tuple(source.literal for source in self.sources)

    def positive_atom_sources(self) -> Tuple[AtomSource, ...]:
        return tuple(
            s for s in self.sources
            if isinstance(s.literal, Atom) and not s.literal.negated
        )

    def delta_relation(self) -> Optional[str]:
        """The relation read from the delta database, if any."""
        for source in self.sources:
            if source.is_delta() and isinstance(source.literal, Atom):
                return source.literal.relation
        return None

    def reorder(self, permutation: Sequence[int]) -> "JoinPlan":
        """Return the same plan with sources permuted."""
        if sorted(permutation) != list(range(len(self.sources))):
            raise ValueError(f"{permutation!r} is not a permutation of the plan sources")
        return JoinPlan(
            head_relation=self.head_relation,
            head_terms=self.head_terms,
            sources=tuple(self.sources[i] for i in permutation),
            rule_name=self.rule_name,
        )

    def describe(self) -> str:
        """One-line human-readable description (used by explain/printer)."""
        parts = []
        for source in self.sources:
            literal = source.literal
            if isinstance(literal, Atom):
                marker = "δ" if source.is_delta() else "*"
                prefix = "!" if literal.negated else ""
                parts.append(f"{prefix}{literal.relation}{marker}")
            else:
                parts.append(repr(literal))
        return f"{self.head_relation} ⟵ " + " ⋈ ".join(parts)


def match_atom(atom: Atom, row: Row, bindings: Bindings) -> Optional[Bindings]:
    """Try to unify ``row`` with ``atom`` under ``bindings``.

    Returns the extended bindings on success, None on mismatch.  Handles
    constants and repeated variables within the atom.
    """
    new_bindings: Optional[Bindings] = None
    for position, term in enumerate(atom.terms):
        value = row[position]
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif isinstance(term, Variable):
            bound = bindings.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if new_bindings is not None and term in new_bindings:
                    if new_bindings[term] != value:
                        return None
                    continue
                if new_bindings is None:
                    new_bindings = dict(bindings)
                new_bindings[term] = value
            elif bound != value:
                return None
        else:  # pragma: no cover - expressions cannot appear in body atoms
            raise TypeError(f"unexpected term {term!r} in body atom")
    return new_bindings if new_bindings is not None else dict(bindings)


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<unbound>"


_UNBOUND = _Unbound()


def bound_constraints(atom: Atom, bindings: Bindings) -> Dict[int, Any]:
    """Column constraints derivable from constants and already-bound variables."""
    constraints: Dict[int, Any] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constraints[position] = term.value
        elif isinstance(term, Variable) and term in bindings:
            constraints[position] = bindings[term]
    return constraints


def project_head(head_terms: Sequence[Term], bindings: Bindings) -> Row:
    """Compute the head tuple for one complete set of bindings."""
    values: List[Any] = []
    for term in head_terms:
        values.append(term.substitute(bindings))
    return tuple(values)


class PullSubqueryEvaluator:
    """Generator-based (pull) evaluation of a :class:`JoinPlan`."""

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage

    def bindings(self, plan: JoinPlan,
                 initial: Optional[Bindings] = None) -> Iterator[Bindings]:
        """Yield every complete binding produced by the plan.

        ``initial`` pre-binds variables before the first source runs, turning
        leading scans into indexed probes.  The incremental subsystem uses
        this for targeted re-derivation: binding a rule's head variables to
        one deleted row asks "does *this* fact still have a derivation?"
        without enumerating the rule's full output.
        """
        yield from self._recurse(plan, 0, dict(initial) if initial else {})

    def _recurse(self, plan: JoinPlan, position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(plan.sources):
            yield bindings
            return
        source = plan.sources[position]
        literal = source.literal
        if isinstance(literal, Atom):
            if literal.negated:
                yield from self._negated(plan, position, literal, bindings)
                return
            relation = self.storage.relation(literal.relation, source.kind or DatabaseKind.DERIVED)
            constraints = bound_constraints(literal, bindings)
            for row in relation.probe(constraints):
                extended = match_atom(literal, row, bindings)
                if extended is not None:
                    yield from self._recurse(plan, position + 1, extended)
            return
        if isinstance(literal, Comparison):
            if literal.evaluate(bindings):
                yield from self._recurse(plan, position + 1, bindings)
            return
        if isinstance(literal, Assignment):
            value = literal.evaluate(bindings)
            existing = bindings.get(literal.target, _UNBOUND)
            if existing is _UNBOUND:
                extended = dict(bindings)
                extended[literal.target] = value
                yield from self._recurse(plan, position + 1, extended)
            elif existing == value:
                yield from self._recurse(plan, position + 1, bindings)
            return
        raise TypeError(f"unsupported literal {literal!r}")  # pragma: no cover

    def _negated(self, plan: JoinPlan, position: int, literal: Atom,
                 bindings: Bindings) -> Iterator[Bindings]:
        relation = self.storage.relation(literal.relation, DatabaseKind.DERIVED)
        probe_row: List[Any] = []
        for term in literal.terms:
            if isinstance(term, Constant):
                probe_row.append(term.value)
            elif isinstance(term, Variable):
                if term not in bindings:
                    raise ValueError(
                        f"negated atom {literal!r} reached with unbound variable "
                        f"{term.name!r}; the planner must order it after its binders"
                    )
                probe_row.append(bindings[term])
            else:  # pragma: no cover
                raise TypeError(f"unexpected term {term!r} in negated atom")
        if tuple(probe_row) not in relation:
            yield from self._recurse(plan, position + 1, bindings)

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        """Evaluate the plan and project the head (no aggregation here)."""
        results: Set[Row] = set()
        for bindings in self.bindings(plan):
            results.add(project_head(plan.head_terms, bindings))
        return results


class PushSubqueryEvaluator:
    """Callback-based (push) evaluation of a :class:`JoinPlan`.

    Produces exactly the same results as the pull evaluator; the difference
    is purely the control-flow style: tuples are pushed into a consumer
    callback as soon as they are produced, which is how Carac's default
    push-based storage engine works.
    """

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage

    def evaluate_into(self, plan: JoinPlan, consumer: Callable[[Row], None]) -> int:
        """Push every head tuple into ``consumer``; returns the tuple count."""
        count = 0

        def emit(bindings: Bindings) -> None:
            nonlocal count
            consumer(project_head(plan.head_terms, bindings))
            count += 1

        self._push(plan, 0, {}, emit)
        return count

    def _push(self, plan: JoinPlan, position: int, bindings: Bindings,
              emit: Callable[[Bindings], None]) -> None:
        if position == len(plan.sources):
            emit(bindings)
            return
        source = plan.sources[position]
        literal = source.literal
        if isinstance(literal, Atom):
            if literal.negated:
                relation = self.storage.relation(literal.relation, DatabaseKind.DERIVED)
                probe = tuple(
                    term.value if isinstance(term, Constant) else bindings[term]
                    for term in literal.terms
                )
                if probe not in relation:
                    self._push(plan, position + 1, bindings, emit)
                return
            relation = self.storage.relation(literal.relation, source.kind or DatabaseKind.DERIVED)
            constraints = bound_constraints(literal, bindings)
            for row in relation.probe(constraints):
                extended = match_atom(literal, row, bindings)
                if extended is not None:
                    self._push(plan, position + 1, extended, emit)
            return
        if isinstance(literal, Comparison):
            if literal.evaluate(bindings):
                self._push(plan, position + 1, bindings, emit)
            return
        if isinstance(literal, Assignment):
            value = literal.evaluate(bindings)
            existing = bindings.get(literal.target, _UNBOUND)
            if existing is _UNBOUND:
                extended = dict(bindings)
                extended[literal.target] = value
                self._push(plan, position + 1, extended, emit)
            elif existing == value:
                self._push(plan, position + 1, bindings, emit)
            return
        raise TypeError(f"unsupported literal {literal!r}")  # pragma: no cover

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        results: Set[Row] = set()
        self.evaluate_into(plan, results.add)
        return results


class SubqueryEvaluator:
    """Facade over the push/pull evaluators, selected by ``style``."""

    def __init__(self, storage: StorageManager, style: str = "push") -> None:
        if style not in ("push", "pull"):
            raise ValueError(f"unknown evaluator style {style!r}")
        self.style = style
        self._push = PushSubqueryEvaluator(storage)
        self._pull = PullSubqueryEvaluator(storage)

    def evaluate(self, plan: JoinPlan) -> Set[Row]:
        if self.style == "push":
            return self._push.evaluate(plan)
        return self._pull.evaluate(plan)

    def bindings(self, plan: JoinPlan,
                 initial: Optional[Bindings] = None) -> Iterator[Bindings]:
        """Complete bindings (always pull-style; used for aggregation)."""
        return self._pull.bindings(plan, initial)

    def satisfiable(self, plan: JoinPlan, initial: Optional[Bindings] = None) -> bool:
        """True when the plan has at least one result under ``initial``."""
        return next(iter(self._pull.bindings(plan, initial)), None) is not None


def evaluate_subquery(storage: StorageManager, plan: JoinPlan, style: str = "push") -> Set[Row]:
    """One-shot convenience wrapper used by tests and the interpreter."""
    return SubqueryEvaluator(storage, style).evaluate(plan)

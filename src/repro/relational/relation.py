"""In-memory relations and per-column hash indexes.

A :class:`Relation` stores a set of fixed-arity tuples.  Indexes are built
per column (the paper's policy is "one index per filter or join predicate",
§IV) and maintained incrementally on insert so that they can be created
before execution starts and stay valid across semi-naive iterations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

Row = Tuple[Any, ...]


class HashIndex:
    """A hash index over one column of a relation.

    Maps each distinct value in the indexed column to the list of rows having
    that value.  Lists (not sets) keep memory overhead low; duplicates cannot
    occur because the owning relation already de-duplicates rows.
    """

    __slots__ = ("column", "_buckets")

    def __init__(self, column: int) -> None:
        self.column = column
        self._buckets: Dict[Any, List[Row]] = {}

    def insert(self, row: Row) -> None:
        self._buckets.setdefault(row[self.column], []).append(row)

    def insert_many(self, rows: Iterable[Row]) -> None:
        """Bulk insert: one inlined loop instead of a method call per row.

        The batch maintenance path of :meth:`Relation.absorb_set` — promotion
        and scatter batches touch every index once per batch, not per row.
        """
        buckets = self._buckets
        column = self.column
        setdefault = buckets.setdefault
        for row in rows:
            setdefault(row[column], []).append(row)

    def buckets(self) -> Dict[Any, List[Row]]:
        """The live value -> rows mapping (read-only for callers).

        Exposed so the vectorized batch join can probe distinct keys with
        plain dict lookups instead of two method dispatches per key.
        """
        return self._buckets

    def remove(self, row: Row) -> bool:
        """Remove one row from its bucket; returns True if it was present.

        Retraction support: buckets are lists, so removal is linear in the
        bucket size — acceptable because retractions only touch the buckets of
        the retracted rows, never the whole index.
        """
        bucket = self._buckets.get(row[self.column])
        if bucket is None:
            return False
        try:
            bucket.remove(row)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[row[self.column]]
        return True

    def lookup(self, value: Any) -> Sequence[Row]:
        """Rows whose indexed column equals ``value`` (possibly empty)."""
        return self._buckets.get(value, ())

    def clear(self) -> None:
        self._buckets.clear()

    def distinct_values(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashIndex(column={self.column}, values={len(self._buckets)})"


class Relation:
    """A named, fixed-arity set of tuples with optional per-column indexes."""

    __slots__ = ("name", "arity", "_rows", "_indexes", "_lazy_columns")

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self._rows: Set[Row] = set()
        self._indexes: Dict[int, HashIndex] = {}
        # Columns registered with build_index(lazy=True): the index is only
        # materialised on first probe, and demoted again on clear() — so a
        # copy that is never probed (delta buffers under the vectorized
        # executor) pays zero maintenance per insert.
        self._lazy_columns: Set[int] = set()

    # -- mutation --------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> bool:
        """Insert a row; returns True if it was new."""
        row_tuple = tuple(row)
        if len(row_tuple) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, got row {row_tuple!r}"
            )
        if row_tuple in self._rows:
            return False
        self._rows.add(row_tuple)
        for index in self._indexes.values():
            index.insert(row_tuple)
        return True

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the number of new rows.

        When every row is already a tuple of the right arity — the common
        case: promotion batches and scatter/merge traffic read rows out of
        other relations — the batch takes the :meth:`absorb_set` fast path
        (one C-level set difference instead of one Python call per row).
        Anything else (lists, wrong arity) falls back to per-row
        :meth:`insert`, preserving its validation errors.
        """
        arity = self.arity
        materialised = (
            rows if isinstance(rows, (set, frozenset, list, tuple)) else list(rows)
        )
        if all(
            isinstance(row, tuple) and len(row) == arity for row in materialised
        ):
            return self.absorb_set(materialised)
        inserted = 0
        for row in materialised:
            if self.insert(row):
                inserted += 1
        return inserted

    def absorb_set(self, rows: Iterable[Row]) -> int:
        """Bulk-insert already-tupled rows via set arithmetic.

        The fast path for the shard-parallel scatter/merge steps, which move
        tens of thousands of rows at once: the membership filtering happens
        in one C-level set difference instead of one Python call per row.
        Rows must already be tuples of the right arity — callers own that
        invariant (they read the rows out of another relation).
        """
        if not isinstance(rows, (set, frozenset)):
            rows = set(rows)
        new_rows = rows - self._rows
        if not new_rows:
            return 0
        self._rows |= new_rows
        for index in self._indexes.values():
            index.insert_many(new_rows)
        return len(new_rows)

    def replace_rows(self, rows: Set[Row]) -> None:
        """Install ``rows`` as the entire contents, **taking ownership**.

        The checkpoint-install fast path: the caller hands over a freshly
        built set (recovery discards its copy), so replacement is one
        reference assignment instead of absorb_set's diff + union over
        tens of thousands of rows.  Non-lazy indexes are rebuilt; lazy
        ones are demoted exactly as :meth:`clear` does.
        """
        self._rows = rows
        for column in [c for c in self._indexes if c in self._lazy_columns]:
            del self._indexes[column]
        for index in self._indexes.values():
            index.clear()
            index.insert_many(rows)

    def discard(self, row: Sequence[Any]) -> bool:
        """Remove a row, maintaining every index; returns True if present."""
        row_tuple = tuple(row)
        if row_tuple not in self._rows:
            return False
        self._rows.discard(row_tuple)
        for index in self._indexes.values():
            index.remove(row_tuple)
        return True

    def discard_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Remove many rows; returns the number actually removed."""
        removed = 0
        for row in rows:
            if self.discard(row):
                removed += 1
        return removed

    def clear(self) -> None:
        """Remove all rows (indexes are kept but emptied; lazy ones demoted)."""
        self._rows.clear()
        for column in [c for c in self._indexes if c in self._lazy_columns]:
            del self._indexes[column]
        for index in self._indexes.values():
            index.clear()

    # -- indexes ---------------------------------------------------------------

    def build_index(self, column: int, lazy: bool = False) -> Optional[HashIndex]:
        """Create (or fetch) the index on ``column`` and populate it.

        ``lazy=True`` only *registers* the column (returning None when not
        yet materialised): the index springs into existence on the first
        probe that needs it and is demoted again by :meth:`clear`.  Made for
        the delta buffers — rewritten wholesale every iteration, probed only
        by some plan shapes — where eager maintenance is pure overhead.
        """
        if column < 0 or column >= self.arity:
            raise ValueError(
                f"cannot index column {column} of {self.name!r} (arity {self.arity})"
            )
        existing = self._indexes.get(column)
        if existing is not None:
            return existing
        if lazy:
            self._lazy_columns.add(column)
            return None
        return self._materialise_index(column)

    def _materialise_index(self, column: int) -> HashIndex:
        index = HashIndex(column)
        index.insert_many(self._rows)
        self._indexes[column] = index
        return index

    def _index_for(self, column: int) -> Optional[HashIndex]:
        """The usable index on ``column``, materialising a lazy one."""
        index = self._indexes.get(column)
        if index is None and column in self._lazy_columns:
            index = self._materialise_index(column)
        return index

    def index_buckets(self, column: int) -> Optional[Dict[Any, List[Row]]]:
        """The index's value -> rows mapping, or None when unindexed.

        Deliberately does *not* materialise lazy indexes: batch joins that
        find no live index build their own per-batch table instead, which
        does not have to be maintained afterwards.
        """
        index = self._indexes.get(column)
        return None if index is None else index.buckets()

    def drop_indexes(self) -> None:
        self._indexes.clear()
        self._lazy_columns.clear()

    def has_index(self, column: int) -> bool:
        """Whether ``column`` carries an index (materialised or lazy)."""
        return column in self._indexes or column in self._lazy_columns

    def indexed_columns(self) -> Tuple[int, ...]:
        return tuple(sorted(self._indexes))

    # -- access ----------------------------------------------------------------

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def rows(self) -> Set[Row]:
        """The underlying row set (do not mutate)."""
        return self._rows

    def scan(self) -> Iterator[Row]:
        """Full scan."""
        return iter(self._rows)

    def lookup(self, column: int, value: Any) -> Iterable[Row]:
        """Rows with ``row[column] == value``, via index when available."""
        index = self._index_for(column)
        if index is not None:
            return index.lookup(value)
        return (row for row in self._rows if row[column] == value)

    def probe(self, constraints: Dict[int, Any]) -> Iterable[Row]:
        """Rows satisfying all ``column == value`` constraints.

        Picks the indexed constraint with the fewest matching rows as the
        access path, then filters the remaining constraints; falls back to a
        scan-and-filter when no constrained column is indexed.
        """
        if not constraints:
            return iter(self._rows)
        best_column: Optional[int] = None
        best_count: Optional[int] = None
        for column in constraints:
            index = self._index_for(column)
            if index is None:
                continue
            count = len(index.lookup(constraints[column]))
            if best_count is None or count < best_count:
                best_count = count
                best_column = column
        if best_column is None:
            return (
                row
                for row in self._rows
                if all(row[c] == v for c, v in constraints.items())
            )
        candidates = self._indexes[best_column].lookup(constraints[best_column])
        remaining = {c: v for c, v in constraints.items() if c != best_column}
        if not remaining:
            return iter(candidates)
        return (
            row
            for row in candidates
            if all(row[c] == v for c, v in remaining.items())
        )

    # -- set operations used by the storage manager ----------------------------

    def absorb(self, other: "Relation") -> int:
        """Insert every row of ``other``; returns the number of new rows.

        Goes straight to :meth:`absorb_set`: rows read out of another
        relation are tuples of the right arity by construction.
        """
        return self.absorb_set(other.rows())

    def difference_into(self, other: "Relation", target: "Relation") -> int:
        """Write ``self - other`` into ``target``; returns the number written."""
        count = 0
        for row in self._rows:
            if row not in other and target.insert(row):
                count += 1
        return count

    def copy(self, name: Optional[str] = None) -> "Relation":
        clone = Relation(name or self.name, self.arity)
        clone._rows = set(self._rows)
        clone._lazy_columns = set(self._lazy_columns)
        for column in self._indexes:
            clone.build_index(column)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation({self.name!r}, arity={self.arity}, rows={len(self._rows)})"

"""Runtime statistics: cardinality snapshots and the selectivity model.

The join-order optimization (paper §IV) consumes three inputs: live relation
cardinalities, index availability and a *constant reduction factor* per join
or filter condition (Carac deliberately keeps the model lightweight — no
histograms — to keep re-optimization cheap).  This module provides those
inputs plus the per-iteration cardinality history used by the freshness test
and by the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.relational.storage import DatabaseKind, StorageManager


@dataclass(frozen=True)
class CardinalitySnapshot:
    """Cardinalities of every relation copy at one instant."""

    iteration: int
    derived: Mapping[str, int]
    delta: Mapping[str, int]

    def of(self, relation: str, kind: DatabaseKind) -> int:
        if kind == DatabaseKind.DELTA_KNOWN:
            return self.delta.get(relation, 0)
        return self.derived.get(relation, 0)

    def total_derived(self) -> int:
        return sum(self.derived.values())

    def total_delta(self) -> int:
        return sum(self.delta.values())


def take_snapshot(storage: StorageManager, iteration: int = 0) -> CardinalitySnapshot:
    """Capture the current cardinalities from ``storage``."""
    return CardinalitySnapshot(
        iteration=iteration,
        derived=dict(storage.cardinalities(DatabaseKind.DERIVED)),
        delta=dict(storage.cardinalities(DatabaseKind.DELTA_KNOWN)),
    )


class SnapshotCache:
    """Reuse cardinality maps across snapshots while storage is unchanged.

    ``take_snapshot`` copies every cardinality dict; the JIT asks for a
    snapshot once per adaptive node per iteration, on storage that only
    changes at swap/seed boundaries (loop-body inserts write Delta-New,
    which snapshots do not read).  The cache keys on
    :meth:`StorageManager.mutation_version`: while the version stands
    still, the previously built ``derived``/``delta`` maps are shared
    (snapshots are read-only), so repeat snapshots cost two dict probes
    instead of two dict copies per relation.
    """

    __slots__ = ("_version", "_snapshot", "hits", "misses")

    def __init__(self) -> None:
        self._version: Optional[int] = None
        self._snapshot: Optional[CardinalitySnapshot] = None
        self.hits = 0
        self.misses = 0

    def take(self, storage: StorageManager, iteration: int = 0) -> CardinalitySnapshot:
        version = storage.mutation_version()
        cached = self._snapshot
        if cached is not None and self._version == version:
            self.hits += 1
            if cached.iteration == iteration:
                return cached
            cached = CardinalitySnapshot(
                iteration=iteration, derived=cached.derived, delta=cached.delta
            )
        else:
            self.misses += 1
            cached = take_snapshot(storage, iteration)
        self._version = version
        self._snapshot = cached
        return cached


@dataclass
class SelectivityModel:
    """Carac's deliberately simple selectivity model.

    Each additional bound condition (a shared variable with already-joined
    atoms, or a constant) multiplies the estimated output cardinality by
    ``reduction_factor``, assuming statistical independence.  Index access on
    a bound column further scales the *cost* (not the cardinality) by
    ``index_benefit``, reflecting that an index probe avoids a scan.
    """

    reduction_factor: float = 0.1
    index_benefit: float = 0.05
    cartesian_penalty: float = 10.0

    def output_cardinality(self, input_cardinality: int, bound_conditions: int) -> float:
        """Estimated rows surviving ``bound_conditions`` equality conditions."""
        estimate = float(input_cardinality)
        for _ in range(bound_conditions):
            estimate *= self.reduction_factor
        return max(estimate, 0.0)

    def access_cost(self, input_cardinality: int, bound_conditions: int,
                    indexed: bool) -> float:
        """Estimated cost of scanning/probing one atom given current bindings."""
        if bound_conditions == 0:
            return float(input_cardinality) * self.cartesian_penalty
        cost = float(input_cardinality)
        if indexed:
            cost *= self.index_benefit
        return cost

    def join_cost(self, left_cardinality: float, right_cardinality: int,
                  bound_conditions: int, indexed: bool) -> float:
        """Cost of joining the current intermediate result with one more atom.

        The left cardinality is *not* clamped: an empty intermediate result
        (e.g. an empty delta relation placed first) legitimately makes the
        rest of the join free, which is exactly the short-circuit the paper's
        iteration-7 example relies on.
        """
        per_row = self.access_cost(right_cardinality, bound_conditions, indexed)
        return max(left_cardinality, 0.0) * per_row


@dataclass
class StatisticsCollector:
    """Per-iteration cardinality history for one program execution.

    ``record`` is called by the engine at every safe point of interest (at
    minimum once per DoWhile iteration).  The JIT's freshness test and the
    profiler read from here rather than touching storage directly so that
    asynchronous compilation threads see a consistent snapshot.
    """

    history: List[CardinalitySnapshot] = field(default_factory=list)

    def record(self, storage: StorageManager, iteration: int) -> CardinalitySnapshot:
        snapshot = take_snapshot(storage, iteration)
        self.history.append(snapshot)
        return snapshot

    def record_snapshot(self, snapshot: CardinalitySnapshot) -> CardinalitySnapshot:
        """Append an externally taken (possibly cache-shared) snapshot."""
        self.history.append(snapshot)
        return snapshot

    def latest(self) -> Optional[CardinalitySnapshot]:
        return self.history[-1] if self.history else None

    def iterations(self) -> int:
        return len(self.history)

    def series(self, relation: str, kind: DatabaseKind = DatabaseKind.DERIVED) -> List[int]:
        """The cardinality of ``relation`` over time (one entry per snapshot)."""
        return [snapshot.of(relation, kind) for snapshot in self.history]

    def relative_change(self, earlier: CardinalitySnapshot,
                        later: CardinalitySnapshot) -> float:
        """Maximum relative cardinality change between two snapshots.

        This is the quantity the freshness test (paper §V-B2) thresholds: if
        no relation's cardinality moved by more than the threshold relative to
        the others, re-generating code is not worth the overhead.

        Derived relations are compared against their own previous size; delta
        relations are compared against the size of the corresponding derived
        relation, because a delta that is tiny *relative to what has already
        been derived* no longer changes which join order wins even though it
        fluctuates wildly in absolute terms every iteration.
        """
        relations = set(earlier.derived) | set(later.derived)
        worst = 0.0
        for relation in relations:
            derived_before = earlier.of(relation, DatabaseKind.DERIVED)
            derived_after = later.of(relation, DatabaseKind.DERIVED)
            worst = max(
                worst, abs(derived_after - derived_before) / max(derived_before, 1)
            )
            delta_before = earlier.of(relation, DatabaseKind.DELTA_KNOWN)
            delta_after = later.of(relation, DatabaseKind.DELTA_KNOWN)
            worst = max(
                worst, abs(delta_after - delta_before) / max(derived_after, 1)
            )
        return worst

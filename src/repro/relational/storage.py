"""The storage manager: Derived, Delta-Known and Delta-New databases.

Carac splits the database of each IDB relation three ways (§V-B1, §V-D):

* **Derived** — every fact discovered so far (plus the EDB facts).
* **Delta-Known** — read-only: facts discovered in the *previous* iteration.
* **Delta-New** — write-only: facts discovered in the *current* iteration.

At the end of each semi-naive iteration ``swap_and_clear`` promotes the new
facts into Derived, makes Delta-New the next iteration's Delta-Known and
clears the relation that will collect the next round of discoveries.  The
read/write split is what makes every IROp boundary a safe point for the JIT
and what allows asynchronous compilation to proceed while interpretation
continues.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.program import DatalogProgram
from repro.relational.relation import Relation, Row
from repro.relational.symbols import IDENTITY


class DatabaseKind(str, enum.Enum):
    """Which copy of a relation an operator reads."""

    DERIVED = "derived"
    DELTA_KNOWN = "delta"
    DELTA_NEW = "new"


class StorageManager:
    """Owns every relation instance used during one program evaluation.

    ``symbols`` is the manager's value codec (:mod:`repro.relational.symbols`):
    when a real :class:`~repro.relational.symbols.SymbolTable` is supplied
    (the engine does, under ``EngineConfig(interning=True)``), EDB facts are
    interned at load time and every relation copy holds dense integer
    tuples; decoding happens exactly once, at the result boundary.  The
    default is the identity codec, so direct storage use keeps raw-value
    semantics.  All mutation APIs other than :meth:`load_program` take rows
    already in the manager's value domain — callers that accept user rows
    (the incremental session) encode at their boundary.
    """

    def __init__(self, program: Optional[DatalogProgram] = None,
                 symbols=None) -> None:
        self.symbols = symbols if symbols is not None else IDENTITY
        self._arities: Dict[str, int] = {}
        self._derived: Dict[str, Relation] = {}
        self._delta_known: Dict[str, Relation] = {}
        self._delta_new: Dict[str, Relation] = {}
        self._indexed_columns: Dict[str, Set[int]] = {}
        # Incremental-evaluation bookkeeping: per-relation generation counters
        # (bumped on every observable change to the Derived database, used by
        # the result cache) and the explicitly asserted "base" rows of each
        # relation (the support set delete-and-rederive may retract from).
        self._generations: Dict[str, int] = {}
        self._base_rows: Dict[str, Set[Row]] = {}
        # Coarse change counter over the copies cardinality snapshots read
        # (Derived + Delta-Known): lets take_snapshot reuse unchanged maps
        # instead of re-copying every cardinality dict each round.
        self._mutation_version = 0
        # Counter bumps happen on writer threads while concurrent readers
        # probe generations for cache-validity tokens and snapshot pinning;
        # `x += 1` on an attribute is not atomic in CPython (LOAD/ADD/STORE
        # can interleave), so every bump and every multi-relation read goes
        # through this lock.  Bumps are per *batch* (or per iteration), not
        # per row, so contention is negligible next to evaluation work.
        self._counter_lock = threading.Lock()
        # Copy-on-write frozen-row cache behind MVCC snapshots: per relation
        # the (generation, frozenset) of the last freeze, reused while the
        # generation stands still — so publishing a snapshot after a batch
        # pays only for the relations the batch actually changed.
        self._frozen_cache: Dict[str, Tuple[int, FrozenSet[Row]]] = {}
        if program is not None:
            self.load_program(program)

    # -- counter bumps (thread-safe; see _counter_lock above) --------------------

    def _bump_version(self) -> None:
        with self._counter_lock:
            self._mutation_version += 1

    def _bump_generation(self, name: str, with_version: bool = True) -> None:
        with self._counter_lock:
            self._generations[name] += 1
            if with_version:
                self._mutation_version += 1

    # -- setup -----------------------------------------------------------------

    def declare(self, name: str, arity: int) -> None:
        """Declare a relation; idempotent, rejects arity mismatches."""
        existing = self._arities.get(name)
        if existing is not None:
            if existing != arity:
                raise ValueError(
                    f"relation {name!r} declared with arity {arity}, previously {existing}"
                )
            return
        self._arities[name] = arity
        self._derived[name] = Relation(name, arity)
        self._delta_known[name] = Relation(f"{name}Δ", arity)
        self._delta_new[name] = Relation(f"{name}Δ'", arity)
        self._indexed_columns[name] = set()
        self._generations[name] = 0
        self._base_rows[name] = set()

    def load_program(self, program: DatalogProgram) -> None:
        """Declare every relation of ``program`` and load its EDB facts.

        Facts are loaded in one batch per relation (arity is already
        enforced by the program's own declarations), so a 10k-row EDB costs
        set arithmetic, not 10k insert calls.  This is the interning point:
        each fact row passes through :attr:`symbols` exactly once, so under
        dictionary encoding the storage retains int tuples (plus one copy
        of each distinct constant in the table) while the caller's raw fact
        objects become garbage.
        """
        for name, declaration in program.relations.items():
            self.declare(name, declaration.arity)
        symbols = self.symbols
        by_relation: Dict[str, Set[Row]] = {}
        if symbols.identity:
            for fact in program.facts:
                by_relation.setdefault(fact.relation, set()).add(tuple(fact.values))
        else:
            # Intern in strict fact order first — id allocation must match
            # the value-at-a-time walk exactly (the durability checkpoint
            # guard compares this deterministic prefix) — then encode.
            ids = symbols.intern_many(
                value for fact in program.facts for value in fact.values
            )
            values_by_relation: Dict[str, List[Tuple[Any, ...]]] = {}
            for fact in program.facts:
                values_by_relation.setdefault(fact.relation, []).append(fact.values)
            for name, rows in values_by_relation.items():
                # Encode per relation with direct id-map subscripts; the
                # binary case (edges — by far the dominant EDB shape) gets
                # an unpacking comprehension instead of a per-row genexpr.
                if self._arities[name] == 2:
                    by_relation[name] = {(ids[a], ids[b]) for a, b in rows}
                else:
                    by_relation[name] = {
                        tuple(ids[value] for value in row) for row in rows
                    }
            symbols.rows_encoded += sum(len(rows) for rows in by_relation.values())
        for name, rows in by_relation.items():
            inserted = self._derived[name].absorb_set(rows)
            if inserted:
                self._bump_generation(name)
            self._base_rows[name] |= rows

    def register_index(self, relation: str, column: int) -> None:
        """Request an index on ``relation[column]`` on all copies of the relation.

        The engine calls this as soon as the rule schema is known (ahead of
        execution when possible), matching the paper's "build one index per
        filter or join predicate" policy.
        """
        self._require(relation)
        self._indexed_columns[relation].add(column)
        # All copies register lazily: the index springs into existence on the
        # first probe that needs it (see Relation.build_index), so a copy no
        # plan shape ever probes — delta buffers under the vectorized
        # executor, join-side columns of schema-selected but unused indexes —
        # pays zero per-row maintenance.
        self._derived[relation].build_index(column, lazy=True)
        self._delta_known[relation].build_index(column, lazy=True)
        self._delta_new[relation].build_index(column, lazy=True)

    def registered_indexes(self, relation: str) -> Tuple[int, ...]:
        return tuple(sorted(self._indexed_columns.get(relation, ())))

    def drop_all_indexes(self) -> None:
        for name in self._arities:
            self._indexed_columns[name].clear()
            self._derived[name].drop_indexes()
            self._delta_known[name].drop_indexes()
            self._delta_new[name].drop_indexes()

    # -- access ----------------------------------------------------------------

    def _require(self, name: str) -> None:
        if name not in self._arities:
            raise KeyError(f"unknown relation {name!r}")

    def relation_names(self) -> List[str]:
        return list(self._arities)

    def arity_of(self, name: str) -> int:
        self._require(name)
        return self._arities[name]

    def relation(self, name: str, kind: DatabaseKind = DatabaseKind.DERIVED) -> Relation:
        """Fetch the requested copy of a relation."""
        self._require(name)
        if kind == DatabaseKind.DERIVED:
            return self._derived[name]
        if kind == DatabaseKind.DELTA_KNOWN:
            return self._delta_known[name]
        if kind == DatabaseKind.DELTA_NEW:
            return self._delta_new[name]
        raise ValueError(f"unknown database kind {kind!r}")

    def derived(self, name: str) -> Relation:
        return self.relation(name, DatabaseKind.DERIVED)

    def delta(self, name: str) -> Relation:
        return self.relation(name, DatabaseKind.DELTA_KNOWN)

    def new(self, name: str) -> Relation:
        return self.relation(name, DatabaseKind.DELTA_NEW)

    def cardinality(self, name: str, kind: DatabaseKind = DatabaseKind.DERIVED) -> int:
        return len(self.relation(name, kind))

    def cardinalities(self, kind: DatabaseKind = DatabaseKind.DERIVED) -> Dict[str, int]:
        return {name: self.cardinality(name, kind) for name in self._arities}

    def tuples(self, name: str, kind: DatabaseKind = DatabaseKind.DERIVED) -> Set[Row]:
        return set(self.relation(name, kind).rows())

    def decoded_tuples(self, name: str,
                       kind: DatabaseKind = DatabaseKind.DERIVED) -> Set[Row]:
        """The rows of ``name`` translated back into the raw value domain.

        The legacy-shape result boundary (``ExecutionEngine.run()``, session
        ``fetch``): one decode pass, no effect under the identity codec.
        """
        rows = self.relation(name, kind).rows()
        if self.symbols.identity:
            return set(rows)
        return set(self.symbols.resolve_rows(rows))

    def mutation_version(self) -> int:
        """Coarse counter over Derived/Delta-Known changes (snapshot reuse)."""
        with self._counter_lock:
            return self._mutation_version

    # -- mutation --------------------------------------------------------------

    def insert_derived(self, name: str, row: Sequence[Any]) -> bool:
        """Insert directly into the Derived database (used for EDB facts)."""
        self._require(name)
        inserted = self._derived[name].insert(row)
        if inserted:
            self._bump_generation(name)
        return inserted

    def insert_base(self, name: str, row: Sequence[Any]) -> bool:
        """Insert an explicitly asserted fact, recording it as a base row.

        Base rows are the retraction unit of the incremental subsystem: only
        facts that were explicitly asserted (program EDB facts or session
        ``insert_facts`` batches) can be retracted; everything else is derived
        and only disappears when its derivations do.
        """
        inserted = self.insert_derived(name, row)
        self._base_rows[name].add(tuple(row))
        return inserted

    def adopt_derived(self, name: str, relation: Relation) -> None:
        """Use ``relation`` as this manager's Derived copy of ``name``.

        The zero-copy sharing hook of the shard-parallel subsystem: a
        replicated *read-only* support relation can back any number of
        shard-local storages at once.  The adopting manager must never
        mutate the relation — the callers (see
        :meth:`repro.parallel.sharded_storage.ShardedStorage.share_derived`)
        only adopt relations their plans read, never write.
        """
        self._require(name)
        if relation.arity != self._arities[name]:
            raise ValueError(
                f"cannot adopt {relation!r} as {name!r}: arity mismatch"
            )
        self._derived[name] = relation
        # The adopted relation's contents may differ from the replaced copy
        # without a generation bump; drop any frozen view of the old copy.
        self._frozen_cache.pop(name, None)
        self._bump_version()

    def base_rows(self, name: str) -> Set[Row]:
        """The explicitly asserted rows of ``name`` (a copy)."""
        self._require(name)
        return set(self._base_rows[name])

    def is_base_row(self, name: str, row: Sequence[Any]) -> bool:
        self._require(name)
        return tuple(row) in self._base_rows[name]

    def forget_base_row(self, name: str, row: Sequence[Any]) -> bool:
        """Drop a row from the base set without touching the databases."""
        self._require(name)
        before = len(self._base_rows[name])
        self._base_rows[name].discard(tuple(row))
        return len(self._base_rows[name]) != before

    def retract_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Physically remove rows from every copy of ``name``, keeping indexes.

        Returns the number of rows removed from the Derived database.  Used
        by delete-and-rederive after the over-deletion cone is computed; the
        delta copies are scrubbed too so a retraction can never leak through
        a stale delta into the next fixpoint.
        """
        self._require(name)
        removed = 0
        for row in rows:
            row_tuple = tuple(row)
            if self._derived[name].discard(row_tuple):
                removed += 1
            self._delta_known[name].discard(row_tuple)
            self._delta_new[name].discard(row_tuple)
        if removed:
            self._bump_generation(name, with_version=False)
        self._bump_version()
        return removed

    # -- generation counters (result-cache invalidation) -------------------------

    def generation(self, name: str) -> int:
        """Monotonic counter, bumped whenever Derived ``name`` changes."""
        self._require(name)
        with self._counter_lock:
            return self._generations[name]

    def generations(self, names: Optional[Iterable[str]] = None) -> Dict[str, int]:
        """Generation snapshot of ``names`` (default: every relation).

        Taken under the counter lock so a concurrent writer's bumps never
        produce a torn multi-relation view.
        """
        if names is not None:
            names = [name for name in names if self._require(name) is None]
        with self._counter_lock:
            if names is None:
                return dict(self._generations)
            return {name: self._generations[name] for name in names}

    def frozen_rows(self, name: str) -> FrozenSet[Row]:
        """The Derived rows of ``name`` as a frozenset, memoised per generation.

        The copy-on-write primitive behind MVCC snapshots
        (:mod:`repro.incremental.snapshots`): while the relation's
        generation counter stands still the same frozenset object is
        returned, so consecutive snapshot publishes share row sets for
        every relation the intervening batches did not touch.  Must be
        called at a commit point by the thread that owns the storage.
        """
        self._require(name)
        generation = self.generation(name)
        cached = self._frozen_cache.get(name)
        if cached is not None and cached[0] == generation:
            return cached[1]
        rows = frozenset(self._derived[name].rows())
        self._frozen_cache[name] = (generation, rows)
        return rows

    def insert_new_batch(self, name: str, rows: "Set[Row] | frozenset") -> int:
        """Trusted :meth:`insert_new_many`: skip re-tupling and arity scans.

        The executor's per-iteration sink: evaluation batches are produced
        by head projection over validated plans, so every row is already a
        tuple of the declared arity — re-validating 10⁶ rows per fixpoint
        was pure overhead (it showed up as ~15-25%% of closure wall time in
        profiles).  Callers own that invariant; anything else must go
        through :meth:`insert_new_many`.
        """
        fresh = rows - self._derived[name].rows()
        if not fresh:
            return 0
        return self._delta_new[name].absorb_set(fresh)

    def seed_delta_batch(self, name: str, rows: "Set[Row] | frozenset") -> int:
        """Trusted :meth:`seed_delta` (see :meth:`insert_new_batch`)."""
        new = rows - self._derived[name].rows()
        if not new:
            return 0
        self._derived[name].absorb_set(new)
        self._delta_known[name].absorb_set(new)
        self._bump_generation(name)
        return len(new)

    def absorb_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows into the Derived database, one generation bump.

        The bulk path of the shard-parallel subsystem: scattering partitions
        to shards and merging shard results back both move tens of thousands
        of rows at once, and bumping the generation counter per batch (not
        per row) keeps result-cache tokens meaningful.  Returns the number
        of rows that were new.
        """
        self._require(name)
        inserted = self._derived[name].absorb_set(
            rows if isinstance(rows, (set, frozenset)) else (tuple(row) for row in rows)
        )
        if inserted:
            self._bump_generation(name)
        return inserted

    def force_delta(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Insert rows into Delta-Known only, regardless of Derived membership.

        Used when seeding shard-local deltas: the rows are already present
        in the (local or replicated) Derived database, so :meth:`seed_delta`
        — which skips anything already derived — would drop them.  Returns
        the number of rows new to Delta-Known.
        """
        self._require(name)
        self._bump_version()
        return self._delta_known[name].insert_many(rows)

    def _normalise_batch(self, name: str, rows: Iterable[Sequence[Any]]) -> Set[Row]:
        """One batch as a validated set of tuples (shared by the bulk writers).

        A set/frozenset of plain tuples (the shape evaluation batches have)
        passes through as-is; anything else — including sets holding other
        hashable sequences like strings — is re-tupled row by row, exactly
        as the per-row insert path used to.
        """
        self._require(name)
        if isinstance(rows, (set, frozenset)) and all(
            type(row) is tuple for row in rows
        ):
            rows_set: Set[Row] = rows
        else:
            rows_set = {tuple(row) for row in rows}
        arity = self._arities[name]
        if any(len(row) != arity for row in rows_set):
            bad = next(row for row in rows_set if len(row) != arity)
            raise ValueError(
                f"relation {name!r} has arity {arity}, got row {bad!r}"
            )
        return rows_set

    def insert_new(self, name: str, row: Sequence[Any]) -> bool:
        """Insert into Delta-New if the fact is not already derived.

        Returns True when the fact is genuinely new; this is the single point
        where "did we discover anything this iteration" is decided.
        """
        self._require(name)
        if tuple(row) in self._derived[name]:
            return False
        return self._delta_new[name].insert(row)

    def insert_new_many(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Batch :meth:`insert_new`: one set difference instead of per-row calls.

        The hot sink of every semi-naive iteration — each loop pass pours a
        whole evaluation batch in here, so the derived-membership filter runs
        as a single C-level set difference (arity is still validated, in one
        C-level pass, like the per-row path used to).
        """
        rows_set = self._normalise_batch(name, rows)
        fresh = rows_set - self._derived[name].rows()
        if not fresh:
            return 0
        return self._delta_new[name].absorb_set(fresh)

    def seed_delta(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Initialise Delta-Known and Derived with the first-iteration facts.

        Batched like :meth:`insert_new_many`: the genuinely new rows are
        computed with one set difference and absorbed into both copies.
        """
        rows_set = self._normalise_batch(name, rows)
        new = rows_set - self._derived[name].rows()
        if not new:
            return 0
        self._derived[name].absorb_set(new)
        self._delta_known[name].absorb_set(new)
        self._bump_generation(name)
        return len(new)

    def restore_state(self, name: str, derived_rows: Iterable[Row],
                      base_rows: Iterable[Row]) -> None:
        """Install recovered state: replace Derived and the base ledger wholesale.

        The checkpoint-install primitive of the durability subsystem: rows
        arrive already in this manager's value domain (the recovery path
        aligns the symbol table first), deltas are cleared — a checkpoint
        is always taken at a fixpoint — and the generation bump invalidates
        any cached results over the replaced contents.
        """
        self._require(name)
        self._delta_known[name].clear()
        self._delta_new[name].clear()
        # A plain set argument is adopted wholesale (checkpoint loading
        # builds fresh sets and discards its reference); anything else is
        # copied first.  Either way the relation swaps one reference in
        # instead of diffing tens of thousands of recovered rows.
        rows = derived_rows if type(derived_rows) is set else {
            tuple(row) for row in derived_rows
        }
        self._derived[name].replace_rows(rows)
        self._base_rows[name] = (
            base_rows if type(base_rows) is set else set(base_rows)
        )
        self._frozen_cache.pop(name, None)
        self._bump_generation(name)

    # -- iteration management (SwapClearOp / DiffOp semantics) ------------------

    def new_fact_count(self, names: Iterable[str]) -> int:
        """Total number of facts written to Delta-New for ``names``."""
        return sum(len(self._delta_new[name]) for name in names)

    def swap_and_clear(self, names: Iterable[str]) -> int:
        """Promote Delta-New into Derived, rotate it to Delta-Known, clear.

        Returns the number of facts promoted.  Matches the SwapClearOp of the
        paper's IROp program (Fig. 4): executed once per DoWhile iteration.
        """
        promoted = 0
        self._bump_version()
        for name in names:
            self._require(name)
            new_relation = self._delta_new[name]
            absorbed = self._derived[name].absorb(new_relation)
            if absorbed:
                self._bump_generation(name, with_version=False)
            promoted += absorbed
            # Rotate: new becomes known; old known becomes the next new buffer.
            self._delta_known[name], self._delta_new[name] = (
                self._delta_new[name],
                self._delta_known[name],
            )
            self._delta_new[name].clear()
        return promoted

    def clear_deltas(self, names: Iterable[str]) -> None:
        self._bump_version()
        for name in names:
            self._require(name)
            self._delta_known[name].clear()
            self._delta_new[name].clear()

    def reset_idb(self, names: Iterable[str]) -> None:
        """Forget all derived facts of ``names`` (used between benchmark runs)."""
        self._bump_version()
        for name in names:
            self._require(name)
            if len(self._derived[name]):
                self._bump_generation(name, with_version=False)
            self._derived[name].clear()
            self._delta_known[name].clear()
            self._delta_new[name].clear()

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Cardinality snapshot of every database, for profiling/debugging."""
        return {
            name: {
                DatabaseKind.DERIVED.value: len(self._derived[name]),
                DatabaseKind.DELTA_KNOWN.value: len(self._delta_known[name]),
                DatabaseKind.DELTA_NEW.value: len(self._delta_new[name]),
            }
            for name in self._arities
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(r) for r in self._derived.values())
        return f"StorageManager(relations={len(self._arities)}, derived_rows={total})"

"""Global symbol interning: one dense integer id per distinct constant.

Dictionary encoding is the storage trick every production Datalog engine
(Soufflé and friends) leans on: intern each constant **once** into a dense
``0..N-1`` integer domain and run the entire fixpoint — hash-join
build/probe, delta dedup, shard routing, index maintenance — over
machine-word tuples.  Strings, composite keys and floats are hashed and
compared exactly once, at interning time; every later touch is an int.

Two codecs implement the same tiny protocol:

* :class:`SymbolTable` — the real thing: an append-only value ↔ id bijection.
  Ids are allocated densely in first-seen order, so the id space doubles as
  an index into the value list and decoding is one C-level list subscript.
  Interning is keyed by the value itself (plain ``dict`` lookup), so the
  encoding **preserves Python set semantics exactly**: values that compare
  equal (``1 == 1.0 == True``) share one id, exactly as a raw ``set`` of
  rows collapses them, so decoded results equal the un-encoded engine's
  under ``==`` — same rows, same cardinalities, same joins.  The one
  observable difference is *which representative* of a mixed-type numeric
  equivalence class survives: the table keeps the globally first-interned
  value (so ``b(1.0)`` decodes as ``1`` if ``a(1)`` loaded first), where
  the raw engine keeps the first value inserted into each individual set.
  Giving such values distinct ids instead would change row *counts*
  relative to raw sets, a far worse divergence; consumers that dispatch on
  ``int`` vs ``float`` within one ``==``-equivalence class face the same
  arbitrariness the raw engine's per-set collapse already has.
* :data:`IDENTITY` (:class:`IdentitySymbols`) — the null codec used when
  interning is disabled (``EngineConfig(interning=False)``): every method is
  the identity, so the storage layer holds raw values exactly as before the
  encoding rewrite.  It is the differential oracle the encoded engine is
  tested against.

Shard safety
------------

The table is **append-only** and safe to share:

* *Threads* — the allocation path takes a lock (with a lock-free fast path
  for already-interned values, safe under the GIL), so shard workers on the
  thread pool may intern concurrently.
* *Forked processes* — children inherit the table at fork time; ids are
  consistent because allocation is deterministic and the coordinator only
  forks after loading/encoding.  Plans that can *allocate* mid-fixpoint
  (assignments, arithmetic head terms) are kept off the fork pool by the
  parallel evaluator, so a child never invents an id its siblings lack.
* *Pickling* — a table pickles by its value list (the id map and lock are
  rebuilt on load), so spawn-style workers can ship the whole table, and
  :meth:`entries_since` / :meth:`extend` ship incremental deltas: the
  receiver replays the sender's appended suffix and ends up id-identical.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.resilience import faults
from repro.resilience.errors import DurabilityError

Row = Tuple[Any, ...]


class SymbolTable:
    """Append-only value ↔ dense-int-id bijection (see module docstring)."""

    #: Identity codecs short-circuit the encode/decode plumbing; the real
    #: table never does.
    identity = False

    __slots__ = ("_ids", "_values", "_lock", "rows_encoded", "rows_decoded")

    def __init__(self, values: Optional[Iterable[Any]] = None) -> None:
        self._ids: dict = {}
        self._values: List[Any] = []
        self._lock = threading.Lock()
        #: Boundary counters surfaced by ``explain()``/the profile: rows
        #: interned at load/mutation time and rows decoded at the
        #: QueryResult boundary.  Bulk methods maintain them; single-value
        #: ``intern``/``resolve`` calls (e.g. one comparison operand) are
        #: deliberately uncounted to keep the per-touch cost at one dict or
        #: list operation.
        self.rows_encoded = 0
        self.rows_decoded = 0
        if values is not None:
            self.extend(values)

    # -- core codec ------------------------------------------------------------

    def intern(self, value: Any) -> int:
        """The dense id of ``value``, allocating one on first sight."""
        found = self._ids.get(value)
        if found is not None:
            return found
        with self._lock:
            found = self._ids.get(value)
            if found is None:
                found = len(self._values)
                self._values.append(value)
                self._ids[value] = found
        return found

    def lookup(self, value: Any) -> Optional[int]:
        """The id of ``value`` if it was ever interned, else None (no alloc).

        The retraction path uses this: a value that was never interned
        cannot occur in any stored row, so the row is simply absent.
        """
        return self._ids.get(value)

    def resolve(self, symbol: int) -> Any:
        """The value behind ``symbol`` (one list subscript)."""
        try:
            return self._values[symbol]
        except (IndexError, TypeError):
            raise KeyError(f"unknown symbol id {symbol!r}") from None

    # -- row codecs ------------------------------------------------------------

    def intern_row(self, row: Sequence[Any]) -> Row:
        intern = self.intern
        return tuple(intern(value) for value in row)

    def resolve_row(self, row: Sequence[int]) -> Row:
        values = self._values
        return tuple(values[symbol] for symbol in row)

    def intern_rows(self, rows: Iterable[Sequence[Any]]) -> List[Row]:
        intern = self.intern
        out = [tuple(intern(value) for value in row) for row in rows]
        self.rows_encoded += len(out)
        return out

    def intern_many(self, values: Iterable[Any]) -> dict:
        """Intern every value in first-seen order; returns the live id map.

        The bulk-loading path: ``dict.fromkeys`` deduplicates at C speed
        while preserving first-seen order — the same allocation order a
        value-at-a-time :meth:`intern` walk would produce — so a 10k-fact
        EDB costs one pass plus one dict insert per *distinct* value
        instead of one Python call per value occurrence.  Callers may use
        the returned map for direct ``map[value]`` encoding but must not
        mutate it.
        """
        ids = self._ids
        missing = [value for value in dict.fromkeys(values) if value not in ids]
        if missing:
            with self._lock:
                values_list = self._values
                for value in missing:
                    if value not in ids:
                        ids[value] = len(values_list)
                        values_list.append(value)
        return ids

    def resolve_rows(self, rows: Iterable[Sequence[int]]) -> List[Row]:
        values = self._values
        out = [tuple(values[symbol] for symbol in row) for row in rows]
        self.rows_decoded += len(out)
        return out

    def lookup_row(self, row: Sequence[Any]) -> Optional[Row]:
        """Encode a probe row without allocating; None if any value is unknown."""
        lookup = self._ids.get
        out = []
        for value in row:
            symbol = lookup(value)
            if symbol is None:
                return None
            out.append(symbol)
        return tuple(out)

    # -- shard/process plumbing --------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def mark(self) -> int:
        """A replay point for :meth:`entries_since` (the current size)."""
        return len(self._values)

    def entries_since(self, mark: int) -> List[Any]:
        """Values appended after ``mark``, in allocation (= id) order."""
        return self._values[mark:]

    def extend(self, values: Iterable[Any], base: Optional[int] = None) -> int:
        """Replay another table's appended suffix; returns entries added.

        Receiving side of the cross-process delta protocol: appending the
        sender's ``entries_since(mark)`` with ``base=mark`` reproduces its
        allocations exactly, so row ids stay comparable across the
        boundary.  Raises ``ValueError`` when the replay would assign any
        value an id different from the sender's — the tables diverged and
        encoded rows can no longer be exchanged.  A batch whose values
        *match* the receiver's existing allocations (a duplicated replay)
        dedupe-merges: matching entries are skipped, only the genuinely new
        tail appends.

        The whole batch is validated before anything is applied: a failing
        ``extend`` leaves the table exactly as it was.  Partial application
        would be far worse than the error it reports — the durability WAL
        replays symbol deltas through this method, and a half-absorbed
        corrupt delta would silently remap every fact interned afterwards.
        """
        faults.fire("symbols.extend", DurabilityError)
        with self._lock:
            if base is None:
                base = len(self._values)
            elif base > len(self._values):
                raise ValueError(
                    f"symbol table divergence: replay base {base} is beyond "
                    f"this table's size {len(self._values)} (missing entries)"
                )
            # Phase 1 — validate every entry against both the table and the
            # batch's own pending appends, mutating nothing.
            pending: dict = {}
            to_append: List[Any] = []
            size = len(self._values)
            for offset, value in enumerate(values):
                expected = base + offset
                existing = self._ids.get(value)
                if existing is None:
                    existing = pending.get(value)
                if existing is None:
                    if size != expected:
                        raise ValueError(
                            f"symbol table divergence: {value!r} would get id "
                            f"{size}, sender assigned {expected}"
                        )
                    pending[value] = expected
                    to_append.append(value)
                    size += 1
                elif existing != expected:
                    raise ValueError(
                        f"symbol table divergence: {value!r} bound to id "
                        f"{existing} here, {expected} at the sender"
                    )
            # Phase 2 — the batch is consistent; apply it.
            for value in to_append:
                self._ids[value] = len(self._values)
                self._values.append(value)
        return len(to_append)

    def values(self) -> Iterator[Any]:
        """Every interned value, in id order."""
        return iter(self._values)

    # -- pickling (the lock cannot cross process boundaries) ---------------------

    def __getstate__(self):
        return {
            "values": self._values,
            "rows_encoded": self.rows_encoded,
            "rows_decoded": self.rows_decoded,
        }

    def __setstate__(self, state) -> None:
        self._values = list(state["values"])
        self._ids = {value: i for i, value in enumerate(self._values)}
        self._lock = threading.Lock()
        self.rows_encoded = state.get("rows_encoded", 0)
        self.rows_decoded = state.get("rows_decoded", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SymbolTable(symbols={len(self._values)})"


class IdentitySymbols:
    """The null codec: raw values pass through untouched.

    The default of a bare :class:`~repro.relational.storage.StorageManager`
    (so direct storage use keeps its historical raw-value semantics) and of
    ``EngineConfig(interning=False)`` — the differential oracle the encoded
    engine is held bit-for-bit against.
    """

    identity = True
    rows_encoded = 0
    rows_decoded = 0

    __slots__ = ()

    def intern(self, value: Any) -> Any:
        return value

    def lookup(self, value: Any) -> Any:
        return value

    def resolve(self, symbol: Any) -> Any:
        return symbol

    def intern_row(self, row: Sequence[Any]) -> Row:
        return tuple(row)

    def resolve_row(self, row: Sequence[Any]) -> Row:
        return tuple(row)

    def intern_rows(self, rows: Iterable[Sequence[Any]]) -> List[Row]:
        return [tuple(row) for row in rows]

    def resolve_rows(self, rows: Iterable[Sequence[Any]]) -> List[Row]:
        return [tuple(row) for row in rows]

    def lookup_row(self, row: Sequence[Any]) -> Row:
        return tuple(row)

    def __len__(self) -> int:
        return 0

    def mark(self) -> int:
        return 0

    def entries_since(self, mark: int) -> List[Any]:
        return []

    def extend(self, values: Iterable[Any], base: Optional[int] = None) -> int:
        raise TypeError("the identity codec cannot absorb symbol entries")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "IdentitySymbols()"


#: Shared stateless instance of the null codec.
IDENTITY = IdentitySymbols()

"""Resilience: fault injection, query governance, typed failure taxonomy.

Three small modules wired through every layer of the engine:

- :mod:`repro.resilience.errors` — the stable error taxonomy
  (``DeadlineExceeded`` / ``ResourceExhausted`` / ``Cancelled`` /
  ``WorkerFailed`` / ``DurabilityError``) with wire-stable codes.
- :mod:`repro.resilience.faults` — named fault points at the real failure
  sites with deterministic seeded schedules; zero-overhead when disabled.
- :mod:`repro.resilience.limits` / :mod:`repro.resilience.cancel` — per
  query ``QueryLimits`` + cooperative ``CancellationToken``, enforced by a
  ``QueryGovernor`` the executors poll at iteration boundaries.

This package sits below the engine layers (it imports nothing from them),
so storage, durability, parallel and server code can all use it freely.
"""

from repro.resilience.cancel import NOOP_TOKEN, CancellationToken
from repro.resilience.errors import (
    Cancelled,
    DeadlineExceeded,
    DurabilityError,
    ResilienceError,
    ResourceExhausted,
    TAXONOMY,
    WorkerFailed,
    error_from_code,
)
from repro.resilience.faults import (
    ENV_VAR,
    FAULT_POINTS,
    FaultRegistry,
    FaultSpec,
    NOOP_FAULTS,
    fault_scope,
    install_from_env,
)
from repro.resilience.limits import (
    NOOP_GOVERNOR,
    QueryGovernor,
    QueryLimits,
    governor_of,
)

__all__ = [
    "CancellationToken",
    "Cancelled",
    "DeadlineExceeded",
    "DurabilityError",
    "ENV_VAR",
    "FAULT_POINTS",
    "FaultRegistry",
    "FaultSpec",
    "NOOP_FAULTS",
    "NOOP_GOVERNOR",
    "NOOP_TOKEN",
    "QueryGovernor",
    "QueryLimits",
    "ResilienceError",
    "ResourceExhausted",
    "TAXONOMY",
    "WorkerFailed",
    "error_from_code",
    "fault_scope",
    "governor_of",
    "install_from_env",
]

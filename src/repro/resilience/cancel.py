"""Cooperative cancellation: one token per query, checked at loop boundaries.

A :class:`CancellationToken` is the cheap half of query governance: it holds
an optional absolute deadline (``time.monotonic`` domain — CLOCK_MONOTONIC
is system-wide on Linux, so a deadline crosses ``fork`` to shard workers
as a plain float) and a cancel flag any thread may set.  The engine checks
it cooperatively: per fixpoint iteration in :class:`~repro.core.executor.
IRExecutor`, per sub-query batch in the vectorized operators, per round in
the shard workers.  Unbounded-growth programs therefore abort within one
iteration of the deadline instead of spinning to ``max_iterations``.

:data:`NOOP_TOKEN` is the disabled singleton — ``active`` is False, every
method is a no-op — so un-governed queries pay a single attribute test, the
same zero-overhead discipline as ``NOOP_TRACER``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.resilience.errors import Cancelled, DeadlineExceeded


class CancellationToken:
    """One query's cancel flag + optional absolute monotonic deadline."""

    __slots__ = ("deadline", "_cancelled", "_reason")

    #: Guard for hot paths: live tokens always check, the no-op never does.
    active = True

    def __init__(self, deadline: Optional[float] = None) -> None:
        self.deadline = deadline
        self._cancelled = False
        self._reason: Optional[str] = None

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancellationToken":
        """A token whose deadline is ``seconds`` from now."""
        return cls(deadline=time.monotonic() + seconds)

    # -- state ------------------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the token; safe from any thread (plain attribute store)."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (may be negative); None when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    # -- the cooperative check --------------------------------------------------

    def check(self) -> None:
        """Raise :class:`Cancelled` / :class:`DeadlineExceeded` when due."""
        if self._cancelled:
            raise Cancelled(
                f"query cancelled: {self._reason}", reason=self._reason
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise DeadlineExceeded("query deadline exceeded")


class _NoopToken:
    """The shared disabled token: never cancels, never expires."""

    __slots__ = ()

    active = False
    cancelled = False
    deadline: Optional[float] = None

    def cancel(self, reason: str = "cancelled") -> None:  # pragma: no cover
        pass

    def remaining(self) -> Optional[float]:
        return None

    def expired(self) -> bool:
        return False

    def check(self) -> None:
        pass


NOOP_TOKEN = _NoopToken()

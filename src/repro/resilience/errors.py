"""The typed error taxonomy: every failure the engine reports, one class each.

Before this module the failure surface was ad hoc: a wedged queue raised a
``BackpressureError`` with free-form codes, a dead shard worker surfaced as
a bare ``RuntimeError``, and an I/O error mid-commit crossed the wire as an
unstructured traceback string.  The taxonomy replaces all of that with five
stable classes — :class:`DeadlineExceeded`, :class:`ResourceExhausted`,
:class:`Cancelled`, :class:`WorkerFailed`, :class:`DurabilityError` — whose
``code`` strings are wire-stable: the server serialises them with
:meth:`ResilienceError.to_wire`, clients re-raise them from
:func:`error_from_code`, and tests pin each code exactly once.

Every instance optionally carries a ``reason`` (a short machine-readable
discriminator inside one code, e.g. ``queue_full`` vs ``oversized_frame``
for :class:`ResourceExhausted`) and arbitrary keyword ``details`` that ride
along in the wire object (``shard``, ``policy``, ``point``, ...).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ResilienceError(Exception):
    """Base of the taxonomy; never raised directly by the engine."""

    #: The stable wire code of this class (class attribute, one per class).
    code = "resilience"
    #: Whether a client may safely retry the *same* request after backoff.
    #: Refined per instance: mutation errors are only retryable when the
    #: server reports the write was never enqueued (no double-apply).
    retryable = False

    def __init__(self, message: str = "", *, reason: Optional[str] = None,
                 **details: Any) -> None:
        super().__init__(message or self.code)
        self.reason = reason
        self.details = details

    def to_wire(self) -> Dict[str, Any]:
        """The ``{"code", "message", ...}`` object the server sends."""
        wire: Dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.reason is not None:
            wire["reason"] = self.reason
        wire.update(self.details)
        return wire


class DeadlineExceeded(ResilienceError):
    """A query (or queued mutation) ran past its deadline and was aborted."""

    code = "deadline_exceeded"


class ResourceExhausted(ResilienceError):
    """A bounded resource (queue slots, rows, rounds, bytes) ran out.

    Transient by nature — the client may retry after backoff, except for
    mutations the server reports as already enqueued.
    """

    code = "resource_exhausted"
    retryable = True


class Cancelled(ResilienceError):
    """Work was cancelled cooperatively (client gone, shed, shutdown)."""

    code = "cancelled"


class WorkerFailed(ResilienceError):
    """A shard worker died mid-stratum; the engine degrades and re-runs."""

    code = "worker_failed"


class DurabilityError(ResilienceError):
    """The WAL or a checkpoint could not be made durable."""

    code = "durability_error"


#: code -> class, for re-raising typed errors from wire objects and from
#: cross-process worker failure payloads.
TAXONOMY: Dict[str, type] = {
    cls.code: cls
    for cls in (DeadlineExceeded, ResourceExhausted, Cancelled, WorkerFailed,
                DurabilityError)
}


def error_from_code(code: str, message: str = "", *,
                    reason: Optional[str] = None,
                    **details: Any) -> ResilienceError:
    """Rebuild a taxonomy error from its wire code (base class fallback)."""
    cls = TAXONOMY.get(code, ResilienceError)
    error = cls(message, reason=reason, **details)
    if cls is ResilienceError:
        # Preserve an unknown-but-structured code across one more hop.
        error.details.setdefault("origin_code", code)
    return error

"""Fault injection: named fault points at the engine's real failure sites.

Every place the system can genuinely fail in production — a WAL ``fsync``
returning ``EIO``, a checkpoint rename racing a crash, a shard worker dying
mid-invoke, a client socket resetting mid-write — carries a *fault point*:
a one-line ``faults.fire("wal.fsync", DurabilityError)`` hook.  When no
registry is installed the hook is one attribute test on a shared no-op
singleton (the ``NOOP_TRACER`` discipline); when a :class:`FaultRegistry`
is installed, each hit consults that point's :class:`FaultSpec` schedule:

``fail_nth``
    Deterministically fail the Nth hit of the point (1-based), exactly
    once — then the point recovers.  The smoke workflow uses this to prove
    a typed error surfaces over the wire *and* that the next request
    succeeds.
``fail_rate``
    Fail each hit with seeded probability — deterministic for a given
    ``seed``, so chaos runs replay exactly.
``delay``
    Sleep per hit without failing (slow-disk / slow-network simulation).

Injected failures raise the *site's* taxonomy error (the same class a real
EIO or worker death would produce), so chaos tests exercise the production
error paths, not a parallel test-only channel.

Activation: ``EngineConfig.with_(faults=FaultRegistry(...))`` (installed
when the engine prepares an evaluation), :func:`fault_scope` in tests, or
the ``REPRO_FAULTS`` environment variable for whole-process injection —
``REPRO_FAULTS="wal.fsync:fail_nth=1;pool.invoke:fail_rate=0.1"``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Type, Union

from repro.resilience.errors import ResilienceError, TAXONOMY

#: Every fault point the engine registers, in dependency order.  Specs for
#: unknown points are rejected up front — a typo'd point would otherwise
#: silently never fire.
FAULT_POINTS = (
    "wal.append",        # WAL frame write+flush (durability/wal.py)
    "wal.fsync",         # WAL fsync, batch or always policy (durability/wal.py)
    "checkpoint.rename", # atomic tmp -> final rename (durability/checkpoint.py)
    "symbols.extend",    # symbol-table delta absorb (relational/symbols.py)
    "pool.invoke",       # shard worker-pool dispatch (parallel/executor.py)
    "server.send",       # response write to a client socket (server/server.py)
    "queue.enqueue",     # mutation-queue admission (server/backpressure.py)
)

#: Environment variable holding a spec list for whole-process injection.
ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One point's schedule.  ``0``/``0.0`` fields are inactive."""

    point: str
    fail_nth: int = 0
    fail_rate: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {FAULT_POINTS}"
            )
        if self.fail_nth < 0:
            raise ValueError(f"fail_nth must be >= 0, got {self.fail_nth}")
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError(
                f"fail_rate must be in [0, 1], got {self.fail_rate}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``"point:key=value,key=value"`` (the env-var grammar)."""
        point, _, rest = text.strip().partition(":")
        kwargs: Dict[str, float] = {}
        if rest:
            for item in rest.split(","):
                key, _, raw = item.partition("=")
                key = key.strip()
                if key == "fail_nth":
                    kwargs[key] = int(raw)
                elif key in ("fail_rate", "delay"):
                    kwargs[key] = float(raw)
                else:
                    raise ValueError(
                        f"unknown fault spec field {key!r} in {text!r}"
                    )
        return cls(point=point, **kwargs)  # type: ignore[arg-type]


class FaultRegistry:
    """The installed schedule: per-point hit counters + trigger decisions."""

    enabled = True

    def __init__(self, specs: Iterable[Union[FaultSpec, str]] = (),
                 seed: int = 0) -> None:
        parsed = [
            spec if isinstance(spec, FaultSpec) else FaultSpec.parse(spec)
            for spec in specs
        ]
        self._specs: Dict[str, FaultSpec] = {s.point: s for s in parsed}
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}
        self.seed = seed

    # -- the hook ---------------------------------------------------------------

    def fire(self, point: str, error: Type[ResilienceError]) -> None:
        """Account one hit of ``point``; raise when the schedule says fail."""
        spec = self._specs.get(point)
        with self._lock:
            self._hits[point] = hits = self._hits.get(point, 0) + 1
            if spec is None:
                return
            triggered = (
                (spec.fail_nth and hits == spec.fail_nth)
                or (spec.fail_rate and self._rng.random() < spec.fail_rate)
            )
            if triggered:
                self._injected[point] = self._injected.get(point, 0) + 1
        if spec.delay:
            time.sleep(spec.delay)
        if triggered:
            raise error(
                f"injected fault at {point} (hit {hits})",
                reason="injected", point=point,
            )

    # -- introspection ----------------------------------------------------------

    def hits(self, point: str) -> int:
        with self._lock:
            return self._hits.get(point, 0)

    def injected(self, point: Optional[str] = None) -> int:
        with self._lock:
            if point is not None:
                return self._injected.get(point, 0)
            return sum(self._injected.values())

    def specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(self._specs[p] for p in FAULT_POINTS if p in self._specs)

    def stat_rows(self) -> List[Tuple[str, str, int]]:
        """``sys_resilience`` rows: configured points with hit/fire counts."""
        rows: List[Tuple[str, str, int]] = []
        for spec in self.specs():
            rows.append(("fault_hits", spec.point, self.hits(spec.point)))
            rows.append(
                ("fault_injected", spec.point, self.injected(spec.point))
            )
        return rows


class _NoopRegistry:
    """The shared disabled registry: ``fire`` never triggers, zero state."""

    __slots__ = ()

    enabled = False

    def fire(self, point: str, error: Type[ResilienceError]) -> None:
        pass  # pragma: no cover - guarded out by callers

    def hits(self, point: str) -> int:
        return 0

    def injected(self, point: Optional[str] = None) -> int:
        return 0

    def specs(self) -> Tuple[FaultSpec, ...]:
        return ()

    def stat_rows(self) -> List[Tuple[str, str, int]]:
        return []


NOOP_FAULTS = _NoopRegistry()

#: The process-wide active registry.  Fault points are physical sites (one
#: WAL file, one worker pool, one server socket), so activation is
#: process-scoped — exactly like ``faulthandler`` — and the last install
#: wins.  ``clear()`` restores the free no-op.
_ACTIVE: Union[FaultRegistry, _NoopRegistry] = NOOP_FAULTS


def active() -> Union[FaultRegistry, _NoopRegistry]:
    return _ACTIVE


def install(registry: Union[FaultRegistry, Iterable[Union[FaultSpec, str]]]
            ) -> FaultRegistry:
    """Activate ``registry`` (or build one from specs) process-wide."""
    global _ACTIVE
    if not isinstance(registry, FaultRegistry):
        registry = FaultRegistry(registry)
    _ACTIVE = registry
    return registry


def clear() -> None:
    """Deactivate injection; fault points return to the zero-cost path."""
    global _ACTIVE
    _ACTIVE = NOOP_FAULTS


def fire(point: str, error: Type[ResilienceError]) -> None:
    """The site-side hook: free when disabled, scheduled when installed."""
    registry = _ACTIVE
    if registry.enabled:
        registry.fire(point, error)


@contextmanager
def fault_scope(*specs: Union[FaultSpec, str], seed: int = 0):
    """Install specs for one ``with`` block (tests); always restores."""
    global _ACTIVE
    previous = _ACTIVE
    registry = install(FaultRegistry(specs, seed=seed))
    try:
        yield registry
    finally:
        _ACTIVE = previous


def install_from_env(environ=os.environ) -> Optional[FaultRegistry]:
    """Install the ``REPRO_FAULTS`` schedule, if the variable is set.

    Grammar: ``point:field=value,field=value;point2:...`` — e.g.
    ``REPRO_FAULTS="wal.fsync:fail_nth=1"``.  An optional ``seed=N`` item
    (no colon) seeds the schedule's RNG.
    """
    raw = environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    seed = 0
    specs: List[FaultSpec] = []
    for item in raw.split(";"):
        item = item.strip()
        if not item:
            continue
        if item.startswith("seed="):
            seed = int(item[len("seed="):])
            continue
        specs.append(FaultSpec.parse(item))
    return install(FaultRegistry(specs, seed=seed))

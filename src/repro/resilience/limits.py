"""Query limits and the governor that enforces them during evaluation.

:class:`QueryLimits` is the declarative half — a frozen value object a
caller attaches to one query (``connection.query(..., limits=...)``) or to
a whole session (``EngineConfig.with_(limits=...)``).  :class:`QueryGovernor`
is the runtime half: one per evaluation, folding the limits and an optional
:class:`~repro.resilience.cancel.CancellationToken` into a single object the
executors poll at iteration boundaries.

The split mirrors ``TelemetryConfig`` vs ``Tracer``: limits are config,
the governor is per-run state (row/round counters).  With no limits and no
token the executors hold :data:`NOOP_GOVERNOR` and pay one attribute test
per iteration — the overhead the ``resilience`` bench section gates ≤2%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.resilience.cancel import NOOP_TOKEN, CancellationToken
from repro.resilience.errors import DeadlineExceeded, ResourceExhausted


@dataclass(frozen=True)
class QueryLimits:
    """Bounds for one query's evaluation; ``None`` means unbounded."""

    #: Wall-clock budget in seconds (mapped onto a token deadline).
    deadline_seconds: Optional[float] = None
    #: Cap on rows derived (promoted into the fixpoint) by this evaluation.
    max_rows: Optional[int] = None
    #: Cap on semi-naive rounds summed across strata (catches unbounded
    #: growth even when each round derives few rows).
    max_rounds: Optional[int] = None
    #: Cap on the estimated result payload (rows x arity x 8 bytes — the
    #: packed machine-word footprint under dictionary encoding).
    max_result_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("deadline_seconds", "max_rows", "max_rounds",
                     "max_result_bytes"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def unbounded(self) -> bool:
        return (self.deadline_seconds is None and self.max_rows is None
                and self.max_rounds is None and self.max_result_bytes is None)


class QueryGovernor:
    """Per-evaluation enforcement of one :class:`QueryLimits` + token."""

    __slots__ = ("token", "limits", "deadline", "rows_derived", "rounds")

    active = True

    def __init__(self, limits: Optional[QueryLimits] = None,
                 token: Optional[CancellationToken] = None) -> None:
        self.limits = limits or QueryLimits()
        if token is None or not token.active:
            token = CancellationToken()
        # The caller's token stays authoritative for cancellation; the
        # effective deadline is the tighter of its deadline and the limit.
        self.token = token
        deadline = token.deadline
        if self.limits.deadline_seconds is not None:
            budget = time.monotonic() + self.limits.deadline_seconds
            deadline = budget if deadline is None else min(deadline, budget)
        #: Absolute monotonic deadline, shippable to forked workers.
        self.deadline = deadline
        self.rows_derived = 0
        self.rounds = 0

    def check(self) -> None:
        """The cheap boundary check: cancel flag + deadline only."""
        self.token.check()
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise DeadlineExceeded("query deadline exceeded")

    def on_round(self, promoted: int = 0) -> None:
        """Account one fixpoint round; raise when a bound is crossed."""
        self.check()
        self.rounds += 1
        self.rows_derived += promoted
        limits = self.limits
        if limits.max_rounds is not None and self.rounds > limits.max_rounds:
            raise ResourceExhausted(
                f"fixpoint exceeded max_rounds={limits.max_rounds}",
                reason="max_rounds", rounds=self.rounds,
            )
        if limits.max_rows is not None and self.rows_derived > limits.max_rows:
            raise ResourceExhausted(
                f"evaluation derived more than max_rows={limits.max_rows} rows",
                reason="max_rows", rows=self.rows_derived,
            )

    def check_result_bytes(self, estimated_bytes: int) -> None:
        """Guard the result-fetch boundary against oversized payloads."""
        limit = self.limits.max_result_bytes
        if limit is not None and estimated_bytes > limit:
            raise ResourceExhausted(
                f"result of ~{estimated_bytes} bytes exceeds "
                f"max_result_bytes={limit}",
                reason="max_result_bytes", estimated_bytes=estimated_bytes,
            )


class _NoopGovernor:
    """The disabled governor: one shared instance, every check a no-op."""

    __slots__ = ()

    active = False
    deadline: Optional[float] = None
    token = NOOP_TOKEN
    rows_derived = 0
    rounds = 0

    def check(self) -> None:
        pass

    def on_round(self, promoted: int = 0) -> None:
        pass

    def check_result_bytes(self, estimated_bytes: int) -> None:
        pass


NOOP_GOVERNOR = _NoopGovernor()


def governor_of(limits: Optional[QueryLimits] = None,
                token: Optional[CancellationToken] = None):
    """A governor when anything is bounded, else the shared no-op."""
    if token is not None and token.active:
        return QueryGovernor(limits, token)
    if limits is not None and not limits.unbounded:
        return QueryGovernor(limits, token)
    return NOOP_GOVERNOR

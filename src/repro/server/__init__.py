"""The concurrent query server: an asyncio front end over one ``Database``.

This package turns the embedded engine into a network service: many client
connections multiplex over one shared :class:`~repro.api.database.Database`,
reads are snapshot-isolated via MVCC storage versions
(:mod:`repro.incremental.snapshots` — readers never block behind a writer's
fixpoint), and mutations funnel through a bounded single-writer queue with
configurable admission control (block / reject / shed).

Layering: the engine core never imports this package — ``repro.server``
sits strictly *above* ``repro.api``, the same one-way rule the telemetry
sinks and the introspection catalog follow.

Entry points
------------

* :class:`QueryServer` — the asyncio server (own the event loop yourself).
* :class:`ServerThread` — run a server on a background thread
  (``with ServerThread(db) as srv: ...``; used by tests, benches, demos).
* :class:`BlockingClient` / :class:`AsyncClient` — wire clients.
* ``python -m repro.server --program rules.dl`` — standalone process.
"""

from repro.server.backpressure import (
    BackpressureConfig,
    BackpressureError,
    MutationQueue,
)
from repro.server.client import AsyncClient, BlockingClient
from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_frame,
    encode_frame,
    encode_line,
    jsonify_rows,
)
from repro.server.runtime import ServerThread
from repro.server.server import QueryServer
from repro.server.sessions import ConnectionState, SessionRegistry

__all__ = [
    "AsyncClient",
    "BackpressureConfig",
    "BackpressureError",
    "BlockingClient",
    "ConnectionState",
    "MAX_FRAME",
    "MutationQueue",
    "ProtocolError",
    "QueryServer",
    "ServerThread",
    "SessionRegistry",
    "decode_frame",
    "encode_frame",
    "encode_line",
    "jsonify_rows",
]

"""Standalone server process: ``python -m repro.server --program rules.dl``.

Reads a Datalog program from a file (or stdin with ``-``), boots a
:class:`~repro.server.server.QueryServer` and serves until interrupted.
With ``--durability DIR`` the database runs on a write-ahead log and
checkpoints in ``DIR``: restarts recover the committed state (warm from
the latest checkpoint plus a WAL replay) instead of re-evaluating from
the program source.

Shutdown is graceful on SIGINT/SIGTERM: the writer finishes the batch it
already dequeued, every still-queued mutation fails back to its client
with a structured ``shutdown`` error, and the WAL is flushed — all
*before* client sockets close.

Debug with ``nc``: the server auto-detects newline-delimited JSON, so

::

    $ echo '{"op": "query", "relation": "path"}' | nc localhost 7777
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.durability import DurabilityConfig
from repro.durability.config import FSYNC_POLICIES
from repro.resilience.faults import ENV_VAR, install_from_env
from repro.server.backpressure import POLICIES, BackpressureConfig
from repro.server.server import QueryServer


async def _serve(server: QueryServer) -> None:
    """Serve until SIGINT/SIGTERM, then run the ordered shutdown.

    The signal only sets an event — the actual teardown is this
    coroutine awaiting ``server.stop()`` to completion, never a
    cancellation racing the writer mid-commit.
    """
    interrupted = asyncio.Event()
    loop = asyncio.get_running_loop()
    hooked = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, interrupted.set)
            hooked.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-unix loop: KeyboardInterrupt still reaches main()
    await server.start()
    print(f"listening on {server.host}:{server.port}", file=sys.stderr)
    try:
        await interrupted.wait()
        print(
            "shutting down: draining mutation queue, flushing WAL",
            file=sys.stderr,
        )
    finally:
        for signum in hooked:
            loop.remove_signal_handler(signum)
        await server.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve one Datalog program over TCP.",
    )
    parser.add_argument(
        "--program", required=True,
        help="path to a Datalog source file, or '-' for stdin",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7777)
    parser.add_argument(
        "--policy", choices=POLICIES, default="block",
        help="backpressure policy for the mutation queue",
    )
    parser.add_argument(
        "--max-pending", type=int, default=64,
        help="mutation queue bound",
    )
    parser.add_argument(
        "--executor", default=None, choices=["pushdown", "vectorized"],
        help="engine executor override",
    )
    parser.add_argument(
        "--durability", default=None, metavar="DIR",
        help="durability directory (WAL + checkpoints); restarts recover",
    )
    parser.add_argument(
        "--fsync", choices=FSYNC_POLICIES, default="batch",
        help="WAL fsync policy (only with --durability)",
    )
    args = parser.parse_args(argv)

    if args.program == "-":
        source = sys.stdin.read()
    else:
        with open(args.program, "r", encoding="utf-8") as handle:
            source = handle.read()

    # Fault injection for chaos / smoke runs: REPRO_FAULTS="wal.fsync:
    # fail_nth=1" makes the first fsync fail with a typed durability error
    # on the wire, after which the server recovers on its own.
    registry = install_from_env()
    if registry is not None:
        specs = ", ".join(
            f"{spec.point}(fail_nth={spec.fail_nth}, "
            f"fail_rate={spec.fail_rate}, delay={spec.delay})"
            for spec in registry.specs()
        )
        print(f"fault injection active via {ENV_VAR}: {specs}", file=sys.stderr)

    config = EngineConfig()
    if args.executor:
        config = config.with_(executor=args.executor)
    durability = None
    if args.durability is not None:
        durability = DurabilityConfig(dir=args.durability, fsync=args.fsync)
    database = Database(source, config, durability=durability)
    server = QueryServer(
        database, host=args.host, port=args.port,
        backpressure=BackpressureConfig(
            policy=args.policy, max_pending=args.max_pending
        ),
    )
    if server.durability is not None:
        recovery = server.durability.last_recovery
        if recovery is not None:
            print(
                f"recovered {recovery.checkpoint_rows} checkpoint rows + "
                f"{recovery.replayed_records} WAL records in "
                f"{recovery.seconds:.3f}s from {args.durability!r}",
                file=sys.stderr,
            )

    print(
        f"serving {args.program!r} on {args.host}:{args.port} "
        f"(policy={args.policy}, max_pending={args.max_pending}, "
        f"durability={args.durability or 'off'})",
        file=sys.stderr,
    )
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        # Signal handler unavailable (non-unix): stop() is idempotent and
        # still runs the ordered drain-then-close sequence, best-effort on
        # a fresh loop.
        try:
            asyncio.run(server.stop())
        except RuntimeError:  # pragma: no cover - foreign-loop leftovers
            pass
    finally:
        database.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

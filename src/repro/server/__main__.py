"""Standalone server process: ``python -m repro.server --program rules.dl``.

Reads a Datalog program from a file (or stdin with ``-``), boots a
:class:`~repro.server.server.QueryServer` and serves until interrupted.
Debug with ``nc``: the server auto-detects newline-delimited JSON, so

::

    $ echo '{"op": "query", "relation": "path"}' | nc localhost 7777
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.server.backpressure import POLICIES, BackpressureConfig
from repro.server.server import QueryServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve one Datalog program over TCP.",
    )
    parser.add_argument(
        "--program", required=True,
        help="path to a Datalog source file, or '-' for stdin",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7777)
    parser.add_argument(
        "--policy", choices=POLICIES, default="block",
        help="backpressure policy for the mutation queue",
    )
    parser.add_argument(
        "--max-pending", type=int, default=64,
        help="mutation queue bound",
    )
    parser.add_argument(
        "--executor", default=None, choices=["pushdown", "vectorized"],
        help="engine executor override",
    )
    args = parser.parse_args(argv)

    if args.program == "-":
        source = sys.stdin.read()
    else:
        with open(args.program, "r", encoding="utf-8") as handle:
            source = handle.read()

    config = EngineConfig()
    if args.executor:
        config = config.with_(executor=args.executor)
    database = Database(source, config)
    server = QueryServer(
        database, host=args.host, port=args.port,
        backpressure=BackpressureConfig(
            policy=args.policy, max_pending=args.max_pending
        ),
    )

    print(
        f"serving {args.program!r} on {args.host}:{args.port} "
        f"(policy={args.policy}, max_pending={args.max_pending})",
        file=sys.stderr,
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        pass
    finally:
        database.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

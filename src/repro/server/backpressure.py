"""Admission control for the single-writer mutation queue.

Every mutation a client sends is enqueued for the server's one writer; the
queue is bounded, and what happens when it is full is the backpressure
policy:

* ``block`` — the submitting client waits for space (optionally up to
  ``block_timeout`` seconds, then a ``timeout`` error).  Natural flow
  control: a flood of writers slows to the writer's pace.
* ``reject`` — the submit fails immediately with a structured
  ``backpressure`` error on the wire; the client decides whether to retry.
* ``shed`` — the *oldest pending* mutation is evicted (its client gets a
  ``cancelled``/``shed`` error) and the new one is admitted.  Favors
  freshness: under overload the server works on the most recent requests.

All three surface as resilience-taxonomy errors
(:mod:`repro.resilience.errors`) with stable wire codes — a full queue is
``resource_exhausted``/``queue_full``, a block timeout is
``deadline_exceeded``/``queue_timeout``, eviction and shutdown are
``cancelled`` with reasons ``shed``/``shutdown`` — each carrying the active
``policy`` as a detail.  :data:`BackpressureError` is kept as an alias of
the taxonomy base class so existing ``except BackpressureError`` sites
catch every admission failure unchanged.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple

from repro.resilience import faults
from repro.resilience.errors import (
    Cancelled,
    DeadlineExceeded,
    ResilienceError,
    ResourceExhausted,
)

POLICIES = ("block", "reject", "shed")

#: Compatibility alias: admission failures are taxonomy errors now; the
#: name survives for callers that catch (or introspect) it.
BackpressureError = ResilienceError


@dataclass(frozen=True)
class BackpressureConfig:
    """How the mutation queue admits work when full."""

    policy: str = "block"
    max_pending: int = 64
    #: Only meaningful under ``block``: None waits forever.
    block_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")


class QueueClosed(Exception):
    """Raised by :meth:`MutationQueue.get` once the queue is closed and empty
    — the writer loop's signal to finish its current batch and exit."""


class MutationQueue:
    """The bounded queue between client handlers and the writer loop.

    Items are ``(payload, future)`` pairs: the handler awaits the future,
    the writer loop resolves it with the mutation's report (or an error).
    Single event loop only — all coordination is via one asyncio.Condition,
    so no thread-safety is needed (the writer's *work* runs in a worker
    thread, but enqueue/dequeue happen on the loop).
    """

    def __init__(self, config: Optional[BackpressureConfig] = None) -> None:
        self.config = config if config is not None else BackpressureConfig()
        self._items: Deque[Tuple[Any, "asyncio.Future"]] = deque()
        self._not_empty = asyncio.Event()
        self._space = asyncio.Condition()
        self._closed = False
        #: Lifetime counters, surfaced through ``sys_server``.
        self.submitted = 0
        self.rejected = 0
        self.shed = 0

    def depth(self) -> int:
        return len(self._items)

    async def put(self, payload: Any) -> "asyncio.Future":
        """Admit one mutation per the configured policy.

        Returns the future the caller should await for the writer's report.
        Raises :class:`BackpressureError` when the policy refuses admission
        (``reject`` when full, ``block`` on timeout).
        """
        config = self.config
        faults.fire("queue.enqueue", ResourceExhausted)
        if self._closed:
            self.rejected += 1
            raise Cancelled(
                "server is shutting down",
                reason="shutdown", policy=config.policy,
            )
        if len(self._items) >= config.max_pending:
            if config.policy == "reject":
                self.rejected += 1
                raise ResourceExhausted(
                    f"mutation queue full ({config.max_pending} pending)",
                    reason="queue_full", policy=config.policy,
                )
            if config.policy == "shed":
                stale_payload, stale_future = self._items.popleft()
                self.shed += 1
                if not stale_future.done():
                    stale_future.set_exception(Cancelled(
                        "mutation evicted by a newer request under overload",
                        reason="shed", policy=config.policy,
                    ))
            else:  # block
                try:
                    await asyncio.wait_for(
                        self._wait_for_space(), config.block_timeout
                    )
                except asyncio.TimeoutError:
                    self.rejected += 1
                    raise DeadlineExceeded(
                        f"queue stayed full for {config.block_timeout}s",
                        reason="queue_timeout", policy=config.policy,
                    ) from None
        future = asyncio.get_running_loop().create_future()
        self._items.append((payload, future))
        self.submitted += 1
        self._not_empty.set()
        return future

    async def _wait_for_space(self) -> None:
        async with self._space:
            await self._space.wait_for(
                lambda: len(self._items) < self.config.max_pending
            )

    async def get(self) -> Tuple[Any, "asyncio.Future"]:
        """Dequeue the next mutation (the writer loop's sole caller).

        Raises :class:`QueueClosed` once :meth:`close` has been called and
        every queued item is gone.
        """
        while not self._items:
            if self._closed:
                raise QueueClosed()
            self._not_empty.clear()
            await self._not_empty.wait()
        item = self._items.popleft()
        async with self._space:
            self._space.notify(1)
        return item

    def get_nowait(self) -> Optional[Tuple[Any, "asyncio.Future"]]:
        """The next queued mutation, or None when the queue is empty.

        The writer loop uses this to drain everything already admitted
        into one group commit after :meth:`get` hands it the first item.
        """
        if not self._items:
            return None
        return self._items.popleft()

    async def notify_space(self) -> None:
        """Wake blocked ``put`` callers after a :meth:`get_nowait` drain
        (which cannot notify the condition from sync code itself)."""
        async with self._space:
            self._space.notify_all()

    def close(self) -> None:
        """Refuse further admissions and wake the writer so it can exit."""
        self._closed = True
        self._not_empty.set()

    def drain(self) -> int:
        """Fail every pending item (server shutdown); returns the count."""
        drained = 0
        while self._items:
            _, future = self._items.popleft()
            if not future.done():
                future.set_exception(Cancelled(
                    "server is shutting down",
                    reason="shutdown", policy=self.config.policy,
                ))
            drained += 1
        return drained

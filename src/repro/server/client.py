"""Wire clients: a blocking socket client and an asyncio client.

Both speak the framed protocol by default (``framed=False`` switches a
:class:`BlockingClient` to line mode — the same bytes a human would type
into ``nc``).  Rows travel as JSON arrays; the clients convert them back
to tuples so results round-trip into set comparisons against local engine
results.

Retries
-------

Both clients take an optional :class:`RetryPolicy`: bounded attempts with
exponential backoff and seeded jitter, applied to connection establishment
and to *transient* failures (a ``resource_exhausted`` response, a dropped
connection).  Mutations are special-cased for exactly-once safety: they are
retried only when the server's structured error says ``enqueued: false`` —
once a write has been admitted to the mutation queue, a blind resend could
double-apply, so the client surfaces the error instead.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_payload,
    encode_frame,
    encode_line,
)

#: Ops whose retry must be gated on the server's ``enqueued`` flag.
_MUTATION_OPS = frozenset({"insert", "retract", "apply"})

#: Taxonomy codes safe to retry after backoff (for mutations: only when
#: the response also reports the write was never enqueued).
_TRANSIENT_CODES = frozenset({"resource_exhausted"})


class ServerError(Exception):
    """A structured ``{"ok": false}`` response, raised client-side."""

    def __init__(self, error: Dict[str, Any],
                 enqueued: Optional[bool] = None) -> None:
        super().__init__(error.get("message", "server error"))
        self.code = error.get("code", "error")
        self.error = error
        #: The server's admission report for mutations: False means the
        #: write never entered the queue (safe to retry), True means it
        #: was admitted (a retry risks double-apply), None for non-mutation
        #: ops and pre-flag servers.
        self.enqueued = enqueued


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``attempts`` counts total tries (1 disables retries); the delay before
    try *n+1* is ``min(max_delay, base_delay * 2**(n-1))``, shrunk by up to
    ``jitter`` (a fraction in [0, 1]) via the seeded RNG so synchronized
    clients do not retry in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        rng = random.Random(self.seed)
        for attempt in range(self.attempts - 1):
            delay = min(self.max_delay, self.base_delay * (2 ** attempt))
            yield delay * (1.0 - self.jitter * rng.random())

    def should_retry(self, op: Optional[str], error: Exception) -> bool:
        """Whether ``error`` on ``op`` is safe and useful to retry."""
        mutating = op in _MUTATION_OPS
        if isinstance(error, ServerError):
            if error.code not in _TRANSIENT_CODES:
                return False
            # Mutations: only the server's explicit "never enqueued" makes
            # a resend exactly-once-safe.
            return error.enqueued is False if mutating else True
        if isinstance(error, (ConnectionError, OSError, ProtocolError)):
            # The connection died with the request in flight: a mutation
            # may or may not have been applied — never resend blindly.
            return not mutating
        return False


def rows_to_tuples(rows: Iterable[List[Any]]) -> List[Tuple[Any, ...]]:
    return [tuple(row) for row in rows]


def _check(response: dict) -> dict:
    if not response.get("ok", False):
        raise ServerError(
            response.get("error", {}), enqueued=response.get("enqueued")
        )
    return response


class BlockingClient:
    """A synchronous client over one TCP connection.

    ::

        with BlockingClient(host, port) as client:
            client.insert("edge", [(1, 2)])
            rows = client.query("path")
    """

    def __init__(self, host: str, port: int, framed: bool = True,
                 timeout: Optional[float] = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._framed = framed
        self._retry = retry
        self._buffer = b""
        self._next_id = 0
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        """Establish the connection, retried per the policy."""
        delays = self._retry.delays() if self._retry is not None else iter(())
        while True:
            try:
                return socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
            except OSError:
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        self._buffer = b""
        self._sock = self._connect()

    # -- transport ---------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """One request/response round trip (raises :class:`ServerError`).

        With a :class:`RetryPolicy`, transient failures back off and retry;
        mutations are only ever resent when the server reported the write
        was never enqueued (no double-apply).
        """
        if self._retry is None:
            return self._request_once(message)
        op = message.get("op")
        delays = self._retry.delays()
        while True:
            try:
                return self._request_once(message)
            except Exception as error:
                delay = next(delays, None)
                if delay is None or not self._retry.should_retry(op, error):
                    raise
                time.sleep(delay)
                if not isinstance(error, ServerError):
                    self._reconnect()  # the transport died; rebuild it

    def _request_once(self, message: dict) -> dict:
        self._next_id += 1
        message = dict(message, id=self._next_id)
        data = (
            encode_frame(message) if self._framed else encode_line(message)
        )
        self._sock.sendall(data)
        response = self._read_response()
        if response.get("id") != self._next_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return _check(response)

    def _recv(self) -> bytes:
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ProtocolError("server closed the connection")
        return chunk

    def _read_response(self) -> dict:
        if self._framed:
            while len(self._buffer) < 4:
                self._buffer += self._recv()
            length = int.from_bytes(self._buffer[:4], "big")
            if length > MAX_FRAME:
                raise ProtocolError(f"oversized response frame ({length})")
            while len(self._buffer) < 4 + length:
                self._buffer += self._recv()
            payload = self._buffer[4:4 + length]
            self._buffer = self._buffer[4 + length:]
            return decode_payload(payload)
        while b"\n" not in self._buffer:
            self._buffer += self._recv()
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode_payload(line)

    # -- ops ---------------------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"}).get("pong", False)

    def query(self, relation: str, offset: int = 0,
              limit: Optional[int] = None) -> List[Tuple[Any, ...]]:
        response = self.request({
            "op": "query", "relation": relation,
            "offset": offset, "limit": limit,
        })
        return rows_to_tuples(response["rows"])

    def query_response(self, relation: str) -> dict:
        """The raw query response (rows + count + snapshot_version)."""
        return self.request({"op": "query", "relation": relation})

    def insert(self, relation: str, rows: Iterable[Iterable[Any]]) -> dict:
        return self.request({
            "op": "insert", "relation": relation,
            "rows": [list(row) for row in rows],
        })

    def retract(self, relation: str, rows: Iterable[Iterable[Any]]) -> dict:
        return self.request({
            "op": "retract", "relation": relation,
            "rows": [list(row) for row in rows],
        })

    def apply(self, inserts: Optional[Dict[str, list]] = None,
              retracts: Optional[Dict[str, list]] = None) -> dict:
        return self.request({
            "op": "apply", "inserts": inserts or {}, "retracts": retracts or {},
        })

    def explain(self, relation: Optional[str] = None) -> str:
        return self.request({"op": "explain", "relation": relation})["explain"]

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})["metrics"]

    def server_stats(self) -> Dict[str, Any]:
        return self.request({"op": "server_stats"})["stats"]

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        try:
            self.request({"op": "close"})
        except (OSError, ProtocolError, ServerError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "BlockingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncClient:
    """An asyncio client (the load generator's building block)."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._retry: Optional[RetryPolicy] = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      retry: Optional[RetryPolicy] = None) -> "AsyncClient":
        client = cls()
        client._host, client._port, client._retry = host, port, retry
        await client._open()
        return client

    async def _open(self) -> None:
        assert self._host is not None and self._port is not None
        delays = self._retry.delays() if self._retry is not None else iter(())
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self._host, self._port
                )
                return
            except OSError:
                delay = next(delays, None)
                if delay is None:
                    raise
                await asyncio.sleep(delay)

    async def _reopen(self) -> None:
        if self._writer is not None:
            self._writer.close()
        await self._open()

    async def request(self, message: dict) -> dict:
        """One round trip, retried per the policy (mutations only when the
        server reported ``enqueued: false`` — see :class:`RetryPolicy`)."""
        if self._retry is None:
            return await self._request_once(message)
        op = message.get("op")
        delays = self._retry.delays()
        while True:
            try:
                return await self._request_once(message)
            except asyncio.IncompleteReadError as error:
                delay = next(delays, None)
                if delay is None or op in _MUTATION_OPS:
                    raise
                await asyncio.sleep(delay)
                await self._reopen()
            except Exception as error:
                delay = next(delays, None)
                if delay is None or not self._retry.should_retry(op, error):
                    raise
                await asyncio.sleep(delay)
                if not isinstance(error, ServerError):
                    await self._reopen()

    async def _request_once(self, message: dict) -> dict:
        assert self._reader is not None and self._writer is not None
        self._next_id += 1
        message = dict(message, id=self._next_id)
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        prefix = await self._reader.readexactly(4)
        length = int.from_bytes(prefix, "big")
        if length > MAX_FRAME:
            raise ProtocolError(f"oversized response frame ({length})")
        payload = await self._reader.readexactly(length)
        return _check(decode_payload(payload))

    async def query(self, relation: str) -> List[Tuple[Any, ...]]:
        response = await self.request({"op": "query", "relation": relation})
        return rows_to_tuples(response["rows"])

    async def insert(self, relation: str, rows: Iterable[Iterable[Any]]) -> dict:
        return await self.request({
            "op": "insert", "relation": relation,
            "rows": [list(row) for row in rows],
        })

    async def close(self) -> None:
        if self._writer is None:
            return
        try:
            await self.request({"op": "close"})
        except (OSError, ProtocolError, ServerError, asyncio.IncompleteReadError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

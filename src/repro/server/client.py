"""Wire clients: a blocking socket client and an asyncio client.

Both speak the framed protocol by default (``framed=False`` switches a
:class:`BlockingClient` to line mode — the same bytes a human would type
into ``nc``).  Rows travel as JSON arrays; the clients convert them back
to tuples so results round-trip into set comparisons against local engine
results.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_payload,
    encode_frame,
    encode_line,
)


class ServerError(Exception):
    """A structured ``{"ok": false}`` response, raised client-side."""

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(error.get("message", "server error"))
        self.code = error.get("code", "error")
        self.error = error


def rows_to_tuples(rows: Iterable[List[Any]]) -> List[Tuple[Any, ...]]:
    return [tuple(row) for row in rows]


def _check(response: dict) -> dict:
    if not response.get("ok", False):
        raise ServerError(response.get("error", {}))
    return response


class BlockingClient:
    """A synchronous client over one TCP connection.

    ::

        with BlockingClient(host, port) as client:
            client.insert("edge", [(1, 2)])
            rows = client.query("path")
    """

    def __init__(self, host: str, port: int, framed: bool = True,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._framed = framed
        self._buffer = b""
        self._next_id = 0

    # -- transport ---------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """One request/response round trip (raises :class:`ServerError`)."""
        self._next_id += 1
        message = dict(message, id=self._next_id)
        data = (
            encode_frame(message) if self._framed else encode_line(message)
        )
        self._sock.sendall(data)
        response = self._read_response()
        if response.get("id") != self._next_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return _check(response)

    def _recv(self) -> bytes:
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ProtocolError("server closed the connection")
        return chunk

    def _read_response(self) -> dict:
        if self._framed:
            while len(self._buffer) < 4:
                self._buffer += self._recv()
            length = int.from_bytes(self._buffer[:4], "big")
            if length > MAX_FRAME:
                raise ProtocolError(f"oversized response frame ({length})")
            while len(self._buffer) < 4 + length:
                self._buffer += self._recv()
            payload = self._buffer[4:4 + length]
            self._buffer = self._buffer[4 + length:]
            return decode_payload(payload)
        while b"\n" not in self._buffer:
            self._buffer += self._recv()
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode_payload(line)

    # -- ops ---------------------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"}).get("pong", False)

    def query(self, relation: str, offset: int = 0,
              limit: Optional[int] = None) -> List[Tuple[Any, ...]]:
        response = self.request({
            "op": "query", "relation": relation,
            "offset": offset, "limit": limit,
        })
        return rows_to_tuples(response["rows"])

    def query_response(self, relation: str) -> dict:
        """The raw query response (rows + count + snapshot_version)."""
        return self.request({"op": "query", "relation": relation})

    def insert(self, relation: str, rows: Iterable[Iterable[Any]]) -> dict:
        return self.request({
            "op": "insert", "relation": relation,
            "rows": [list(row) for row in rows],
        })

    def retract(self, relation: str, rows: Iterable[Iterable[Any]]) -> dict:
        return self.request({
            "op": "retract", "relation": relation,
            "rows": [list(row) for row in rows],
        })

    def apply(self, inserts: Optional[Dict[str, list]] = None,
              retracts: Optional[Dict[str, list]] = None) -> dict:
        return self.request({
            "op": "apply", "inserts": inserts or {}, "retracts": retracts or {},
        })

    def explain(self, relation: Optional[str] = None) -> str:
        return self.request({"op": "explain", "relation": relation})["explain"]

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})["metrics"]

    def server_stats(self) -> Dict[str, Any]:
        return self.request({"op": "server_stats"})["stats"]

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        try:
            self.request({"op": "close"})
        except (OSError, ProtocolError, ServerError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "BlockingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncClient:
    """An asyncio client (the load generator's building block)."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port
        )
        return client

    async def request(self, message: dict) -> dict:
        assert self._reader is not None and self._writer is not None
        self._next_id += 1
        message = dict(message, id=self._next_id)
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        prefix = await self._reader.readexactly(4)
        length = int.from_bytes(prefix, "big")
        if length > MAX_FRAME:
            raise ProtocolError(f"oversized response frame ({length})")
        payload = await self._reader.readexactly(length)
        return _check(decode_payload(payload))

    async def query(self, relation: str) -> List[Tuple[Any, ...]]:
        response = await self.request({"op": "query", "relation": relation})
        return rows_to_tuples(response["rows"])

    async def insert(self, relation: str, rows: Iterable[Iterable[Any]]) -> dict:
        return await self.request({
            "op": "insert", "relation": relation,
            "rows": [list(row) for row in rows],
        })

    async def close(self) -> None:
        if self._writer is None:
            return
        try:
            await self.request({"op": "close"})
        except (OSError, ProtocolError, ServerError, asyncio.IncompleteReadError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

"""The wire protocol: length-prefixed JSON frames, with an ``nc`` line mode.

Framed mode (the default, what the clients speak)
-------------------------------------------------

Each message is a 4-byte big-endian length prefix followed by exactly that
many bytes of UTF-8 JSON.  :data:`MAX_FRAME` caps a frame below 2**24
bytes, so the first prefix byte of a well-formed frame is always ``0x00``
— which is how the server tells the two modes apart from the very first
byte a connection sends (no printable text starts with a NUL).

Line mode (debugging)
---------------------

One JSON document per ``\n``-terminated line, so a human can drive the
server with ``nc localhost 7777`` and a text editor.  Responses come back
as single lines too.  A connection's mode is fixed by its first byte.

Values crossing the wire are JSON: ints, floats, strings, booleans, None
pass through; anything else (rows may hold arbitrary Python values in
identity-codec storage) is sent as its ``repr`` string.  Row tuples become
JSON arrays and come back as lists — clients that need tuples convert.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterable, List, Optional, Tuple

from repro.resilience.errors import ResilienceError, ResourceExhausted

#: Largest frame either side may send: just under 2**24 keeps the first
#: length byte 0x00 (the framed/line mode discriminator) and bounds the
#: buffering a hostile peer can force.
MAX_FRAME = (1 << 24) - 1

_PREFIX_LEN = 4


class ProtocolError(ResilienceError):
    """A malformed or truncated message; the server closes the connection.

    Part of the resilience taxonomy (wire code ``protocol``) so framing
    failures serialize like every other structured error.  Oversized
    frames raise :class:`~repro.resilience.errors.ResourceExhausted` with
    ``reason="oversize"`` instead — the message is well-formed, it just
    exceeds a bounded resource.
    """

    code = "protocol"


def jsonify_value(value: Any) -> Any:
    """``value`` as a JSON-representable value (repr fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def jsonify_rows(rows: Iterable[Tuple[Any, ...]]) -> List[List[Any]]:
    """Rows as JSON arrays, each column made JSON-safe."""
    return [[jsonify_value(value) for value in row] for row in rows]


def encode_payload(message: dict) -> bytes:
    """The message as compact UTF-8 JSON (no prefix, no newline)."""
    return json.dumps(
        message, separators=(",", ":"), default=repr
    ).encode("utf-8")


def encode_frame(message: dict) -> bytes:
    """The message as one length-prefixed frame."""
    payload = encode_payload(message)
    if len(payload) > MAX_FRAME:
        raise ResourceExhausted(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            reason="oversize", limit=MAX_FRAME,
        )
    return len(payload).to_bytes(_PREFIX_LEN, "big") + payload


def encode_line(message: dict) -> bytes:
    """The message as one newline-terminated JSON line."""
    return encode_payload(message) + b"\n"


def decode_frame(data: bytes) -> dict:
    """Parse one frame's payload bytes (without the prefix)."""
    return decode_payload(data)


def decode_payload(data: bytes) -> dict:
    try:
        message = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(
    reader: asyncio.StreamReader, first_byte: bytes = b""
) -> Optional[Tuple[dict, int]]:
    """Read one framed message; None on clean EOF at a frame boundary.

    ``first_byte`` is the already-consumed mode-detection byte of the
    length prefix (the connection's first frame only).  Returns the parsed
    message and the total bytes consumed (prefix included).
    """
    try:
        prefix = first_byte + await reader.readexactly(
            _PREFIX_LEN - len(first_byte)
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not first_byte:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME:
        raise ResourceExhausted(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})",
            reason="oversize", limit=MAX_FRAME,
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(payload), _PREFIX_LEN + length


async def read_line(
    reader: asyncio.StreamReader, first_byte: bytes = b""
) -> Optional[Tuple[dict, int]]:
    """Read one line-mode message; None on clean EOF."""
    line = await reader.readline()
    if not line and not first_byte:
        return None
    raw = first_byte + line
    data = raw.strip()
    if not data:
        return {}, len(raw)
    if len(data) > MAX_FRAME:
        raise ResourceExhausted(
            "line exceeds MAX_FRAME", reason="oversize", limit=MAX_FRAME,
        )
    return decode_payload(data), len(raw)

"""Run a :class:`QueryServer` on a background thread.

The embedding shape tests, benches and demos use::

    with ServerThread(Database(source)) as server:
        with BlockingClient(server.host, server.port) as client:
            client.query("path")

The thread owns a private event loop; ``start()`` returns once the socket
is bound (so ``server.port`` is real even for ``port=0``), and ``stop()``
shuts the server down cleanly and joins the thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.server.backpressure import BackpressureConfig
from repro.server.server import QueryServer


class ServerThread:
    """Own one :class:`QueryServer` on a daemon thread with its own loop."""

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        backpressure: Optional[BackpressureConfig] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.server = QueryServer(
            database, host=host, port=port,
            backpressure=backpressure, config=config,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        """Boot the loop thread; blocks until the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
            # stop() ran: finish the server's teardown on this loop.
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def stop(self) -> None:
        """Shut the server down and join the thread (idempotent)."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None or not thread.is_alive():
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""The asyncio query server: many clients, one database, one writer.

Concurrency model
-----------------

* **One event loop** accepts connections and serves every read.  Queries
  never touch live session state: they are answered from the last
  committed MVCC snapshot (:meth:`Connection.query_snapshot`), so a read
  is pure CPU over immutable frozensets — no locks, no waiting on the
  writer.
* **One writer thread** (a single-thread executor) applies mutation
  batches through the shared session, which publishes a new snapshot at
  each commit point.  Clients' mutations funnel through a bounded
  :class:`~repro.server.backpressure.MutationQueue`; admission is governed
  by the configured policy (block / reject / shed).
* ``sys_`` reads go through the connection's system catalog, which this
  server extends with ``sys_connections`` and ``sys_server`` rows.

Wire surface (see :mod:`repro.server.protocol` for framing): requests are
JSON objects with an ``op`` — ``ping``, ``query``, ``insert``, ``retract``,
``apply``, ``explain``, ``metrics``, ``server_stats``, ``close`` — plus an
optional client-chosen ``id`` echoed back on the response.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.api.database import Database
from repro.core.config import EngineConfig
from repro.resilience import faults
from repro.resilience.cancel import CancellationToken
from repro.resilience.errors import (
    Cancelled,
    DurabilityError,
    ResilienceError,
)
from repro.server.backpressure import (
    BackpressureConfig,
    BackpressureError,
    MutationQueue,
    QueueClosed,
)
from repro.server.protocol import (
    ProtocolError,
    encode_frame,
    encode_line,
    jsonify_rows,
    jsonify_value,
    read_frame,
    read_line,
)
from repro.server.sessions import ConnectionState, SessionRegistry

#: Ops that mutate; everything else is served without touching the writer.
_MUTATION_OPS = frozenset({"insert", "retract", "apply"})

#: Structured one-line operational log (slow queries, cancellations,
#: degraded writes); key=value formatted so it greps and parses trivially.
logger = logging.getLogger("repro.server")


def _error(code: str, message: str, **extra: Any) -> dict:
    body = {"code": code, "message": message}
    body.update(extra)
    return {"ok": False, "error": body}


class QueryServer:
    """Serve one :class:`~repro.api.database.Database` over TCP.

    ::

        db = Database(source, config)
        server = QueryServer(db, port=7777)
        asyncio.run(server.serve_forever())

    or drive the lifecycle yourself: ``await server.start()`` … ``await
    server.stop()`` inside a running loop (what
    :class:`~repro.server.runtime.ServerThread` does).
    """

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        backpressure: Optional[BackpressureConfig] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.db = database
        self.host = host
        self.port = port
        self.backpressure = (
            backpressure if backpressure is not None else BackpressureConfig()
        )
        # The one shared connection: its session owns the storage, the
        # writer thread owns its mutations, snapshots serve the readers.
        self.conn = database.connect(config)
        self.session = self.conn.session
        # The durability manager when the database is durable and this
        # connection is its writer; group commit syncs through it.
        self.durability = self.conn.durability
        self.snapshots = self.session.enable_snapshots()
        self.metrics = self.session.metrics
        self.tracer = self.session.tracer
        self.registry = SessionRegistry()
        catalog = self.conn.catalog
        if catalog is not None:
            catalog.bind_connections(self.registry.rows)
            catalog.bind_server(lambda: [self.server_row()])
        self.mutations_applied = 0
        # One QueryResult per (relation, version), shared by every read
        # against that version: snapshot results are immutable, so the
        # deterministic-order/decode memo inside the result amortizes
        # across requests — a bounded page read costs O(page), not a
        # fresh O(n log n) sort per request.  The cache owns the snapshot
        # pins; superseded versions are evicted (unpinned) lazily.  Only
        # the event-loop thread touches it.
        self._result_cache: Dict[Tuple[str, int], Any] = {}
        self._writer_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        # Governed (deadline-carrying) reads run here instead of on the
        # event loop, so the loop stays free to notice a disconnecting
        # peer and cancel the read's token.
        self._reader_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-reader"
        )
        self._queue: Optional[MutationQueue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writer_task: Optional["asyncio.Task"] = None
        self._handlers: Set["asyncio.Task"] = set()
        self._started_at: Optional[float] = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the writer loop."""
        loop = asyncio.get_running_loop()
        # Built here, not in __init__: asyncio primitives bind to the
        # running loop on creation under Python 3.9.
        self._queue = MutationQueue(self.backpressure)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._writer_task = loop.create_task(self._writer_loop())
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Graceful, ordered shutdown (idempotent).

        Order matters: stop accepting, let the writer *finish the batch it
        already dequeued* (its clients get real reports, durably synced),
        fail every still-queued mutation with a structured ``shutdown``
        error (its client gets a response, not a dead socket), flush the
        WAL — and only then close client connections.  The old behavior
        cancelled the writer task mid-``run_in_executor``, orphaning the
        in-flight client future.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            self._queue.drain()
            self._queue.close()
        if self._writer_task is not None:
            # Not cancelled: the loop exits via QueueClosed after the
            # in-flight group commit completes and its futures resolve.
            await self._writer_task
        self._writer_pool.shutdown(wait=True)
        if self.durability is not None:
            self.durability.sync()
        # One scheduling round so handlers woken by the failed futures can
        # write their shutdown responses before the transports close.
        await asyncio.sleep(0)
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        # After the handlers: their cancellation cancels any governed
        # read's token, so the reader threads abort at their next check
        # instead of holding this shutdown open.  Joined off-loop: a read
        # between cooperative checks (e.g. serializing a large page) must
        # not block the event loop for that stretch.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._reader_pool.shutdown(wait=True)
        )
        while self._result_cache:
            self._result_cache.popitem()[1].release()
        self.conn.close()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # -- the writer loop ---------------------------------------------------------

    async def _writer_loop(self) -> None:
        """Group commit: drain every already-queued mutation into one batch,
        apply them on the writer thread, fsync the WAL **once**, then
        resolve all of the batch's futures.  Under a write burst the fsync
        cost amortizes across the burst instead of gating every client on
        its own disk flush."""
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        while True:
            try:
                batch = [await queue.get()]
            except QueueClosed:
                return
            while True:
                item = queue.get_nowait()
                if item is None:
                    break
                batch.append(item)
            await queue.notify_space()
            self.metrics.gauge("server_queue_depth").set(queue.depth())
            live = [
                (payload, future) for payload, future in batch
                if not future.done()  # shed or shutdown raced the dequeue
            ]
            if not live:
                continue
            outcomes = await loop.run_in_executor(
                self._writer_pool, self._apply_batch,
                [payload for payload, _ in live],
            )
            for (_, future), (report, error) in zip(live, outcomes):
                if future.done():
                    continue
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(report)

    def _apply_batch(self, payloads):
        """Runs on the writer thread: apply each payload (the session
        publishes a snapshot per commit), then one ``sync()`` makes the
        whole group durable before any future resolves."""
        outcomes = []
        for payload in payloads:
            try:
                outcomes.append((self._apply_mutation(payload), None))
            except Exception as exc:  # surfaced to the submitting client
                outcomes.append((None, exc))
        if self.durability is not None:
            try:
                self.durability.sync()
            except Exception as exc:
                # The group's writes applied in memory but are NOT durable:
                # fail every future that was about to succeed, so no client
                # mistakes a lost-on-crash write for a committed one.  The
                # writer loop survives — the next batch syncs again.
                error = (
                    exc if isinstance(exc, ResilienceError)
                    else DurabilityError(str(exc), reason="sync_failed")
                )
                logger.error(
                    "event=group-commit-sync-failed batch=%d code=%s error=%s",
                    len(payloads), getattr(error, "code", "?"), error,
                )
                self.metrics.counter("server_sync_failures_total").inc()
                outcomes = [
                    (report, failure if failure is not None else error)
                    for report, failure in outcomes
                ]
        self.metrics.histogram("server_group_commit_size").observe(
            len(payloads)
        )
        if len(payloads) > 1:
            self.metrics.counter("server_group_commits_total").inc()
        return outcomes

    def _apply_mutation(self, payload: Dict[str, Any]):
        """Runs on the writer thread; the session publishes the snapshot."""
        report = self.session.apply(
            payload.get("inserts"), payload.get("retracts")
        )
        self.mutations_applied += 1
        return report

    # -- observability -----------------------------------------------------------

    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def server_row(self) -> Tuple[Any, ...]:
        """The single ``sys_server`` catalog row."""
        queue = self._queue
        stats = self.snapshots.stats()
        latest = self.snapshots.latest_version()
        return (
            round(self.uptime_seconds(), 3),
            len(self.registry),
            queue.depth() if queue is not None else 0,
            self.backpressure.max_pending,
            self.backpressure.policy,
            self.mutations_applied,
            queue.shed if queue is not None else 0,
            queue.rejected if queue is not None else 0,
            -1 if latest is None else latest,
            stats["live"],
        )

    def stats(self) -> Dict[str, Any]:
        """The ``server_stats`` op's payload (a superset of ``sys_server``)."""
        queue = self._queue
        return {
            "uptime_seconds": self.uptime_seconds(),
            "connections": len(self.registry),
            "accepted_total": self.registry.accepted,
            "queue_depth": queue.depth() if queue is not None else 0,
            "queue_capacity": self.backpressure.max_pending,
            "policy": self.backpressure.policy,
            "mutations_applied": self.mutations_applied,
            "shed_total": queue.shed if queue is not None else 0,
            "rejected_total": queue.rejected if queue is not None else 0,
            "snapshot_version": self.snapshots.latest_version(),
            "snapshots": self.snapshots.stats(),
            "durability": (
                None if self.durability is None else self.durability.stats()
            ),
        }

    # -- connection handling -----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        peer = writer.get_extra_info("peername")
        peer_str = (
            f"{peer[0]}:{peer[1]}"
            if isinstance(peer, tuple) and len(peer) >= 2 else str(peer)
        )
        state = self.registry.open(peer_str)
        self.metrics.counter("server_connections_total").inc()
        conn_span = self.tracer.span(
            "connection", root=True, ambient=False,
            conn=state.conn_id, peer=peer_str,
        )
        try:
            await self._serve_connection(reader, writer, state, conn_span)
        except (
            ResilienceError, ConnectionResetError, BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if state.cancel_active("client disconnected"):
                # A governed read was in flight when the socket died: the
                # cooperative token aborts it at the next check instead of
                # computing for a peer that will never read the answer.
                self.metrics.counter("server_disconnect_cancels_total").inc()
                logger.info(
                    "event=disconnect-cancel conn=%d peer=%s",
                    state.conn_id, state.peer,
                )
            conn_span.set(
                queries=state.queries, mutations=state.mutations,
                bytes_in=state.bytes_in, bytes_out=state.bytes_out,
            )
            conn_span.finish()
            self.registry.close(state)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError,
            ):
                # CancelledError: stop() cancelled this handler; swallowing
                # it here is safe — the transport is already closed and the
                # task is about to finish anyway.
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        state: ConnectionState,
        conn_span,
    ) -> None:
        # Mode detection: a well-formed frame's first length byte is 0x00
        # (MAX_FRAME < 2**24); anything else is a human typing JSON lines.
        first = await reader.read(1)
        if not first:
            return
        framed = first == b"\x00"
        state.mode = "framed" if framed else "line"
        pending_first = first
        while True:
            try:
                received = await (
                    read_frame(reader, pending_first) if framed
                    else read_line(reader, pending_first)
                )
            except ResilienceError as exc:
                # Framing is (or may be) desynced: tell the peer why with
                # one best-effort typed error, then close the connection.
                await self._send_best_effort(
                    writer, framed, {"ok": False, "error": exc.to_wire()}
                )
                return
            pending_first = b""
            if received is None:
                return
            message, nbytes = received
            state.bytes_in += nbytes
            if not message:  # blank line in line mode
                continue
            try:
                response = await self._dispatch(
                    message, state, conn_span, reader
                )
            except ResilienceError as exc:
                # ProtocolError and any taxonomy error escaping an op
                # handler become one structured response (stable code).
                response = {"ok": False, "error": exc.to_wire()}
            if "id" in message:
                response["id"] = message["id"]
            # An injected send fault behaves exactly like a client that
            # vanished mid-response: the handler tears the connection down.
            faults.fire("server.send", Cancelled)
            data = encode_frame(response) if framed else encode_line(response)
            writer.write(data)
            await writer.drain()
            state.bytes_out += len(data)
            if message.get("op") == "close":
                return

    async def _send_best_effort(
        self, writer: asyncio.StreamWriter, framed: bool, response: dict
    ) -> None:
        """Write one response, swallowing a peer that is already gone."""
        try:
            data = (
                encode_frame(response) if framed else encode_line(response)
            )
            writer.write(data)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- request dispatch --------------------------------------------------------

    async def _dispatch(
        self,
        message: dict,
        state: ConnectionState,
        conn_span,
        reader: asyncio.StreamReader,
    ) -> dict:
        op = message.get("op")
        if not isinstance(op, str):
            return _error("bad_request", "missing or non-string 'op'")
        self.metrics.counter("server_requests_total", op=op).inc()
        started = time.perf_counter()
        with self.tracer.span(
            "request", parent=conn_span, ambient=False,
            op=op, conn=state.conn_id,
        ) as span:
            response = await self._dispatch_op(op, message, state, reader)
            span.set(ok=response.get("ok", False))
        self.metrics.histogram("server_request_seconds").observe(
            time.perf_counter() - started
        )
        return response

    async def _dispatch_op(
        self,
        op: str,
        message: dict,
        state: ConnectionState,
        reader: asyncio.StreamReader,
    ) -> dict:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "query":
            return await self._op_query(message, state, reader)
        if op in _MUTATION_OPS:
            return await self._op_mutate(op, message, state)
        if op == "explain":
            return await self._op_explain(message)
        if op == "metrics":
            snapshot = self.db.metrics()
            return {"ok": True, "metrics": {
                key: jsonify_value(value) for key, value in snapshot.items()
            }}
        if op == "server_stats":
            return {"ok": True, "stats": self.stats()}
        if op == "close":
            return {"ok": True, "closing": True}
        return _error("unknown_op", f"unknown op {op!r}")

    async def _op_query(
        self,
        message: dict,
        state: ConnectionState,
        reader: asyncio.StreamReader,
    ) -> dict:
        relation = message.get("relation")
        if not isinstance(relation, str):
            return _error("bad_request", "'query' needs a string 'relation'")
        offset = message.get("offset", 0)
        limit = message.get("limit")
        deadline_ms = message.get("deadline_ms")
        token = None
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                return _error(
                    "bad_request", "'deadline_ms' must be a positive number"
                )
            # The per-request deadline rides a CancellationToken: the read
            # path checks it cooperatively, and a watcher cancels it if the
            # client disconnects before the answer is ready.
            token = CancellationToken.with_timeout(deadline_ms / 1000.0)
        state.queries += 1
        started = time.perf_counter()
        result = version = None
        if not relation.startswith("sys_"):
            # Resolve the shared snapshot result on the loop: the result
            # cache is event-loop-only state.  The result itself is an
            # immutable pinned snapshot, safe to page from any thread.
            try:
                result = self._snapshot_result(relation)
                version = result.snapshot_version
            except ResilienceError as exc:
                return self._query_abort(exc, relation, state, started)
            except KeyError as exc:
                return _error("unknown_relation", str(exc))
            except (ValueError, RuntimeError) as exc:
                return _error("bad_request", str(exc))
        if token is None:
            return self._query_body(
                relation, result, version, offset, limit, None, state, started
            )
        # Governed read: run it off-loop so the event loop stays free to
        # notice the peer vanishing — the watcher cancels the token, and the
        # cooperative checks abort the read instead of computing an answer
        # for a dead socket.
        state.active_token = token
        loop = asyncio.get_running_loop()
        watcher = loop.create_task(self._cancel_on_disconnect(reader, state))
        try:
            return await loop.run_in_executor(
                self._reader_pool, self._query_body,
                relation, result, version, offset, limit, token, state,
                started,
            )
        except asyncio.CancelledError:
            # Handler torn down (shutdown): abort the orphaned read so the
            # reader thread does not keep computing for a closed server.
            token.cancel("connection closed")
            raise
        finally:
            watcher.cancel()
            state.active_token = None

    async def _cancel_on_disconnect(
        self, reader: asyncio.StreamReader, state: ConnectionState
    ) -> None:
        """Cancel the in-flight governed read if the transport dies.

        The loop never has a read pending while a request is in flight, but
        asyncio still feeds EOF/errors to the stream on FIN/RST — polling
        ``at_eof``/``exception`` observes the disconnect without consuming
        anything from the protocol.
        """
        token = state.active_token
        while token is not None and not token.cancelled:
            if reader.at_eof() or reader.exception() is not None:
                if state.cancel_active("client disconnected"):
                    self.metrics.counter(
                        "server_disconnect_cancels_total"
                    ).inc()
                    logger.info(
                        "event=disconnect-cancel conn=%d peer=%s",
                        state.conn_id, state.peer,
                    )
                return
            await asyncio.sleep(0.01)

    def _query_body(
        self, relation, result, version, offset, limit, token, state, started
    ) -> dict:
        """The read itself — on the loop (ungoverned) or a reader thread."""
        try:
            if result is None:
                # Catalog reads are live observability snapshots, not MVCC
                # reads: they run against the catalog providers.
                result = self.conn.query(relation, token=token)
            if token is not None:
                token.check()
            rows = jsonify_rows(result.rows(offset=offset, limit=limit))
            if token is not None:
                token.check()
        except ResilienceError as exc:
            return self._query_abort(exc, relation, state, started)
        except KeyError as exc:
            return _error("unknown_relation", str(exc))
        except (ValueError, RuntimeError) as exc:
            return _error("bad_request", str(exc))
        response = {
            "ok": True, "relation": relation,
            "rows": rows, "count": result.count(),
        }
        if version is not None:
            response["snapshot_version"] = version
        return response

    def _query_abort(
        self, exc: ResilienceError, relation: str, state: ConnectionState,
        started: float,
    ) -> dict:
        self.metrics.counter(
            "server_query_aborts_total", code=exc.code
        ).inc()
        logger.warning(
            "event=query-abort conn=%d relation=%s code=%s reason=%s "
            "elapsed_ms=%.1f",
            state.conn_id, relation, exc.code, exc.reason,
            (time.perf_counter() - started) * 1000.0,
        )
        return {"ok": False, "error": exc.to_wire()}

    def _snapshot_result(self, relation: str):
        """The shared snapshot result for ``relation`` at the latest version.

        Raises the same errors as :meth:`Connection.query_snapshot`.  The
        returned result is cached (and stays pinned) until a read at a
        newer version evicts it; callers must not :meth:`release` it.
        """
        latest = self.snapshots.latest_version()
        cached = self._result_cache.get((relation, latest))
        if cached is not None:
            return cached
        result = self.conn.query_snapshot(relation)
        version = result.snapshot_version
        stale = [key for key in self._result_cache if key[1] < version]
        for key in stale:
            # In-flight pages over an evicted result stay valid: the rows
            # are immutable and held by the result object itself — only
            # the storage version becomes collectable.
            self._result_cache.pop(key).release()
        self._result_cache[(relation, version)] = result
        return result

    async def _op_mutate(
        self, op: str, message: dict, state: ConnectionState
    ) -> dict:
        payload = self._mutation_payload(op, message)
        if "error" in payload:
            return payload["error"]
        assert self._queue is not None
        try:
            future = await self._queue.put(payload)
        except BackpressureError as exc:
            self.metrics.counter(
                "server_backpressure_total", code=exc.code
            ).inc()
            # ``enqueued: false`` — admission refused, nothing queued, so a
            # retry can never double-apply.  Clients key their retry policy
            # on exactly this flag.
            return {"ok": False, "error": exc.to_wire(), "enqueued": False}
        self.metrics.gauge("server_queue_depth").set(self._queue.depth())
        try:
            report = await future
        except BackpressureError as exc:
            self.metrics.counter(
                "server_backpressure_total", code=exc.code
            ).inc()
            # The mutation *was* admitted (then shed / failed / lost to
            # shutdown): a blind retry risks double-applying, so the flag
            # says enqueued and clients must reconcile before retrying.
            return {"ok": False, "error": exc.to_wire(), "enqueued": True}
        except (KeyError, ValueError) as exc:
            response = _error("mutation_failed", str(exc))
            response["enqueued"] = True
            return response
        state.mutations += 1
        return {
            "ok": True,
            "report": {
                "strategy": report.strategy,
                "inserted": report.inserted,
                "retracted": report.retracted,
                "propagated": report.propagated,
                "seconds": report.seconds,
            },
            "snapshot_version": self.snapshots.latest_version(),
        }

    def _mutation_payload(self, op: str, message: dict) -> Dict[str, Any]:
        if op == "apply":
            inserts = message.get("inserts") or {}
            retracts = message.get("retracts") or {}
            if not isinstance(inserts, dict) or not isinstance(retracts, dict):
                return {"error": _error(
                    "bad_request", "'apply' needs dict 'inserts'/'retracts'"
                )}
            return {"inserts": inserts, "retracts": retracts}
        relation = message.get("relation")
        rows = message.get("rows")
        if not isinstance(relation, str) or not isinstance(rows, list):
            return {"error": _error(
                "bad_request", f"'{op}' needs a 'relation' and a 'rows' list"
            )}
        batch = {relation: rows}
        if op == "insert":
            return {"inserts": batch, "retracts": None}
        return {"inserts": None, "retracts": batch}

    async def _op_explain(self, message: dict) -> dict:
        relation = message.get("relation")
        if relation is not None and not isinstance(relation, str):
            return _error("bad_request", "'relation' must be a string")
        loop = asyncio.get_running_loop()
        try:
            # explain reads live session state (plans, profile), so it runs
            # on the writer thread — serialized against mutations.
            text = await loop.run_in_executor(
                self._writer_pool, self.conn.explain, relation
            )
        except KeyError as exc:
            return _error("unknown_relation", str(exc))
        return {"ok": True, "explain": text}

"""Per-connection bookkeeping behind ``sys_connections``.

One :class:`ConnectionState` per live client connection, collected in a
:class:`SessionRegistry` the server binds into the system catalog — so the
serving layer is queryable through the same Datalog surface as everything
else (``busy(C) :- sys_connections(C, P, S, M, Q, W, BI, BO), Q > 100.``).

The registry is read from whatever thread runs a catalog refresh while
handlers mutate states on the event loop, so listing takes a lock; the
per-connection counters are only ever written by that connection's own
handler task.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Tuple


class ConnectionState:
    """Counters and identity of one client connection."""

    __slots__ = (
        "conn_id", "peer", "state", "mode", "queries", "mutations",
        "bytes_in", "bytes_out", "connected_at", "active_token",
    )

    def __init__(self, conn_id: int, peer: str) -> None:
        self.conn_id = conn_id
        self.peer = peer
        self.state = "open"
        self.mode = "-"          # "framed" | "line" once detected
        self.queries = 0
        self.mutations = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.connected_at = time.monotonic()
        #: The in-flight request's CancellationToken, when it carries one.
        #: The handler cancels it on client disconnect / server shutdown so
        #: a governed read aborts instead of running for a dead socket.
        self.active_token = None

    def cancel_active(self, reason: str) -> bool:
        """Cancel the in-flight request's token, if any; True when it was."""
        token = self.active_token
        if token is not None and not token.cancelled:
            token.cancel(reason)
            return True
        return False

    def row(self) -> Tuple[Any, ...]:
        """The ``sys_connections`` row (column order of CATALOG_COLUMNS)."""
        return (
            self.conn_id, self.peer, self.state, self.mode,
            self.queries, self.mutations, self.bytes_in, self.bytes_out,
        )


class SessionRegistry:
    """Every live connection's state, listable as catalog rows."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._connections: Dict[int, ConnectionState] = {}
        self._ids = itertools.count(1)
        #: Lifetime total, including closed connections.
        self.accepted = 0

    def open(self, peer: str) -> ConnectionState:
        state = ConnectionState(next(self._ids), peer)
        with self._lock:
            self._connections[state.conn_id] = state
            self.accepted += 1
        return state

    def close(self, state: ConnectionState) -> None:
        state.state = "closed"
        with self._lock:
            self._connections.pop(state.conn_id, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._connections)

    def states(self) -> List[ConnectionState]:
        with self._lock:
            return list(self._connections.values())

    def rows(self) -> List[Tuple[Any, ...]]:
        """The ``sys_connections`` rows of every live connection."""
        return [state.row() for state in self.states()]
